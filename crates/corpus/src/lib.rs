//! **bwsa-corpus** — fleet-scale corpus analytics.
//!
//! One trace is a user; a product is millions. This crate turns a
//! directory tree of traces into a single versioned answer:
//!
//! 1. A **manifest** ([`Manifest`], TOML or JSON) names the traces and
//!    tags each with a workload class and per-entry analysis overrides.
//! 2. [`Corpus::open`] validates it — duplicate paths and dangling
//!    entries are typed errors before any work starts.
//! 3. [`Corpus::session`] configures a batch run in the same builder
//!    idiom as `bwsa_core::Session`, and `run_all` fans one supervised
//!    session per entry across worker threads.
//! 4. Per-entry results fold into a [`FleetSummary`] — working-set
//!    size distributions, allocation win per workload class, and
//!    resilience rates — through the [`FleetAccumulator`] monoid,
//!    whose canonical `finish` makes the summary bit-identical under
//!    any input order or fan-out schedule.
//!
//! ```no_run
//! use bwsa_corpus::Corpus;
//!
//! let corpus = Corpus::open("corpus.toml".as_ref())?;
//! let summary = corpus.session().with_jobs(8).run_all();
//! assert_eq!(summary.failed + summary.degraded + summary.ok,
//!            summary.entries.len() as u64);
//! # Ok::<(), bwsa_corpus::CorpusError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod error;
mod fleet;
pub mod journal;
mod manifest;
mod run;

/// Failpoint sites this crate traverses (see `bwsa_resilience::failpoint`).
pub mod failpoints {
    /// Fires when a cache cell read begins; a fault degrades to a miss.
    pub const CACHE_READ: &str = "corpus.cache_read";
    /// Fires when a cache cell write begins; a fault skips the write.
    pub const CACHE_WRITE: &str = "corpus.cache_write";
    /// Fires when a journal append begins; a fault poisons the journal
    /// (later appends are dropped) without failing the run.
    pub const JOURNAL_APPEND: &str = "corpus.journal_append";
    /// Fires when one entry's trace bytes start decoding (any format);
    /// a fault degrades that entry to a `failed` row, never the batch.
    pub const INGEST_DECODE: &str = "corpus.ingest_decode";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[CACHE_READ, CACHE_WRITE, JOURNAL_APPEND, INGEST_DECODE];
}

pub use cache::{CacheKey, CacheStats, ResultCache, DEFAULT_CACHE_BUDGET, ENGINE_VERSION};
pub use error::CorpusError;
pub use fleet::{
    ClassWin, EntryRecord, EntryStatus, FanOutDecision, FleetAccumulator, FleetSummary,
    HistogramBucket, Percentiles, FLEET_SUMMARY_VERSION,
};
pub use manifest::{Manifest, ManifestEntry, DEFAULT_BASELINE, DEFAULT_CLASS, DEFAULT_THRESHOLD};
pub use run::{Corpus, CorpusSession, PARALLEL_BYTE_THRESHOLD};
