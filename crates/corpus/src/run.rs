//! Opening a corpus and fanning supervised [`Session`]s across it.
//!
//! [`Corpus::open`] validates the manifest up front (parse, duplicate
//! paths, dangling entries) so a batch never starts against a corpus
//! that cannot finish. [`CorpusSession::run_all`] then runs one
//! supervised session per entry via [`parallel_map`] and folds the
//! per-entry records into a [`FleetSummary`].
//!
//! Each entry gets its own degradation ladder, so one corrupt trace
//! never sinks the batch:
//!
//! 1. **Ingest** reads BWSS2 streams and BWSS3 columnar files under
//!    [`RecoveryPolicy::Salvage`] — damaged chunks or blocks are
//!    dropped and counted, not fatal.
//! 2. **Analysis** runs under the session supervisor (configurable via
//!    [`CorpusSession::with_supervisor`]), inheriting the
//!    parallel→serial→streaming ladder.
//! 3. The whole entry is wrapped in [`supervisor::catch`]: even a
//!    panic is contained to a `failed` row in the summary.

use std::path::{Path, PathBuf};

use bwsa_core::parallel::parallel_map;
use bwsa_core::{AnalysisPipeline, Classified, ConflictConfig, Session, SupervisorConfig};
use bwsa_obs::Obs;
use bwsa_resilience::supervisor;
use bwsa_trace::stream::{RecoveryPolicy, StreamReader};
use bwsa_trace::{codec, columnar};
use bwsa_trace::{io as trace_io, Trace};

use crate::cache::{CacheKey, CacheStats, ResultCache, DEFAULT_CACHE_BUDGET};
use crate::error::CorpusError;
use crate::failpoints;
use crate::fleet::{EntryRecord, EntryStatus, FanOutDecision, FleetAccumulator, FleetSummary};
use crate::journal::{self, Journal, JournalEntry};
use crate::manifest::{Manifest, ManifestEntry};

/// Below this per-entry file size the batch runs serially even when
/// `with_jobs` asked for more: for sub-megabyte traces the worker-thread
/// spawn and queue handoff cost more than the decode+analysis they
/// parallelise, so fan-out *loses* wall-clock (the corpus bench showed
/// `--jobs 4` slower than serial on 74 KiB traces). The gate keys on the
/// **largest** entry — one big trace is enough to make fan-out pay.
pub const PARALLEL_BYTE_THRESHOLD: u64 = 1 << 20;

/// An opened, validated corpus — the root object of the batch API.
///
/// ```no_run
/// use bwsa_corpus::Corpus;
///
/// let summary = Corpus::open("corpus.toml".as_ref())?
///     .session()
///     .with_jobs(4)
///     .run_all();
/// println!("{}", summary.to_json().to_pretty_string());
/// # Ok::<(), bwsa_corpus::CorpusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    manifest: Manifest,
}

impl Corpus {
    /// Loads and fully validates a manifest file.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the manifest cannot be read,
    /// [`CorpusError::Manifest`]/[`CorpusError::DuplicatePath`] for
    /// malformed documents, and [`CorpusError::DanglingEntry`] when an
    /// entry's trace file does not exist.
    pub fn open(manifest_path: &Path) -> Result<Corpus, CorpusError> {
        Corpus::from_manifest(Manifest::load(manifest_path)?)
    }

    /// Wraps an already-parsed manifest, running the on-disk checks.
    ///
    /// # Errors
    ///
    /// [`CorpusError::DanglingEntry`] when an entry's file is missing.
    pub fn from_manifest(manifest: Manifest) -> Result<Corpus, CorpusError> {
        manifest.check_entries_exist()?;
        Ok(Corpus { manifest })
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Starts configuring a batch run, mirroring the
    /// [`Session`] builder idiom.
    pub fn session(&self) -> CorpusSession<'_> {
        CorpusSession {
            corpus: self,
            jobs: 1,
            threshold: None,
            supervisor: None,
            obs: Obs::noop(),
            cache_dir: None,
            cache_budget: DEFAULT_CACHE_BUDGET,
            resume: false,
        }
    }
}

/// A configured batch run over one [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusSession<'c> {
    corpus: &'c Corpus,
    jobs: usize,
    threshold: Option<u64>,
    supervisor: Option<SupervisorConfig>,
    obs: Obs,
    cache_dir: Option<PathBuf>,
    cache_budget: u64,
    resume: bool,
}

impl CorpusSession<'_> {
    /// Worker threads to fan entries across (clamped to at least 1).
    /// The default is 1 — serial, the reference schedule the parallel
    /// one is proven bit-identical to.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides every entry's conflict threshold for this run.
    #[must_use]
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Supervises each entry's analysis with the given retry/downgrade
    /// policy.
    #[must_use]
    pub fn with_supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = Some(config);
        self
    }

    /// Attaches an observer; per-entry sessions inherit clones of it,
    /// and the batch feeds `corpus.*` counters into it.
    #[must_use]
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Enables the content-addressed result cache in `dir` (typically
    /// `.bwsa-cache/` beside the manifest): entries whose trace
    /// content, config, and engine version match a verified cell are
    /// served from disk instead of re-analyzed, and fresh results are
    /// written back. Cached and fresh runs produce byte-identical
    /// summaries — the cell codec round-trips [`EntryRecord`] exactly.
    #[must_use]
    pub fn with_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Byte budget for the cache directory's LRU eviction pass (default
    /// [`DEFAULT_CACHE_BUDGET`]).
    #[must_use]
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Resumes an interrupted run: the run journal's completed entries
    /// are loaded (falling back to the rotated ancestor when the newest
    /// journal is torn) and the journal is compacted, instead of
    /// rotating to a fresh one. Requires [`CorpusSession::with_cache`];
    /// without a cache the flag is inert.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Runs every entry and folds the results into a [`FleetSummary`].
    ///
    /// Infallible by design: corpus-level validation already happened
    /// in [`Corpus::open`], and every per-entry failure mode — corrupt
    /// file, analysis error, even a panic — is contained to that
    /// entry's `failed` row.
    pub fn run_all(&self) -> FleetSummary {
        let _span = self.obs.span("corpus_run");
        let entries = self.corpus.manifest.entries.clone();
        let cache = self
            .cache_dir
            .as_ref()
            .map(|dir| ResultCache::open(dir.clone(), self.cache_budget));
        // The journal needs the writer lock: a read-only cache (second
        // concurrent runner) reads cells but leaves the journal alone.
        let journal = match &cache {
            Some(c) if c.writable() => {
                if self.resume {
                    let (completed, _) = journal::load(c.dir());
                    self.obs
                        .add("corpus.journal_resumed", completed.len() as u64);
                    Journal::resumed(c.dir(), &completed)
                } else {
                    Journal::fresh(c.dir())
                }
            }
            _ => None,
        };
        let fan_out = self.plan_fan_out(&entries);
        if fan_out.effective_jobs < self.jobs {
            self.obs.add("corpus.fan_out_demoted", 1);
        }
        let records = parallel_map(entries, fan_out.effective_jobs, |_i, entry| {
            self.run_entry(&entry, cache.as_ref(), journal.as_ref())
        });
        for r in &records {
            self.obs.add("corpus.entries", 1);
            match r.status {
                EntryStatus::Ok => self.obs.add("corpus.entries_ok", 1),
                EntryStatus::Degraded => self.obs.add("corpus.entries_degraded", 1),
                EntryStatus::Failed => self.obs.add("corpus.entries_failed", 1),
            }
            self.obs.add("corpus.records", r.records);
        }
        if let Some(journal) = &journal {
            journal.finish();
        }
        let mut cache_stats = CacheStats::default();
        if let Some(cache) = &cache {
            cache.evict_to_budget();
            cache_stats = cache.stats();
            self.obs.add("corpus.cache_hits", cache_stats.hits);
            self.obs.add("corpus.cache_misses", cache_stats.misses);
            self.obs
                .add("corpus.cache_evictions", cache_stats.evictions);
            self.obs.add("corpus.cache_corrupt", cache_stats.corrupt);
        }
        let mut summary = records
            .into_iter()
            .collect::<FleetAccumulator>()
            .finish(&self.corpus.manifest.name);
        summary.cache = cache_stats;
        summary.fan_out = fan_out;
        summary
    }

    /// Decides serial vs parallel fan-out for this batch: requested jobs
    /// are demoted to 1 when every entry's file is smaller than
    /// [`PARALLEL_BYTE_THRESHOLD`]. Files whose size cannot be read are
    /// treated as above-threshold (they will surface their error in the
    /// per-entry record, not here).
    fn plan_fan_out(&self, entries: &[ManifestEntry]) -> FanOutDecision {
        let largest = entries
            .iter()
            .map(|e| match std::fs::metadata(&e.path) {
                Ok(meta) => meta.len(),
                Err(_) => u64::MAX,
            })
            .max()
            .unwrap_or(0);
        let effective = if self.jobs > 1 && largest < PARALLEL_BYTE_THRESHOLD {
            1
        } else {
            self.jobs
        };
        FanOutDecision {
            requested_jobs: self.jobs,
            effective_jobs: effective,
            largest_entry_bytes: largest,
            threshold_bytes: PARALLEL_BYTE_THRESHOLD,
        }
    }

    /// Runs one entry through the full ladder; never propagates an
    /// error or a panic.
    fn run_entry(
        &self,
        entry: &ManifestEntry,
        cache: Option<&ResultCache>,
        journal: Option<&Journal>,
    ) -> EntryRecord {
        let threshold = self.threshold.unwrap_or(entry.threshold);
        let outcome = match cache {
            Some(cache) => supervisor::catch(|| self.run_entry_cached(entry, threshold, cache)),
            None => supervisor::catch(|| (self.run_entry_inner(entry, threshold), None)),
        };
        match outcome {
            Ok((record, cache_key)) => {
                if record.status != EntryStatus::Failed {
                    if let (Some(journal), Some(cache_key)) = (journal, cache_key) {
                        journal.append(&JournalEntry {
                            key: entry.key.clone(),
                            cache_key,
                        });
                        self.obs.add("corpus.journal_appends", 1);
                    }
                }
                record
            }
            Err(fault) => EntryRecord::failed(&entry.key, &entry.class, fault.to_string()),
        }
    }

    /// The cached entry path: digest the trace bytes, try the cell,
    /// analyze and write back on a miss. Returns the record plus the
    /// cache key the journal should log.
    fn run_entry_cached(
        &self,
        entry: &ManifestEntry,
        threshold: u64,
        cache: &ResultCache,
    ) -> (EntryRecord, Option<CacheKey>) {
        let bytes = match std::fs::read(&entry.path) {
            Ok(bytes) => bytes,
            Err(e) => {
                let message = format!("cannot read {}: {e}", entry.path.display());
                return (EntryRecord::failed(&entry.key, &entry.class, message), None);
            }
        };
        let key = CacheKey::for_entry(
            codec::content_digest(&bytes),
            &entry.key,
            &entry.class,
            threshold,
            entry.baseline,
        );
        if let Some(record) = cache.load(key, &entry.key) {
            return (record, Some(key));
        }
        let record = self.run_entry_bytes(entry, threshold, &bytes);
        cache.store(key, &record);
        (record, Some(key))
    }

    fn run_entry_inner(&self, entry: &ManifestEntry, threshold: u64) -> EntryRecord {
        let bytes = match std::fs::read(&entry.path) {
            Ok(bytes) => bytes,
            Err(e) => {
                let message = format!("cannot read {}: {e}", entry.path.display());
                return EntryRecord::failed(&entry.key, &entry.class, message);
            }
        };
        self.run_entry_bytes(entry, threshold, &bytes)
    }

    fn run_entry_bytes(&self, entry: &ManifestEntry, threshold: u64, bytes: &[u8]) -> EntryRecord {
        let fail = |e: String| EntryRecord::failed(&entry.key, &entry.class, e);
        let (trace, chunks_dropped) = match load_trace_bytes(bytes, &entry.path) {
            Ok(loaded) => loaded,
            Err(e) => return fail(e),
        };
        if trace.is_empty() {
            return fail("trace holds no records".to_owned());
        }
        let conflict = match ConflictConfig::with_threshold(threshold) {
            Ok(c) => c,
            Err(e) => return fail(e.to_string()),
        };
        let pipeline = AnalysisPipeline {
            conflict,
            ..AnalysisPipeline::default()
        };
        let mut session = Session::new(&trace)
            .with_pipeline(pipeline)
            .with_observer(self.obs.clone());
        if let Some(cfg) = self.supervisor {
            session = session.with_supervisor(cfg);
        }
        let analysis = match session.run() {
            Ok(a) => a,
            Err(e) => return fail(e.to_string()),
        };
        let ws = analysis.working_sets.report;
        let required = match session.required_bht_size(Classified(false), entry.baseline as usize) {
            Ok(r) => r,
            Err(e) => return fail(e.to_string()),
        };
        let (retries, downgrades) = match session.resilience_summary() {
            Some(s) => (s.retries, s.downgrades.len() as u64),
            None => (0, 0),
        };
        let status = if chunks_dropped > 0 || downgrades > 0 {
            EntryStatus::Degraded
        } else {
            EntryStatus::Ok
        };
        EntryRecord {
            key: entry.key.clone(),
            class: entry.class.clone(),
            status,
            error: None,
            records: trace.len() as u64,
            chunks_dropped,
            retries,
            downgrades,
            total_sets: ws.total_sets as u64,
            max_set: ws.max_size as u64,
            avg_dynamic_size: ws.avg_dynamic_size,
            avg_static_size: ws.avg_static_size,
            required_size: required.size as u64,
            baseline: entry.baseline,
        }
    }
}

/// Decodes one trace's bytes by magic (BWST in-memory binary, BWSS3
/// columnar, or BWSS2 stream), salvaging damaged stream chunks or
/// columnar blocks. Returns the trace and the number of chunks/blocks
/// salvage had to drop. The caller reads the file once; with a cache
/// enabled the same bytes also feed the content digest.
fn load_trace_bytes(bytes: &[u8], path: &Path) -> Result<(Trace, u64), String> {
    bwsa_resilience::failpoint!(failpoints::INGEST_DECODE);
    if columnar::is_columnar(bytes) {
        let (trace, report) = columnar::read_columnar(bytes, RecoveryPolicy::Salvage)
            .map_err(|e| format!("cannot decode {}: {e}", path.display()))?;
        return Ok((trace, report.chunks_dropped));
    }
    if bytes.starts_with(b"BWST") {
        let trace = trace_io::decode_binary(bytes)
            .map_err(|e| format!("cannot decode {}: {e}", path.display()))?;
        return Ok((trace, 0));
    }
    let mut reader = StreamReader::with_recovery(bytes, RecoveryPolicy::Salvage)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut trace = Trace::new(reader.name().to_owned());
    for item in reader.by_ref() {
        let record = item.map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        trace
            .push(record)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    }
    if let Some(total) = reader.total_instructions() {
        trace.meta_mut().total_instructions = total;
    }
    Ok((trace, reader.salvage_report().chunks_dropped))
}
