//! Cross-run aggregation: folding per-entry results into a versioned
//! [`FleetSummary`].
//!
//! The fold is designed so the summary is **bit-identical** no matter
//! how the corpus was scheduled. [`FleetAccumulator`] is a commutative
//! monoid — `merge` concatenates keyed entry records, `empty` is the
//! identity — and every statistic is computed only in
//! [`FleetAccumulator::finish`], *after* the records are sorted by
//! their unique manifest key. Floating-point sums therefore always run
//! in the same (canonical) order, percentile selection always indexes
//! the same sorted vector, and serial vs parallel fan-out or any input
//! permutation produce the same JSON bytes. Property tests in
//! `tests/fleet_prop.rs` pin this, in the spirit of the shard merge
//! algebra (DESIGN.md §8): associativity + canonical finish ⇒
//! schedule-independence.
//!
//! Nothing time- or host-dependent goes into a summary (no wall times,
//! no RSS); throughput lives in `corpus_bench` instead.

use bwsa_obs::json::Json;

use crate::cache::CacheStats;

/// Version stamp of the `FleetSummary` JSON document. Bump when the
/// shape changes and regenerate `tests/golden/fleet_summary.schema`.
pub const FLEET_SUMMARY_VERSION: u64 = 1;

/// How far one corpus entry got down the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// Clean ingest, clean analysis.
    Ok,
    /// The batch kept going, but this entry needed help: salvage
    /// dropped damaged chunks, or the supervisor downgraded engines.
    Degraded,
    /// The entry produced no analysis (unreadable file, empty trace,
    /// contained panic). Its metrics are zero and excluded from
    /// distributions.
    Failed,
}

impl EntryStatus {
    /// The status as it appears in summary JSON.
    pub fn label(self) -> &'static str {
        match self {
            EntryStatus::Ok => "ok",
            EntryStatus::Degraded => "degraded",
            EntryStatus::Failed => "failed",
        }
    }
}

/// Everything the fold needs to know about one analyzed corpus entry.
///
/// `key` must be unique across the corpus (the manifest loader enforces
/// this); it is the sort key that makes the fold canonical.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryRecord {
    /// The entry's manifest key (path as written).
    pub key: String,
    /// Workload-class tag.
    pub class: String,
    /// Ladder outcome.
    pub status: EntryStatus,
    /// Rendered error for a failed entry.
    pub error: Option<String>,
    /// Dynamic branch records analyzed.
    pub records: u64,
    /// Damaged chunks salvage dropped during ingest.
    pub chunks_dropped: u64,
    /// Supervisor retries granted.
    pub retries: u64,
    /// Supervisor engine downgrades.
    pub downgrades: u64,
    /// Working sets found (Table 2's row count input).
    pub total_sets: u64,
    /// Largest working set.
    pub max_set: u64,
    /// Execution-weighted mean working-set size.
    pub avg_dynamic_size: f64,
    /// Static mean working-set size.
    pub avg_static_size: f64,
    /// Smallest allocated BHT that beats the conventional baseline.
    pub required_size: u64,
    /// The conventional baseline it had to beat.
    pub baseline: u64,
}

impl EntryRecord {
    /// A record for an entry that produced no analysis.
    pub fn failed(key: &str, class: &str, error: impl Into<String>) -> Self {
        EntryRecord {
            key: key.to_owned(),
            class: class.to_owned(),
            status: EntryStatus::Failed,
            error: Some(error.into()),
            records: 0,
            chunks_dropped: 0,
            retries: 0,
            downgrades: 0,
            total_sets: 0,
            max_set: 0,
            avg_dynamic_size: 0.0,
            avg_static_size: 0.0,
            required_size: 0,
            baseline: 0,
        }
    }

    /// Allocation win: how many times smaller the allocated BHT is than
    /// the conventional baseline (`baseline / required_size`). Zero for
    /// failed entries.
    pub fn win(&self) -> f64 {
        if self.required_size == 0 {
            0.0
        } else {
            self.baseline as f64 / self.required_size as f64
        }
    }

    fn analyzed(&self) -> bool {
        self.status != EntryStatus::Failed
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("path", Json::from(self.key.clone())),
            ("class", Json::from(self.class.clone())),
            ("status", Json::from(self.status.label())),
            (
                "error",
                match &self.error {
                    Some(e) => Json::from(e.clone()),
                    None => Json::Null,
                },
            ),
            ("records", Json::UInt(self.records)),
            ("chunks_dropped", Json::UInt(self.chunks_dropped)),
            ("retries", Json::UInt(self.retries)),
            ("downgrades", Json::UInt(self.downgrades)),
            ("total_sets", Json::UInt(self.total_sets)),
            ("max_set", Json::UInt(self.max_set)),
            ("avg_dynamic_size", Json::Float(self.avg_dynamic_size)),
            ("avg_static_size", Json::Float(self.avg_static_size)),
            ("required_size", Json::UInt(self.required_size)),
            ("baseline", Json::UInt(self.baseline)),
            ("win", Json::Float(self.win())),
        ])
    }
}

/// How `run_all` scheduled the batch: the fan-out mode it chose and the
/// byte evidence behind the choice (see
/// [`crate::CorpusSession::with_jobs`] and the per-entry size threshold
/// in `run.rs`).
///
/// Like [`CacheStats`], this is run-shaped telemetry, deliberately
/// excluded from [`FleetSummary::to_json`]: the JSON bytes are the
/// bit-identity contract and must not depend on how the run was
/// scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FanOutDecision {
    /// Worker threads the caller asked for.
    pub requested_jobs: usize,
    /// Worker threads actually used (1 when demoted to serial).
    pub effective_jobs: usize,
    /// Size of the largest entry file in the batch.
    pub largest_entry_bytes: u64,
    /// The per-entry size below which fan-out is demoted.
    pub threshold_bytes: u64,
}

impl FanOutDecision {
    /// `true` when the batch ran on one thread.
    pub fn serial(&self) -> bool {
        self.effective_jobs <= 1
    }

    /// The chosen mode as a label (`"serial"` / `"parallel"`).
    pub fn mode(&self) -> &'static str {
        if self.serial() {
            "serial"
        } else {
            "parallel"
        }
    }
}

/// The fold state: a bag of keyed entry records.
///
/// `merge` is associative and commutative with [`FleetAccumulator::empty`]
/// as identity, because it only concatenates; all order-sensitive work
/// waits for the canonical sort in [`FleetAccumulator::finish`].
#[derive(Debug, Clone, Default)]
pub struct FleetAccumulator {
    entries: Vec<EntryRecord>,
}

impl FleetAccumulator {
    /// The monoid identity.
    pub fn empty() -> Self {
        FleetAccumulator::default()
    }

    /// Folds one entry in.
    pub fn absorb(&mut self, record: EntryRecord) {
        self.entries.push(record);
    }

    /// Combines two partial folds (associative, commutative).
    #[must_use]
    pub fn merge(mut self, other: FleetAccumulator) -> FleetAccumulator {
        self.entries.extend(other.entries);
        self
    }

    /// Number of records absorbed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonicalizes (sort by key) and computes every fleet statistic.
    pub fn finish(mut self, corpus_name: &str) -> FleetSummary {
        self.entries.sort_by(|a, b| a.key.cmp(&b.key));
        let entries = self.entries;

        let mut ok = 0u64;
        let mut degraded = 0u64;
        let mut failed = 0u64;
        let mut records = 0u64;
        let mut retries = 0u64;
        let mut downgrades = 0u64;
        let mut chunks_dropped = 0u64;
        for e in &entries {
            match e.status {
                EntryStatus::Ok => ok += 1,
                EntryStatus::Degraded => degraded += 1,
                EntryStatus::Failed => failed += 1,
            }
            records += e.records;
            retries += e.retries;
            downgrades += e.downgrades;
            chunks_dropped += e.chunks_dropped;
        }

        let analyzed: Vec<&EntryRecord> = entries.iter().filter(|e| e.analyzed()).collect();
        let total_sets = Percentiles::of(analyzed.iter().map(|e| e.total_sets as f64));
        let max_size = Percentiles::of(analyzed.iter().map(|e| e.max_set as f64));
        let avg_dynamic = Percentiles::of(analyzed.iter().map(|e| e.avg_dynamic_size));
        let histogram = pow2_histogram(analyzed.iter().map(|e| e.max_set));

        // Per-class allocation wins. The iteration order is the
        // canonical entry order, so per-class float sums are
        // deterministic too.
        let mut classes: Vec<ClassWin> = Vec::new();
        for e in &analyzed {
            let win = e.win();
            match classes.iter_mut().find(|c| c.class == e.class) {
                Some(c) => {
                    c.entries += 1;
                    c.win_sum += win;
                    c.min_win = c.min_win.min(win);
                    c.max_win = c.max_win.max(win);
                }
                None => classes.push(ClassWin {
                    class: e.class.clone(),
                    entries: 1,
                    win_sum: win,
                    min_win: win,
                    max_win: win,
                }),
            }
        }
        classes.sort_by(|a, b| a.class.cmp(&b.class));

        FleetSummary {
            name: corpus_name.to_owned(),
            entries,
            ok,
            degraded,
            failed,
            records,
            retries,
            downgrades,
            chunks_dropped,
            total_sets,
            max_size,
            avg_dynamic,
            histogram,
            classes,
            cache: CacheStats::default(),
            fan_out: FanOutDecision::default(),
        }
    }
}

impl FromIterator<EntryRecord> for FleetAccumulator {
    fn from_iter<I: IntoIterator<Item = EntryRecord>>(iter: I) -> Self {
        FleetAccumulator {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Nearest-rank percentiles over one per-entry metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles; all-zero when `values` is
    /// empty. Inputs must be finite (they come from counts and means).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Percentiles {
        let mut v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Percentiles {
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0 * v.len() as f64).ceil() as usize).max(1) - 1;
            v[idx.min(v.len() - 1)]
        };
        Percentiles {
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            min: v[0],
            max: v[v.len() - 1],
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("p50", Json::Float(self.p50)),
            ("p90", Json::Float(self.p90)),
            ("p99", Json::Float(self.p99)),
            ("min", Json::Float(self.min)),
            ("max", Json::Float(self.max)),
        ])
    }
}

/// Power-of-two histogram bucket: `count` entries with value ≤ `le`
/// (and above the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive upper bound (1, 2, 4, 8, …).
    pub le: u64,
    /// Entries in this bucket.
    pub count: u64,
}

fn pow2_histogram(values: impl IntoIterator<Item = u64>) -> Vec<HistogramBucket> {
    let values: Vec<u64> = values.into_iter().collect();
    let top = match values.iter().max() {
        None => return Vec::new(),
        Some(&m) => m,
    };
    let mut buckets = Vec::new();
    let mut lo = 0u64; // exclusive
    let mut le = 1u64;
    loop {
        let count = values.iter().filter(|&&v| v > lo && v <= le).count() as u64;
        buckets.push(HistogramBucket { le, count });
        if le >= top {
            break;
        }
        lo = le;
        le = le.saturating_mul(2);
    }
    // Values of zero (degenerate but possible: an analyzed trace whose
    // graph produced no sets) would escape every bucket; fold them into
    // the first so counts always sum to the input length.
    let zeros = values.iter().filter(|&&v| v == 0).count() as u64;
    buckets[0].count += zeros;
    buckets
}

/// Per-workload-class allocation-win aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassWin {
    /// The class tag.
    pub class: String,
    /// Analyzed entries carrying it.
    pub entries: u64,
    win_sum: f64,
    /// Smallest win in the class.
    pub min_win: f64,
    /// Largest win in the class.
    pub max_win: f64,
}

impl ClassWin {
    /// Mean allocation win across the class.
    pub fn mean_win(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.win_sum / self.entries as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("class", Json::from(self.class.clone())),
            ("entries", Json::UInt(self.entries)),
            ("mean_win", Json::Float(self.mean_win())),
            ("min_win", Json::Float(self.min_win)),
            ("max_win", Json::Float(self.max_win)),
        ])
    }
}

/// The versioned cross-run summary of one corpus run.
///
/// Produced only by [`FleetAccumulator::finish`]; entries are in
/// canonical (key-sorted) order and every statistic is a deterministic
/// function of that sorted list.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Corpus name from the manifest.
    pub name: String,
    /// Per-entry outcomes, sorted by manifest key.
    pub entries: Vec<EntryRecord>,
    /// Entries that analyzed cleanly.
    pub ok: u64,
    /// Entries that needed salvage or an engine downgrade.
    pub degraded: u64,
    /// Entries that produced no analysis.
    pub failed: u64,
    /// Total dynamic branch records analyzed.
    pub records: u64,
    /// Total supervisor retries.
    pub retries: u64,
    /// Total engine downgrades.
    pub downgrades: u64,
    /// Total salvage-dropped chunks.
    pub chunks_dropped: u64,
    /// Distribution of per-entry working-set counts.
    pub total_sets: Percentiles,
    /// Distribution of per-entry largest-set sizes.
    pub max_size: Percentiles,
    /// Distribution of per-entry dynamic mean set sizes.
    pub avg_dynamic: Percentiles,
    /// Power-of-two histogram of largest-set sizes.
    pub histogram: Vec<HistogramBucket>,
    /// Allocation win per workload class, sorted by class.
    pub classes: Vec<ClassWin>,
    /// Result-cache counters for the run that produced this summary.
    /// All-zero without a cache. Deliberately excluded from
    /// [`FleetSummary::to_json`]: the JSON bytes are the bit-identity
    /// contract, and a warm run must render identically to a cold one.
    pub cache: CacheStats,
    /// The fan-out schedule the run chose. Excluded from
    /// [`FleetSummary::to_json`] for the same reason as `cache`: a
    /// serial and a parallel run must render identical bytes.
    pub fan_out: FanOutDecision,
}

impl FleetSummary {
    /// Fraction of entries that did not analyze cleanly.
    pub fn degradation_rate(&self) -> f64 {
        let total = self.entries.len() as u64;
        if total == 0 {
            0.0
        } else {
            (self.degraded + self.failed) as f64 / total as f64
        }
    }

    /// The summary as its versioned JSON document — the bytes the
    /// bit-identity contract is stated over.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("fleet_summary_version", Json::UInt(FLEET_SUMMARY_VERSION)),
            (
                "corpus",
                Json::object([
                    ("name", Json::from(self.name.clone())),
                    ("entries", Json::UInt(self.entries.len() as u64)),
                    ("records", Json::UInt(self.records)),
                ]),
            ),
            (
                "resilience",
                Json::object([
                    ("ok", Json::UInt(self.ok)),
                    ("degraded", Json::UInt(self.degraded)),
                    ("failed", Json::UInt(self.failed)),
                    ("degradation_rate", Json::Float(self.degradation_rate())),
                    ("retries", Json::UInt(self.retries)),
                    ("downgrades", Json::UInt(self.downgrades)),
                    ("chunks_dropped", Json::UInt(self.chunks_dropped)),
                ]),
            ),
            (
                "working_sets",
                Json::object([
                    ("total_sets", self.total_sets.to_json()),
                    ("max_size", self.max_size.to_json()),
                    ("avg_dynamic_size", self.avg_dynamic.to_json()),
                    (
                        "max_size_histogram",
                        Json::Array(
                            self.histogram
                                .iter()
                                .map(|b| {
                                    Json::object([
                                        ("le", Json::UInt(b.le)),
                                        ("count", Json::UInt(b.count)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "allocation",
                Json::object([(
                    "classes",
                    Json::Array(self.classes.iter().map(ClassWin::to_json).collect()),
                )]),
            ),
            (
                "entries",
                Json::Array(self.entries.iter().map(EntryRecord::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, class: &str, max_set: u64) -> EntryRecord {
        EntryRecord {
            key: key.to_owned(),
            class: class.to_owned(),
            status: EntryStatus::Ok,
            error: None,
            records: 100,
            chunks_dropped: 0,
            retries: 0,
            downgrades: 0,
            total_sets: 4,
            max_set,
            avg_dynamic_size: 2.5,
            avg_static_size: 2.0,
            required_size: 64,
            baseline: 1024,
        }
    }

    #[test]
    fn merge_is_order_insensitive_after_finish() {
        let a = rec("a", "x", 3);
        let b = rec("b", "y", 9);
        let c = EntryRecord::failed("c", "x", "boom");
        let fwd: FleetAccumulator = vec![a.clone(), b.clone(), c.clone()].into_iter().collect();
        let rev: FleetAccumulator = vec![c, b, a].into_iter().collect();
        let fwd = fwd.finish("n").to_json().to_pretty_string();
        let rev = rev.finish("n").to_json().to_pretty_string();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn percentiles_match_nearest_rank() {
        let p = Percentiles::of((1..=100).map(|v| v as f64));
        assert_eq!((p.p50, p.p90, p.p99), (50.0, 90.0, 99.0));
        assert_eq!((p.min, p.max), (1.0, 100.0));
        let single = Percentiles::of([7.0]);
        assert_eq!((single.p50, single.p99), (7.0, 7.0));
        let empty = Percentiles::of([]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn histogram_buckets_cover_every_value() {
        let h = pow2_histogram([0, 1, 2, 3, 5, 16]);
        let total: u64 = h.iter().map(|b| b.count).sum();
        assert_eq!(total, 6);
        assert_eq!(h.last().expect("nonempty").le, 16);
        // 0 and 1 share the first bucket; 3 and 5 land in (2,4] and (4,8].
        assert_eq!(h[0], HistogramBucket { le: 1, count: 2 });
        assert_eq!(h[2], HistogramBucket { le: 4, count: 1 });
    }

    #[test]
    fn degradation_rate_counts_degraded_and_failed() {
        let mut d = rec("d", "x", 2);
        d.status = EntryStatus::Degraded;
        let acc: FleetAccumulator = vec![rec("a", "x", 2), d, EntryRecord::failed("f", "x", "e")]
            .into_iter()
            .collect();
        let summary = acc.finish("n");
        assert_eq!((summary.ok, summary.degraded, summary.failed), (1, 1, 1));
        assert!((summary.degradation_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Failed entries are excluded from distributions.
        assert_eq!(summary.total_sets.min, 4.0);
        // Wins group by class in canonical order.
        assert_eq!(summary.classes.len(), 1);
        assert_eq!(summary.classes[0].entries, 2);
        assert!((summary.classes[0].mean_win() - 16.0).abs() < 1e-12);
    }
}
