//! Content-addressed on-disk result cache for corpus entries.
//!
//! The paper's analysis is a pure function of (trace bytes, entry
//! config, engine version), so a fleet run can skip every entry whose
//! result is already on disk — **if** the cache can never silently
//! serve a stale or corrupt record. The design leans on three rules:
//!
//! 1. **Content-addressed keys.** A cell's name is a digest of the
//!    trace *content* ([`bwsa_trace::codec::content_digest`]), the
//!    manifest entry's analysis config (key, class, threshold,
//!    baseline), and [`ENGINE_VERSION`]. Editing a trace, retagging an
//!    entry, or changing the analysis engine moves the key; stale cells
//!    are simply never addressed again and age out under the byte
//!    budget.
//! 2. **Verify-on-read, miss-on-anything.** Cells are framed with the
//!    BWSS2 codec primitives — magic, format version, length, payload,
//!    CRC32 — and decode re-checks all of them plus the embedded entry
//!    key. A torn, bit-flipped, truncated, or version-mismatched cell
//!    is a *miss* (counted in [`CacheStats::corrupt`]), never an error:
//!    the entry is recomputed and the cell rewritten.
//! 3. **Crash-safe writes.** Cells are written to a temp file, fsync'd,
//!    and renamed into place, so a `kill -9` leaves either the old
//!    cell, the new cell, or a stray temp file — never a torn cell at
//!    the addressed name. A pid lock file keeps concurrent corpus runs
//!    from interleaving writes; a second runner degrades to read-only.
//!
//! Cache faults — including the `corpus.cache_read` /
//! `corpus.cache_write` failpoints — are contained inside this module
//! with [`supervisor::catch`]: an injected fault degrades a read to a
//! miss and skips a write, so a cache under chaos produces the same
//! `FleetSummary` bytes as no cache at all.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bwsa_resilience::supervisor;
use bwsa_trace::codec::{self, Cursor};

use crate::failpoints;
use crate::fleet::{EntryRecord, EntryStatus};

/// Version of the *analysis engine* whose results the cache stores.
/// Bump whenever analysis semantics change (pipeline defaults, conflict
/// algebra, required-size search); every existing cell then becomes
/// unaddressable and ages out.
pub const ENGINE_VERSION: u64 = 1;

/// Version of the on-disk cell framing. A cell with any other value is
/// a miss.
const CELL_FORMAT_VERSION: u16 = 1;

/// Cell file magic.
const CELL_MAGIC: &[u8; 4] = b"BWCC";

/// Default byte budget for a cache directory (LRU-evicted past this).
pub const DEFAULT_CACHE_BUDGET: u64 = 256 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The content address of one cached entry result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Derives the cache key for one manifest entry: trace content
    /// digest × entry config × [`ENGINE_VERSION`]. `threshold` is the
    /// *effective* threshold (after any session-wide override).
    pub fn for_entry(
        trace_digest: u64,
        entry_key: &str,
        class: &str,
        threshold: u64,
        baseline: u64,
    ) -> CacheKey {
        let mut h = fnv_u64(FNV_OFFSET, trace_digest);
        h = fnv_u64(h, ENGINE_VERSION);
        h = fnv_u64(h, entry_key.len() as u64);
        h = fnv_bytes(h, entry_key.as_bytes());
        h = fnv_u64(h, class.len() as u64);
        h = fnv_bytes(h, class.as_bytes());
        h = fnv_u64(h, threshold);
        h = fnv_u64(h, baseline);
        CacheKey(h)
    }

    /// The key as the raw 64-bit digest (journal wire form).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its journal wire form.
    pub fn from_u64(v: u64) -> CacheKey {
        CacheKey(v)
    }

    /// The cell file name this key addresses.
    pub fn file_name(self) -> String {
        format!("{:016x}.cell", self.0)
    }
}

/// Serializes an [`EntryRecord`] as one cache cell: magic, format
/// version, CRC32-framed payload. Failed records have no stable result
/// to cache; callers must not store them (decode rejects the status).
pub fn encode_cell(record: &EntryRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 + record.key.len() + record.class.len());
    codec::put_varint(&mut payload, ENGINE_VERSION);
    codec::put_varint(&mut payload, record.key.len() as u64);
    payload.extend_from_slice(record.key.as_bytes());
    codec::put_varint(&mut payload, record.class.len() as u64);
    payload.extend_from_slice(record.class.as_bytes());
    payload.push(match record.status {
        EntryStatus::Ok => 0,
        EntryStatus::Degraded => 1,
        EntryStatus::Failed => 2,
    });
    for v in [
        record.records,
        record.chunks_dropped,
        record.retries,
        record.downgrades,
        record.total_sets,
        record.max_set,
        record.required_size,
        record.baseline,
    ] {
        codec::put_varint(&mut payload, v);
    }
    codec::put_u64_le(&mut payload, record.avg_dynamic_size.to_bits());
    codec::put_u64_le(&mut payload, record.avg_static_size.to_bits());

    let mut cell = Vec::with_capacity(payload.len() + 14);
    cell.extend_from_slice(CELL_MAGIC);
    cell.extend_from_slice(&CELL_FORMAT_VERSION.to_le_bytes());
    codec::put_u32_le(&mut cell, payload.len() as u32);
    cell.extend_from_slice(&payload);
    codec::put_u32_le(&mut cell, codec::crc32(&payload));
    cell
}

/// Verify-on-read decode of one cache cell. Returns `None` — a miss —
/// for *any* defect: bad magic or framing version, truncation, trailing
/// bytes, CRC mismatch, engine-version mismatch, a stored entry key
/// other than `expected_key`, or a status that is never cached.
pub fn decode_cell(bytes: &[u8], expected_key: &str) -> Option<EntryRecord> {
    let mut cur = Cursor::new(bytes);
    if cur.take(4).ok()? != CELL_MAGIC {
        return None;
    }
    if cur.get_u16_le().ok()? != CELL_FORMAT_VERSION {
        return None;
    }
    let len = cur.get_u32_le().ok()? as usize;
    let payload = cur.take(len).ok()?;
    let crc = cur.get_u32_le().ok()?;
    // An exact-length check makes every bit flip in the length field
    // structurally detectable, independent of the CRC.
    if !cur.is_empty() || codec::crc32(payload) != crc {
        return None;
    }

    let mut p = Cursor::new(payload);
    if p.get_varint().ok()? != ENGINE_VERSION {
        return None;
    }
    let key_len = p.get_varint().ok()? as usize;
    let key = std::str::from_utf8(p.take(key_len).ok()?).ok()?;
    if key != expected_key {
        return None;
    }
    let class_len = p.get_varint().ok()? as usize;
    let class = std::str::from_utf8(p.take(class_len).ok()?).ok()?;
    let status = match p.get_u8().ok()? {
        0 => EntryStatus::Ok,
        1 => EntryStatus::Degraded,
        _ => return None,
    };
    let mut ints = [0u64; 8];
    for slot in &mut ints {
        *slot = p.get_varint().ok()?;
    }
    let avg_dynamic_size = f64::from_bits(p.get_u64_le().ok()?);
    let avg_static_size = f64::from_bits(p.get_u64_le().ok()?);
    if !p.is_empty() {
        return None;
    }
    Some(EntryRecord {
        key: key.to_owned(),
        class: class.to_owned(),
        status,
        error: None,
        records: ints[0],
        chunks_dropped: ints[1],
        retries: ints[2],
        downgrades: ints[3],
        total_sets: ints[4],
        max_set: ints[5],
        avg_dynamic_size,
        avg_static_size,
        required_size: ints[6],
        baseline: ints[7],
    })
}

/// Hit/miss/eviction/corruption counters for one cache over one run.
///
/// Deliberately **not** part of `FleetSummary::to_json`: the summary's
/// bytes are the bit-identity contract (warm and cold runs must render
/// identically), so cache observability flows through these counters
/// and the `corpus.cache_*` obs metrics instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from a verified cell.
    pub hits: u64,
    /// Entries that had to be analyzed (no cell, or an invalid one).
    pub misses: u64,
    /// Cells removed by the byte-budget LRU pass.
    pub evictions: u64,
    /// Cells that existed but failed verify-on-read (subset of misses).
    pub corrupt: u64,
}

/// Exclusive-writer pid lock; removed on drop.
#[derive(Debug)]
struct LockFile {
    path: PathBuf,
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Claims `dir/lock` for this process. A live lock held by another
/// process yields `None` (the cache degrades to read-only); a stale
/// lock left by a dead process is broken and re-taken.
fn acquire_lock(dir: &Path) -> Option<LockFile> {
    let path = dir.join("lock");
    for _ in 0..2 {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = write!(file, "{}", std::process::id());
                let _ = file.sync_all();
                return Some(LockFile { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match holder {
                    // Unparseable lock content: a torn lock write, safe
                    // to break.
                    None => true,
                    Some(pid) => {
                        // Liveness is only checkable where /proc exists;
                        // elsewhere assume the holder is alive.
                        Path::new("/proc").exists() && !Path::new(&format!("/proc/{pid}")).exists()
                    }
                };
                if !stale {
                    return None;
                }
                let _ = fs::remove_file(&path);
            }
            Err(_) => return None,
        }
    }
    None
}

/// One open cache directory: content-addressed cells plus the run
/// journal, shared across a batch's worker threads.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    budget: u64,
    lock: Option<LockFile>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory with the given byte
    /// budget. Infallible: an uncreatable directory just means every
    /// read misses, and a lock held by a live process means reads work
    /// but writes are skipped ([`ResultCache::writable`]).
    pub fn open(dir: impl Into<PathBuf>, budget: u64) -> ResultCache {
        let dir = dir.into();
        let _ = fs::create_dir_all(&dir);
        let lock = acquire_lock(&dir);
        ResultCache {
            dir,
            budget,
            lock,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this process holds the writer lock.
    pub fn writable(&self) -> bool {
        self.lock.is_some()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Looks `key` up and fully verifies the cell. Any defect — torn
    /// write, bit flip, version or key mismatch, injected fault at the
    /// `corpus.cache_read` failpoint — is a miss, never an error.
    pub fn load(&self, key: CacheKey, expected_key: &str) -> Option<EntryRecord> {
        let path = self.dir.join(key.file_name());
        let read = supervisor::catch(|| {
            bwsa_resilience::failpoint!(failpoints::CACHE_READ);
            fs::read(&path)
        });
        match read {
            Ok(Ok(bytes)) => match decode_cell(&bytes, expected_key) {
                Some(record) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    // Best-effort LRU recency: bump the cell's mtime.
                    if let Ok(file) = fs::File::options().write(true).open(&path) {
                        let _ = file.set_modified(std::time::SystemTime::now());
                    }
                    Some(record)
                }
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Ok(Err(e)) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            // Injected fault or panic inside the read: contained, miss.
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// `true` when `key` addresses a cell that would verify for
    /// `expected_key`. Does not touch the counters or recency — used by
    /// the daemon to quota-charge only the misses before running.
    pub fn peek(&self, key: CacheKey, expected_key: &str) -> bool {
        fs::read(self.dir.join(key.file_name()))
            .ok()
            .and_then(|bytes| decode_cell(&bytes, expected_key))
            .is_some()
    }

    /// Atomically writes `record`'s cell. Skipped without the writer
    /// lock, for failed records (no stable result), and on any fault —
    /// including the `corpus.cache_write` failpoint — since an
    /// unwritten cell only costs a future recompute.
    pub fn store(&self, key: CacheKey, record: &EntryRecord) {
        if self.lock.is_none() || record.status == EntryStatus::Failed {
            return;
        }
        let path = self.dir.join(key.file_name());
        let tmp = self
            .dir
            .join(format!("{:016x}.tmp{}", key.as_u64(), std::process::id()));
        let bytes = encode_cell(record);
        let outcome = supervisor::catch(|| {
            bwsa_resilience::failpoint!(failpoints::CACHE_WRITE);
            write_atomic(&tmp, &path, &bytes)
        });
        if !matches!(outcome, Ok(Ok(()))) {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// The byte-budget LRU pass: while the cells exceed the budget,
    /// remove the least-recently-used (oldest mtime, path as a
    /// deterministic tiebreak). Requires the writer lock; errors are
    /// ignored (a racing reader just sees a miss).
    pub fn evict_to_budget(&self) {
        if self.lock.is_none() {
            return;
        }
        let Ok(read_dir) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut cells: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        for entry in read_dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cell") {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                cells.push((mtime, meta.len(), path));
            }
        }
        let mut total: u64 = cells.iter().map(|(_, len, _)| *len).sum();
        if total <= self.budget {
            return;
        }
        cells.sort_by(|a, b| (a.0, &a.2).cmp(&(b.0, &b.2)));
        for (_, len, path) in cells {
            if total <= self.budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                total = total.saturating_sub(len);
            }
        }
    }
}

fn write_atomic(tmp: &Path, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = fs::File::create(tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str) -> EntryRecord {
        EntryRecord {
            key: key.to_owned(),
            class: "integer".to_owned(),
            status: EntryStatus::Ok,
            error: None,
            records: 12345,
            chunks_dropped: 0,
            retries: 1,
            downgrades: 0,
            total_sets: 7,
            max_set: 33,
            avg_dynamic_size: 3.75,
            avg_static_size: 0.1 + 0.2, // a value with an inexact repr
            required_size: 256,
            baseline: 1024,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bwsa_cache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn cell_roundtrip_is_bit_exact() {
        let rec = record("a.bwss");
        let cell = encode_cell(&rec);
        let back = decode_cell(&cell, "a.bwss").expect("decodes");
        assert_eq!(back, rec);
        assert_eq!(
            back.avg_static_size.to_bits(),
            rec.avg_static_size.to_bits()
        );
    }

    #[test]
    fn decode_rejects_wrong_key_version_and_truncation() {
        let cell = encode_cell(&record("a.bwss"));
        assert!(decode_cell(&cell, "b.bwss").is_none(), "key mismatch");
        assert!(decode_cell(&cell[..cell.len() - 1], "a.bwss").is_none());
        let mut extra = cell.clone();
        extra.push(0);
        assert!(decode_cell(&extra, "a.bwss").is_none(), "trailing bytes");
        let mut wrong_ver = cell.clone();
        wrong_ver[4] ^= 0xff; // format version field
        assert!(decode_cell(&wrong_ver, "a.bwss").is_none());
        let mut failed = record("a.bwss");
        failed.status = EntryStatus::Failed;
        let failed_cell = encode_cell(&failed);
        assert!(
            decode_cell(&failed_cell, "a.bwss").is_none(),
            "failed records never verify"
        );
    }

    #[test]
    fn keys_separate_content_config_and_engine() {
        let base = CacheKey::for_entry(1, "a.bwss", "integer", 100, 1024);
        assert_eq!(base, CacheKey::for_entry(1, "a.bwss", "integer", 100, 1024));
        for other in [
            CacheKey::for_entry(2, "a.bwss", "integer", 100, 1024),
            CacheKey::for_entry(1, "b.bwss", "integer", 100, 1024),
            CacheKey::for_entry(1, "a.bwss", "crypto", 100, 1024),
            CacheKey::for_entry(1, "a.bwss", "integer", 10, 1024),
            CacheKey::for_entry(1, "a.bwss", "integer", 100, 512),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn store_load_and_corruption_counting() {
        let dir = scratch("storeload");
        let cache = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        assert!(cache.writable());
        let key = CacheKey::for_entry(42, "a.bwss", "integer", 100, 1024);
        assert!(cache.load(key, "a.bwss").is_none(), "cold cache misses");
        cache.store(key, &record("a.bwss"));
        assert_eq!(cache.load(key, "a.bwss").expect("hit"), record("a.bwss"));
        // Poison the cell in place: next read is a counted corrupt miss.
        let cell_path = dir.join(key.file_name());
        let mut bytes = fs::read(&cell_path).expect("read cell");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&cell_path, &bytes).expect("rewrite cell");
        assert!(cache.load(key, "a.bwss").is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 2, 1));
    }

    #[test]
    fn second_writer_degrades_to_read_only() {
        let dir = scratch("lock");
        let first = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        assert!(first.writable());
        let second = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        assert!(!second.writable(), "live lock blocks a second writer");
        let key = CacheKey::for_entry(7, "a.bwss", "x", 1, 2);
        second.store(key, &record("a.bwss"));
        assert!(
            !dir.join(key.file_name()).exists(),
            "read-only skips writes"
        );
        drop(first);
        assert!(!dir.join("lock").exists(), "lock removed on drop");
        // A stale lock from a dead pid is broken and re-taken.
        fs::write(dir.join("lock"), "4294967294").expect("plant stale lock");
        let third = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        assert!(third.writable(), "stale lock is reclaimed");
    }

    #[test]
    fn eviction_respects_budget_oldest_first() {
        let dir = scratch("evict");
        let cache = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        let mut keys = Vec::new();
        for i in 0..4u64 {
            let key = CacheKey::for_entry(i, "a.bwss", "x", 1, 2);
            cache.store(key, &record("a.bwss"));
            // Spread mtimes so LRU order is unambiguous.
            let when = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + i);
            let file = fs::File::options()
                .write(true)
                .open(dir.join(key.file_name()))
                .expect("open cell");
            file.set_modified(when).expect("set mtime");
            keys.push(key);
        }
        let cell_len = fs::metadata(dir.join(keys[0].file_name()))
            .expect("cell meta")
            .len();
        // Budget for exactly two cells: the two oldest go.
        let cache = ResultCache {
            budget: cell_len * 2,
            ..cache
        };
        cache.evict_to_budget();
        assert_eq!(cache.stats().evictions, 2);
        assert!(!dir.join(keys[0].file_name()).exists());
        assert!(!dir.join(keys[1].file_name()).exists());
        assert!(dir.join(keys[2].file_name()).exists());
        assert!(dir.join(keys[3].file_name()).exists());
    }

    #[test]
    fn injected_cache_faults_degrade_to_miss_and_skip() {
        let dir = scratch("faults");
        let cache = ResultCache::open(&dir, DEFAULT_CACHE_BUDGET);
        let key = CacheKey::for_entry(9, "a.bwss", "x", 1, 2);
        {
            let _fp = bwsa_resilience::failpoint::scoped("corpus.cache_write=error(chaos)")
                .expect("arm failpoint");
            cache.store(key, &record("a.bwss"));
        }
        assert!(!dir.join(key.file_name()).exists(), "faulted write skipped");
        cache.store(key, &record("a.bwss"));
        {
            let _fp = bwsa_resilience::failpoint::scoped("corpus.cache_read=panic(chaos)")
                .expect("arm failpoint");
            assert!(cache.load(key, "a.bwss").is_none(), "faulted read misses");
        }
        assert!(
            cache.load(key, "a.bwss").is_some(),
            "cell intact after fault"
        );
    }
}
