//! The corpus layer's typed error.

use std::fmt;

/// Everything that can go wrong opening a corpus manifest.
///
/// The first three variants are *usage* errors — the manifest itself is
/// wrong, and rerunning without fixing it cannot succeed — and map to
/// exit code 2 under the CLI contract. [`CorpusError::Io`] is
/// environmental (exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CorpusError {
    /// The manifest text is malformed: TOML/JSON syntax, an unknown
    /// key, a bad field type, or an out-of-range value.
    Manifest {
        /// What was wrong, for humans.
        reason: String,
    },
    /// Two entries resolve to the same trace file. A corpus is a *set*
    /// of traces; a duplicate would double-count that trace in every
    /// fleet statistic.
    DuplicatePath {
        /// The offending path, as written in the manifest.
        path: String,
    },
    /// An entry points at a file that does not exist on disk.
    DanglingEntry {
        /// The resolved path that was not found.
        path: String,
    },
    /// The manifest file itself could not be read.
    Io {
        /// The manifest path.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
}

impl CorpusError {
    /// Shorthand for a [`CorpusError::Manifest`].
    pub(crate) fn manifest(reason: impl Into<String>) -> Self {
        CorpusError::Manifest {
            reason: reason.into(),
        }
    }

    /// `true` for manifest-validation errors (the CLI's exit-2 class),
    /// `false` for environmental failures (exit 1).
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            CorpusError::Manifest { .. }
                | CorpusError::DuplicatePath { .. }
                | CorpusError::DanglingEntry { .. }
        )
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Manifest { reason } => write!(f, "malformed manifest: {reason}"),
            CorpusError::DuplicatePath { path } => {
                write!(f, "duplicate trace path in manifest: {path}")
            }
            CorpusError::DanglingEntry { path } => {
                write!(f, "manifest entry points at a missing file: {path}")
            }
            CorpusError::Io { path, reason } => write!(f, "cannot read manifest {path}: {reason}"),
        }
    }
}

impl std::error::Error for CorpusError {}
