//! The corpus manifest: a small TOML/JSON document describing a
//! directory tree of traces with per-entry tags.
//!
//! The TOML dialect is deliberately tiny — exactly what a manifest
//! needs and nothing more: top-level `key = value` pairs, one optional
//! `[defaults]` table, and `[[trace]]` array-of-tables entries. Values
//! are strings, integers, floats, and booleans; `#` starts a comment.
//! The same document can equivalently be written as JSON (detected by a
//! leading `{`), parsed with the workspace's dependency-free
//! [`Json`] type.
//!
//! ```toml
//! name = "nightly"
//! root = "traces"            # entry paths resolve against this
//!
//! [defaults]
//! threshold = 100            # conflict threshold (paper §4.2)
//! baseline = 1024            # conventional BHT baseline for the win ratio
//!
//! [[trace]]
//! path = "compress_a.bwss"
//! class = "integer"
//!
//! [[trace]]
//! path = "gs/page1.bwss"
//! class = "render"
//! threshold = 50             # per-entry override
//! ```
//!
//! Validation is strict: unknown keys, duplicate trace paths, and
//! out-of-range values are all typed [`CorpusError`]s, so a typo fails
//! the manifest instead of silently analyzing the wrong corpus.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bwsa_obs::json::Json;

use crate::error::CorpusError;

/// Default conflict threshold when neither `[defaults]` nor the entry
/// sets one (the paper's §4.2 default).
pub const DEFAULT_THRESHOLD: u64 = 100;
/// Default conventional-BHT baseline for the allocation-win ratio
/// (the paper's 1K-entry table).
pub const DEFAULT_BASELINE: u64 = 1024;
/// Workload-class tag for entries that declare none.
pub const DEFAULT_CLASS: &str = "unclassified";

/// One trace in the corpus, with its tags resolved against the
/// manifest defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The path exactly as written in the manifest — the entry's unique
    /// key, and the name fleet summaries report it under.
    pub key: String,
    /// The resolved on-disk path (`root`-relative paths joined).
    pub path: PathBuf,
    /// Workload-class tag (e.g. `"integer"`, `"render"`); aggregation
    /// groups allocation wins by this.
    pub class: String,
    /// Conflict-graph threshold for this entry's analysis.
    pub threshold: u64,
    /// Conventional BHT baseline the allocation win is measured against.
    pub baseline: u64,
}

/// A parsed, structurally-validated corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Corpus name (defaults to the manifest file stem).
    pub name: String,
    /// Directory entry paths resolve against.
    pub root: PathBuf,
    /// The traces, in manifest order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Reads and parses a manifest file, TOML or JSON by content
    /// sniffing.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the file cannot be read, otherwise any
    /// parse/validation error from [`Manifest::parse`].
    pub fn load(path: &Path) -> Result<Manifest, CorpusError> {
        let text = std::fs::read_to_string(path).map_err(|e| CorpusError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "corpus".to_owned());
        Manifest::parse(&text, base, &stem)
    }

    /// Parses manifest text. `base` anchors relative `root`/entry
    /// paths; `default_name` is used when the document sets no `name`.
    ///
    /// Duplicate trace paths are rejected here (a structural property of
    /// the document); whether entries exist on disk is checked
    /// separately by [`Manifest::check_entries_exist`].
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] for malformed text and
    /// [`CorpusError::DuplicatePath`] for a repeated trace path.
    pub fn parse(text: &str, base: &Path, default_name: &str) -> Result<Manifest, CorpusError> {
        let raw = if text.trim_start().starts_with('{') {
            RawManifest::from_json(text)?
        } else {
            RawManifest::from_toml(text)?
        };
        raw.resolve(base, default_name)
    }

    /// Checks every entry's resolved path exists on disk.
    ///
    /// # Errors
    ///
    /// [`CorpusError::DanglingEntry`] naming the first missing file.
    pub fn check_entries_exist(&self) -> Result<(), CorpusError> {
        for entry in &self.entries {
            if !entry.path.is_file() {
                return Err(CorpusError::DanglingEntry {
                    path: entry.path.display().to_string(),
                });
            }
        }
        Ok(())
    }
}

/// A loosely-typed manifest value, the common currency of the TOML and
/// JSON front ends.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    UInt(u64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

type Table = BTreeMap<String, Value>;

/// The document before defaults are folded into entries.
struct RawManifest {
    top: Table,
    defaults: Table,
    traces: Vec<Table>,
}

fn str_of(table: &Table, key: &str) -> Result<Option<String>, CorpusError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(CorpusError::manifest(format!(
            "key {key:?} must be a string, got {}",
            other.type_name()
        ))),
    }
}

fn uint_of(table: &Table, key: &str) -> Result<Option<u64>, CorpusError> {
    match table.get(key) {
        None => Ok(None),
        Some(Value::UInt(n)) => Ok(Some(*n)),
        Some(other) => Err(CorpusError::manifest(format!(
            "key {key:?} must be a positive integer, got {}",
            other.type_name()
        ))),
    }
}

fn check_keys(table: &Table, allowed: &[&str], context: &str) -> Result<(), CorpusError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(CorpusError::manifest(format!(
                "unknown key {key:?} in {context} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

impl RawManifest {
    fn resolve(self, base: &Path, default_name: &str) -> Result<Manifest, CorpusError> {
        check_keys(&self.top, &["name", "root"], "manifest")?;
        check_keys(
            &self.defaults,
            &["threshold", "baseline", "class"],
            "[defaults]",
        )?;
        let name = str_of(&self.top, "name")?.unwrap_or_else(|| default_name.to_owned());
        let root = match str_of(&self.top, "root")? {
            Some(r) => base.join(r),
            None => base.to_path_buf(),
        };
        let default_threshold = uint_of(&self.defaults, "threshold")?.unwrap_or(DEFAULT_THRESHOLD);
        let default_baseline = uint_of(&self.defaults, "baseline")?.unwrap_or(DEFAULT_BASELINE);
        let default_class =
            str_of(&self.defaults, "class")?.unwrap_or_else(|| DEFAULT_CLASS.to_owned());

        if self.traces.is_empty() {
            return Err(CorpusError::manifest("manifest lists no trace entries"));
        }
        let mut entries = Vec::with_capacity(self.traces.len());
        let mut seen = std::collections::BTreeSet::new();
        for (i, table) in self.traces.iter().enumerate() {
            check_keys(
                table,
                &["path", "class", "threshold", "baseline"],
                "[[trace]]",
            )?;
            let key = str_of(table, "path")?.ok_or_else(|| {
                CorpusError::manifest(format!("trace entry {} has no \"path\"", i + 1))
            })?;
            if key.is_empty() {
                return Err(CorpusError::manifest(format!(
                    "trace entry {} has an empty \"path\"",
                    i + 1
                )));
            }
            let path = root.join(&key);
            if !seen.insert(path.clone()) {
                return Err(CorpusError::DuplicatePath { path: key });
            }
            let threshold = uint_of(table, "threshold")?.unwrap_or(default_threshold);
            let baseline = uint_of(table, "baseline")?.unwrap_or(default_baseline);
            if threshold == 0 {
                return Err(CorpusError::manifest(format!(
                    "trace {key:?}: threshold must be at least 1"
                )));
            }
            if baseline == 0 {
                return Err(CorpusError::manifest(format!(
                    "trace {key:?}: baseline must be at least 1"
                )));
            }
            entries.push(ManifestEntry {
                key,
                path,
                class: str_of(table, "class")?.unwrap_or_else(|| default_class.clone()),
                threshold,
                baseline,
            });
        }
        Ok(Manifest {
            name,
            root,
            entries,
        })
    }

    /// Parses the TOML subset documented at module level.
    fn from_toml(text: &str) -> Result<RawManifest, CorpusError> {
        #[derive(PartialEq)]
        enum Section {
            Top,
            Defaults,
            Trace,
        }
        let mut raw = RawManifest {
            top: Table::new(),
            defaults: Table::new(),
            traces: Vec::new(),
        };
        let mut section = Section::Top;
        for (lineno, line) in text.lines().enumerate() {
            let n = lineno + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[") {
                let name = header.strip_suffix("]]").ok_or_else(|| {
                    CorpusError::manifest(format!("line {n}: unterminated [[table]] header"))
                })?;
                if name.trim() != "trace" {
                    return Err(CorpusError::manifest(format!(
                        "line {n}: unknown array table [[{}]] (expected [[trace]])",
                        name.trim()
                    )));
                }
                raw.traces.push(Table::new());
                section = Section::Trace;
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header.strip_suffix(']').ok_or_else(|| {
                    CorpusError::manifest(format!("line {n}: unterminated [table] header"))
                })?;
                if name.trim() != "defaults" {
                    return Err(CorpusError::manifest(format!(
                        "line {n}: unknown table [{}] (expected [defaults])",
                        name.trim()
                    )));
                }
                section = Section::Defaults;
                continue;
            }
            let (key, rest) = line.split_once('=').ok_or_else(|| {
                CorpusError::manifest(format!("line {n}: expected key = value, got {line:?}"))
            })?;
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(CorpusError::manifest(format!("line {n}: bad key {key:?}")));
            }
            let value = parse_toml_value(rest.trim())
                .map_err(|e| CorpusError::manifest(format!("line {n}: {e}")))?;
            let table = match section {
                Section::Top => &mut raw.top,
                Section::Defaults => &mut raw.defaults,
                Section::Trace => raw.traces.last_mut().expect("trace section has a table"),
            };
            if table.insert(key.to_owned(), value).is_some() {
                return Err(CorpusError::manifest(format!(
                    "line {n}: key {key:?} set twice in the same table"
                )));
            }
        }
        Ok(raw)
    }

    /// Parses the JSON spelling: `{"name": .., "root": ..,
    /// "defaults": {..}, "traces": [{..}, ..]}`.
    fn from_json(text: &str) -> Result<RawManifest, CorpusError> {
        let doc = Json::parse(text).map_err(CorpusError::manifest)?;
        let Json::Object(pairs) = &doc else {
            return Err(CorpusError::manifest("top level must be a JSON object"));
        };
        let mut raw = RawManifest {
            top: Table::new(),
            defaults: Table::new(),
            traces: Vec::new(),
        };
        for (key, value) in pairs {
            match (key.as_str(), value) {
                ("defaults", Json::Object(d)) => raw.defaults = json_table(d)?,
                ("defaults", other) => {
                    return Err(CorpusError::manifest(format!(
                        "\"defaults\" must be an object, got {}",
                        other.type_name()
                    )))
                }
                ("traces", Json::Array(items)) => {
                    for item in items {
                        let Json::Object(t) = item else {
                            return Err(CorpusError::manifest(
                                "every \"traces\" element must be an object",
                            ));
                        };
                        raw.traces.push(json_table(t)?);
                    }
                }
                ("traces", other) => {
                    return Err(CorpusError::manifest(format!(
                        "\"traces\" must be an array, got {}",
                        other.type_name()
                    )))
                }
                (_, scalar) => {
                    raw.top.insert(key.clone(), json_scalar(key, scalar)?);
                }
            }
        }
        Ok(raw)
    }
}

fn json_table(pairs: &[(String, Json)]) -> Result<Table, CorpusError> {
    let mut table = Table::new();
    for (key, value) in pairs {
        if table
            .insert(key.clone(), json_scalar(key, value)?)
            .is_some()
        {
            return Err(CorpusError::manifest(format!("key {key:?} set twice")));
        }
    }
    Ok(table)
}

fn json_scalar(key: &str, value: &Json) -> Result<Value, CorpusError> {
    match value {
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::UInt(n) => Ok(Value::UInt(*n)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        other => Err(CorpusError::manifest(format!(
            "key {key:?} holds a {}, expected a scalar",
            other.type_name()
        ))),
    }
}

/// Parses one TOML value, tolerating a trailing `# comment`.
fn parse_toml_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('"') {
        // Basic string with \" \\ \n \t escapes; comment stripping is
        // unnecessary because we stop at the closing quote.
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("bad escape \\{}", other.unwrap_or(' '))),
                },
                Some(c) => out.push(c),
            }
        }
        let tail = chars.as_str().trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(format!("trailing garbage after string: {tail:?}"));
        }
        return Ok(Value::Str(out));
    }
    // Unquoted scalar: strip a trailing comment first.
    let text = match text.find('#') {
        Some(i) => text[..i].trim(),
        None => text,
    };
    match text {
        "" => Err("missing value".to_owned()),
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        _ => {
            if let Ok(n) = text.parse::<u64>() {
                Ok(Value::UInt(n))
            } else if let Ok(f) = text.parse::<f64>() {
                Ok(Value::Float(f))
            } else {
                Err(format!("cannot parse value {text:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "/corpus";

    fn parse(text: &str) -> Result<Manifest, CorpusError> {
        Manifest::parse(text, Path::new(BASE), "test")
    }

    #[test]
    fn toml_manifest_parses_with_defaults_and_overrides() {
        let m = parse(
            r#"
# A corpus of two traces.
name = "nightly"
root = "traces"

[defaults]
threshold = 50
class = "integer"

[[trace]]
path = "a.bwss"

[[trace]]
path = "sub/b.bwss"
class = "render"     # per-entry tag
threshold = 7
baseline = 512
"#,
        )
        .unwrap();
        assert_eq!(m.name, "nightly");
        assert_eq!(m.root, PathBuf::from("/corpus/traces"));
        assert_eq!(m.entries.len(), 2);
        let a = &m.entries[0];
        assert_eq!(a.key, "a.bwss");
        assert_eq!(a.path, PathBuf::from("/corpus/traces/a.bwss"));
        assert_eq!((a.threshold, a.baseline), (50, DEFAULT_BASELINE));
        assert_eq!(a.class, "integer");
        let b = &m.entries[1];
        assert_eq!((b.threshold, b.baseline), (7, 512));
        assert_eq!(b.class, "render");
    }

    #[test]
    fn json_manifest_is_equivalent_to_toml() {
        let toml = parse(
            "name = \"n\"\n[defaults]\nthreshold = 9\n[[trace]]\npath = \"t.bwss\"\nclass = \"x\"\n",
        )
        .unwrap();
        let json = parse(
            r#"{"name": "n", "defaults": {"threshold": 9},
                "traces": [{"path": "t.bwss", "class": "x"}]}"#,
        )
        .unwrap();
        assert_eq!(toml, json);
    }

    #[test]
    fn duplicate_trace_path_is_a_typed_error() {
        let err =
            parse("[[trace]]\npath = \"t.bwss\"\n[[trace]]\npath = \"t.bwss\"\n").unwrap_err();
        assert_eq!(
            err,
            CorpusError::DuplicatePath {
                path: "t.bwss".to_owned()
            }
        );
        assert!(err.is_usage());
    }

    #[test]
    fn dangling_entry_is_a_typed_error() {
        let m = parse("[[trace]]\npath = \"never-created.bwss\"\n").unwrap();
        let err = m.check_entries_exist().unwrap_err();
        assert!(matches!(err, CorpusError::DanglingEntry { ref path }
            if path.ends_with("never-created.bwss")));
        assert!(err.is_usage());
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(matches!(
            parse("[[trace]]\npath = \"t\"\nthresold = 3\n"),
            Err(CorpusError::Manifest { .. })
        ));
        assert!(matches!(
            parse("[mystery]\nx = 1\n"),
            Err(CorpusError::Manifest { .. })
        ));
        assert!(matches!(
            parse(r#"{"traces": [{"path": "t"}], "surprise": {"a": 1}}"#),
            Err(CorpusError::Manifest { .. })
        ));
    }

    #[test]
    fn zero_threshold_empty_manifest_and_bad_syntax_are_rejected() {
        for bad in [
            "[[trace]]\npath = \"t\"\nthreshold = 0\n",
            "name = \"empty\"\n",
            "[[trace]]\npath : \"t\"\n",
            "[[trace]]\npath = \"unterminated\n",
        ] {
            assert!(
                matches!(parse(bad), Err(CorpusError::Manifest { .. })),
                "expected Manifest error for {bad:?}"
            );
        }
    }

    #[test]
    fn values_tolerate_comments_and_escapes() {
        assert_eq!(
            parse_toml_value("\"a\\\"b\\n\"  # note").unwrap(),
            Value::Str("a\"b\n".to_owned())
        );
        assert_eq!(parse_toml_value("42 # answer").unwrap(), Value::UInt(42));
        assert_eq!(parse_toml_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_toml_value("0.5").unwrap(), Value::Float(0.5));
        assert!(parse_toml_value("nope nope").is_err());
    }
}
