//! The run journal: an append-only WAL of completed corpus entries.
//!
//! Each completed entry appends one CRC-framed record — manifest key
//! plus cache key — and the file is fsync'd every few appends, so after
//! a `kill -9` the journal names (a durable prefix of) the entries
//! whose results already sit in the cache. `bwsa corpus --resume` loads
//! it to report progress and then replays those entries from the
//! content-addressed cache; the fleet fold's schedule-invariance makes
//! the resumed summary byte-identical to an uninterrupted run.
//!
//! Durability discipline mirrors the checkpoint rotation the CLI uses
//! for `analyze --resume`:
//!
//! * a *torn tail* (the crash case) is normal — parsing stops at the
//!   first bad frame and keeps the valid prefix;
//! * on each new run the previous journal rotates to `journal.prev`,
//!   and compaction on resume rewrites the journal via a temp file +
//!   the same rotation;
//! * a journal whose *header* is unreadable falls back to the
//!   `journal.prev` ancestor (surfaced to the caller as a warning).
//!
//! Journal faults — including the `corpus.journal_append` failpoint —
//! are contained: a failed append poisons further appends (keeping the
//! on-disk prefix valid) but never fails the run; resume just recomputes
//! more entries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bwsa_resilience::supervisor;
use bwsa_trace::codec::{self, Cursor};

use crate::cache::CacheKey;
use crate::failpoints;

const JOURNAL_MAGIC: &[u8; 4] = b"BWCJ";
const JOURNAL_FORMAT_VERSION: u16 = 1;

/// Appends are fsync'd whenever this many records have accumulated
/// since the last sync (and once more when the run finishes).
const SYNC_BATCH: u64 = 4;

/// One journaled completion: a manifest entry key and the cache key its
/// result was stored under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The manifest entry key (path as written).
    pub key: String,
    /// The content-addressed cache key of the stored result.
    pub cache_key: CacheKey,
}

/// Where `load` found the completed-entry set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalSource {
    /// No journal on disk: nothing to resume.
    Absent,
    /// The newest journal was readable.
    Primary,
    /// The newest journal's header was torn; the `journal.prev`
    /// ancestor was used instead.
    Ancestor,
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal")
}

fn prev_path(dir: &Path) -> PathBuf {
    dir.join("journal.prev")
}

fn header() -> Vec<u8> {
    let mut buf = Vec::with_capacity(6);
    buf.extend_from_slice(JOURNAL_MAGIC);
    buf.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
    buf
}

fn encode_record(entry: &JournalEntry) -> Vec<u8> {
    let mut payload = Vec::with_capacity(entry.key.len() + 10);
    codec::put_varint(&mut payload, entry.key.len() as u64);
    payload.extend_from_slice(entry.key.as_bytes());
    codec::put_u64_le(&mut payload, entry.cache_key.as_u64());
    let mut frame = Vec::with_capacity(payload.len() + 8);
    codec::put_u32_le(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    codec::put_u32_le(&mut frame, codec::crc32(&payload));
    frame
}

/// Parses one journal file. `None` means the header itself was missing
/// or torn (fall back to the ancestor); `Some` returns every record up
/// to the first torn frame — a torn *tail* is the normal crash shape
/// and keeps the valid prefix.
fn parse_file(path: &Path) -> Option<Vec<JournalEntry>> {
    let bytes = fs::read(path).ok()?;
    let mut cur = Cursor::new(&bytes);
    if cur.take(4).ok()? != JOURNAL_MAGIC || cur.get_u16_le().ok()? != JOURNAL_FORMAT_VERSION {
        return None;
    }
    let mut entries = Vec::new();
    while !cur.is_empty() {
        let Ok(len) = cur.get_u32_le() else { break };
        let Ok(payload) = cur.take(len as usize) else {
            break;
        };
        let Ok(crc) = cur.get_u32_le() else { break };
        if codec::crc32(payload) != crc {
            break;
        }
        let mut p = Cursor::new(payload);
        let Ok(key_len) = p.get_varint() else { break };
        let Ok(key_bytes) = p.take(key_len as usize) else {
            break;
        };
        let Ok(key) = std::str::from_utf8(key_bytes) else {
            break;
        };
        let Ok(cache_key) = p.get_u64_le() else { break };
        if !p.is_empty() {
            break;
        }
        entries.push(JournalEntry {
            key: key.to_owned(),
            cache_key: CacheKey::from_u64(cache_key),
        });
    }
    Some(entries)
}

/// Loads the completed-entry set for a resume: the newest journal if
/// its header is intact, else the `journal.prev` ancestor.
pub fn load(dir: &Path) -> (Vec<JournalEntry>, JournalSource) {
    let primary = journal_path(dir);
    if let Some(entries) = parse_file(&primary) {
        return (entries, JournalSource::Primary);
    }
    let had_primary = primary.exists();
    if let Some(entries) = parse_file(&prev_path(dir)) {
        return (entries, JournalSource::Ancestor);
    }
    let source = if had_primary {
        // The newest journal exists but is unreadable and there is no
        // ancestor: resume starts from nothing.
        JournalSource::Ancestor
    } else {
        JournalSource::Absent
    };
    (Vec::new(), source)
}

/// The open, appendable journal for one run.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    file: fs::File,
    unsynced: u64,
    /// Set after a failed append: the on-disk prefix stays valid and
    /// later appends are dropped rather than written after torn bytes.
    poisoned: bool,
}

impl Journal {
    /// Starts a *fresh* journal for a non-resume run: any existing
    /// journal rotates to `journal.prev` first. Returns `None` when the
    /// directory is unwritable (the run simply goes unjournaled).
    pub fn fresh(dir: &Path) -> Option<Journal> {
        let path = journal_path(dir);
        if path.exists() {
            let _ = fs::rename(&path, prev_path(dir));
        }
        Journal::create(dir, &[])
    }

    /// Starts the journal for a resume: compacts `completed` into a new
    /// journal via temp file + rotation, then appends continue after it.
    pub fn resumed(dir: &Path, completed: &[JournalEntry]) -> Option<Journal> {
        Journal::create(dir, completed)
    }

    fn create(dir: &Path, completed: &[JournalEntry]) -> Option<Journal> {
        let path = journal_path(dir);
        let tmp = dir.join(format!("journal.tmp{}", std::process::id()));
        let mut bytes = header();
        for entry in completed {
            bytes.extend_from_slice(&encode_record(entry));
        }
        let write = (|| -> std::io::Result<fs::File> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            if path.exists() {
                fs::rename(&path, prev_path(dir))?;
            }
            fs::rename(&tmp, &path)?;
            fs::OpenOptions::new().append(true).open(&path)
        })();
        match write {
            Ok(file) => Some(Journal {
                inner: Mutex::new(Inner {
                    file,
                    unsynced: 0,
                    poisoned: false,
                }),
            }),
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                None
            }
        }
    }

    /// Appends one completed entry, fsync'ing every [`SYNC_BATCH`]
    /// records. Contained: an injected fault at `corpus.journal_append`
    /// or an I/O error drops this and all later appends instead of
    /// tearing the valid prefix.
    pub fn append(&self, entry: &JournalEntry) {
        let frame = encode_record(entry);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.poisoned {
            return;
        }
        let outcome = supervisor::catch(|| {
            bwsa_resilience::failpoint!(failpoints::JOURNAL_APPEND);
            inner.file.write_all(&frame)
        });
        match outcome {
            Ok(Ok(())) => {
                inner.unsynced += 1;
                if inner.unsynced >= SYNC_BATCH {
                    let _ = inner.file.sync_data();
                    inner.unsynced = 0;
                }
            }
            _ => inner.poisoned = true,
        }
    }

    /// Final fsync at the end of a run.
    pub fn finish(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.unsynced > 0 {
            let _ = inner.file.sync_data();
            inner.unsynced = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bwsa_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn entry(key: &str, cache_key: u64) -> JournalEntry {
        JournalEntry {
            key: key.to_owned(),
            cache_key: CacheKey::from_u64(cache_key),
        }
    }

    #[test]
    fn append_load_roundtrip() {
        let dir = scratch("roundtrip");
        let journal = Journal::fresh(&dir).expect("create journal");
        journal.append(&entry("a.bwss", 1));
        journal.append(&entry("b.bwss", 2));
        journal.finish();
        let (entries, source) = load(&dir);
        assert_eq!(source, JournalSource::Primary);
        assert_eq!(entries, vec![entry("a.bwss", 1), entry("b.bwss", 2)]);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let dir = scratch("torntail");
        let journal = Journal::fresh(&dir).expect("create journal");
        journal.append(&entry("a.bwss", 1));
        journal.append(&entry("b.bwss", 2));
        journal.finish();
        drop(journal);
        let path = journal_path(&dir);
        let bytes = fs::read(&path).expect("read journal");
        // Chop into the middle of the second frame.
        fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear journal");
        let (entries, source) = load(&dir);
        assert_eq!(source, JournalSource::Primary);
        assert_eq!(entries, vec![entry("a.bwss", 1)]);
    }

    #[test]
    fn torn_header_falls_back_to_the_rotated_ancestor() {
        let dir = scratch("ancestor");
        let journal = Journal::fresh(&dir).expect("first run journal");
        journal.append(&entry("a.bwss", 1));
        journal.finish();
        drop(journal);
        // Second run rotates the first journal to journal.prev.
        let journal = Journal::fresh(&dir).expect("second run journal");
        journal.append(&entry("a.bwss", 1));
        journal.append(&entry("b.bwss", 2));
        journal.finish();
        drop(journal);
        assert!(prev_path(&dir).exists(), "rotation left an ancestor");
        // Tear the newest journal's header: the ancestor answers.
        fs::write(journal_path(&dir), b"BW").expect("tear header");
        let (entries, source) = load(&dir);
        assert_eq!(source, JournalSource::Ancestor);
        assert_eq!(entries, vec![entry("a.bwss", 1)]);
    }

    #[test]
    fn resume_compacts_and_rotates() {
        let dir = scratch("compact");
        let journal = Journal::fresh(&dir).expect("create journal");
        journal.append(&entry("a.bwss", 1));
        journal.finish();
        drop(journal);
        let (completed, _) = load(&dir);
        let journal = Journal::resumed(&dir, &completed).expect("resume journal");
        journal.append(&entry("b.bwss", 2));
        journal.finish();
        drop(journal);
        assert!(prev_path(&dir).exists(), "compaction rotated the old file");
        let (entries, source) = load(&dir);
        assert_eq!(source, JournalSource::Primary);
        assert_eq!(entries, vec![entry("a.bwss", 1), entry("b.bwss", 2)]);
    }

    #[test]
    fn injected_append_fault_poisons_instead_of_tearing() {
        let dir = scratch("fault");
        let journal = Journal::fresh(&dir).expect("create journal");
        journal.append(&entry("a.bwss", 1));
        {
            let _fp = bwsa_resilience::failpoint::scoped("corpus.journal_append=error(chaos)")
                .expect("arm failpoint");
            journal.append(&entry("b.bwss", 2));
        }
        // Poisoned: later appends are dropped, the prefix stays valid.
        journal.append(&entry("c.bwss", 3));
        journal.finish();
        drop(journal);
        let (entries, source) = load(&dir);
        assert_eq!(source, JournalSource::Primary);
        assert_eq!(entries, vec![entry("a.bwss", 1)]);
    }

    #[test]
    fn missing_journal_is_an_empty_resume() {
        let dir = scratch("absent");
        let (entries, source) = load(&dir);
        assert!(entries.is_empty());
        assert_eq!(source, JournalSource::Absent);
    }
}
