//! The fleet-summary aggregation algebra, property-tested: for
//! arbitrary entry records, the summary must be **bit-identical** (same
//! pretty-printed JSON bytes) under
//!
//! * any permutation of the input order,
//! * any parenthesization of `merge` (associativity — the serial fold
//!   and every tree-shaped parallel fold agree), and
//! * merging with the identity accumulator anywhere.
//!
//! Together these prove the schedule-independence `run_all` relies on:
//! however `parallel_map` interleaves entries across workers, the
//! folded `FleetSummary` is the serial one.

use bwsa_corpus::cache::{decode_cell, encode_cell};
use bwsa_corpus::{EntryRecord, EntryStatus, FleetAccumulator};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = EntryStatus> {
    prop_oneof![
        Just(EntryStatus::Ok),
        Just(EntryStatus::Degraded),
        Just(EntryStatus::Failed),
    ]
}

/// Records with unique keys (the manifest loader guarantees this) and
/// adversarial metric values, including ties across entries.
fn arb_records() -> impl Strategy<Value = Vec<EntryRecord>> {
    prop::collection::vec(
        (
            // Nested tuples keep each strategy tuple within the
            // supported arity.
            (
                arb_status(),
                0u8..4,  // few classes, to force per-class grouping
                0u64..5, // total_sets
            ),
            (
                0u64..40,  // max_set
                0u64..200, // records
                1u64..64,  // required_size
            ),
            (
                0u64..3,     // downgrades
                0u64..3,     // chunks_dropped
                0.0f64..8.0, // avg_dynamic_size
            ),
        ),
        0..24,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(
                |(i, ((status, class, sets), (max_set, records, req), (down, dropped, avg)))| {
                    let class = format!("class-{class}");
                    if status == EntryStatus::Failed {
                        EntryRecord::failed(&format!("t{i:03}.bwss"), &class, "injected")
                    } else {
                        EntryRecord {
                            key: format!("t{i:03}.bwss"),
                            class,
                            status,
                            error: None,
                            records,
                            chunks_dropped: dropped,
                            retries: down,
                            downgrades: down,
                            total_sets: sets,
                            max_set,
                            avg_dynamic_size: avg,
                            avg_static_size: avg / 2.0,
                            required_size: req,
                            baseline: 1024,
                        }
                    }
                },
            )
            .collect()
    })
}

fn render(acc: FleetAccumulator) -> String {
    acc.finish("prop").to_json().to_pretty_string()
}

fn serial_fold(records: &[EntryRecord]) -> FleetAccumulator {
    let mut acc = FleetAccumulator::empty();
    for r in records {
        acc.absorb(r.clone());
    }
    acc
}

/// Folds `records` as a merge tree with the given chunk sizes, the way
/// a parallel scheduler would combine partial results.
fn tree_fold(records: &[EntryRecord], chunks: &[usize]) -> FleetAccumulator {
    let mut parts: Vec<FleetAccumulator> = Vec::new();
    let mut rest = records;
    let mut ci = 0;
    while !rest.is_empty() {
        let take = chunks
            .get(ci % chunks.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, rest.len());
        parts.push(serial_fold(&rest[..take]));
        rest = &rest[take..];
        ci += 1;
    }
    // Pairwise tree reduction (a different parenthesization than the
    // serial left fold).
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a.merge(b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop().unwrap_or_else(FleetAccumulator::empty)
}

proptest! {
    #[test]
    fn summary_is_invariant_under_permutation(
        records in arb_records(),
        seed in any::<u64>(),
    ) {
        let baseline = render(serial_fold(&records));
        // Deterministic Fisher–Yates driven by the seed.
        let mut shuffled = records.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(render(serial_fold(&shuffled)), baseline);
    }

    #[test]
    fn merge_is_associative_and_tree_folds_match_serial(
        records in arb_records(),
        chunks in prop::collection::vec(1usize..5, 1..4),
    ) {
        let baseline = render(serial_fold(&records));
        prop_assert_eq!(render(tree_fold(&records, &chunks)), baseline);
    }

    /// The cached-vs-fresh contract: serving an arbitrary subset of
    /// entries through the result-cache cell codec (the exact bytes a
    /// warm run replays) — under an arbitrary permutation and an
    /// arbitrary parallel fold shape (`--jobs`) — renders the same
    /// summary JSON as analyzing everything fresh, serially. Failed
    /// entries are never cached, mirroring the cache's store policy.
    #[test]
    fn cached_subset_folds_to_all_fresh_bytes(
        records in arb_records(),
        cached_mask in prop::collection::vec(any::<bool>(), 24),
        seed in any::<u64>(),
        chunks in prop::collection::vec(1usize..5, 1..4),
    ) {
        let baseline = render(serial_fold(&records));
        let mut served: Vec<EntryRecord> = records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let cacheable = r.status != EntryStatus::Failed;
                if cacheable && cached_mask.get(i).copied().unwrap_or(false) {
                    let cell = encode_cell(r);
                    decode_cell(&cell, &r.key).expect("a stored cell verifies")
                } else {
                    r.clone()
                }
            })
            .collect();
        // Permute (manifest order) then tree-fold (worker schedule).
        let mut state = seed | 1;
        for i in (1..served.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            served.swap(i, j);
        }
        prop_assert_eq!(render(tree_fold(&served, &chunks)), baseline);
    }

    #[test]
    fn empty_is_an_identity_everywhere(records in arb_records(), at in 0usize..25) {
        let baseline = render(serial_fold(&records));
        let cut = at.min(records.len());
        let left = serial_fold(&records[..cut]);
        let right = serial_fold(&records[cut..]);
        let with_identity = FleetAccumulator::empty()
            .merge(left)
            .merge(FleetAccumulator::empty())
            .merge(right)
            .merge(FleetAccumulator::empty());
        prop_assert_eq!(render(with_identity), baseline);
    }
}
