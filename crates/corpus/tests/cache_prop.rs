//! Cache-poisoning property tests: arbitrary bit damage to a serialized
//! cache cell must *always* read as a miss and force a recompute —
//! never decode into a wrong `EntryRecord`, never raise an error.
//!
//! The codec-level property flips 1–3 bits anywhere in a cell: CRC32
//! (IEEE) has Hamming distance ≥ 4 at these payload sizes, and the
//! frame's exact-length check catches damage to the length field
//! structurally, so detection is guaranteed, not probabilistic. The
//! end-to-end test poisons every cell of a real on-disk cache and pins
//! the recompute path: identical summary bytes, `corrupt` counter up.

use std::fs;
use std::path::PathBuf;

use bwsa_corpus::cache::{decode_cell, encode_cell};
use bwsa_corpus::{Corpus, EntryRecord, EntryStatus};
use bwsa_trace::stream::StreamWriter;
use bwsa_workload::suite::{Benchmark, InputSet};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = EntryRecord> {
    (
        (".{0,12}", ".{0,8}", any::<bool>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<f64>(), any::<f64>()),
    )
        .prop_map(
            |(
                (key, class, degraded),
                (records, chunks_dropped, retries, downgrades),
                (total_sets, max_set, required_size, baseline),
                (avg_dynamic_size, avg_static_size),
            )| EntryRecord {
                key,
                class,
                status: if degraded {
                    EntryStatus::Degraded
                } else {
                    EntryStatus::Ok
                },
                error: None,
                records,
                chunks_dropped,
                retries,
                downgrades,
                total_sets,
                max_set,
                avg_dynamic_size,
                avg_static_size,
                required_size,
                baseline,
            },
        )
}

proptest! {
    #[test]
    fn any_few_bit_flips_always_miss(
        record in arb_record(),
        flips in prop::collection::vec((any::<u64>(), 0u8..8), 1..=3),
    ) {
        let cell = encode_cell(&record);
        prop_assert!(decode_cell(&cell, &record.key).is_some());
        let mut damaged = cell.clone();
        let mut changed = false;
        for (pos, bit) in flips {
            let idx = (pos % damaged.len() as u64) as usize;
            damaged[idx] ^= 1 << bit;
            changed |= damaged[idx] != cell[idx];
        }
        // Flips can cancel pairwise; only a net-damaged cell must miss.
        if changed {
            // A damaged cell must never verify.
            prop_assert_eq!(decode_cell(&damaged, &record.key), None);
        }
    }

    #[test]
    fn truncation_at_any_point_always_misses(
        record in arb_record(),
        cut in any::<u64>(),
    ) {
        let cell = encode_cell(&record);
        let cut = (cut % cell.len() as u64) as usize;
        prop_assert_eq!(decode_cell(&cell[..cut], &record.key), None);
    }
}

/// End-to-end: poison every cell of a warm on-disk cache; the next run
/// must recompute everything (miss + corrupt counters), produce
/// byte-identical summary bytes, and leave repaired cells behind.
#[test]
fn poisoned_cells_force_recompute_not_wrong_results() {
    let dir = std::env::temp_dir().join(format!("bwsa_cachepoison_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    for (bench, name) in [
        (Benchmark::Compress, "compress_a.bwss"),
        (Benchmark::Li, "li_a.bwss"),
    ] {
        let trace = bench.generate_scaled(InputSet::A, 0.01);
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, &trace.meta().name).expect("stream header");
        for rec in trace.iter() {
            w.push(*rec).expect("stream record");
        }
        w.finish(trace.meta().total_instructions).expect("finish");
        fs::write(dir.join(name), buf).expect("write trace");
    }
    let manifest = dir.join("corpus.toml");
    fs::write(
        &manifest,
        "name = \"poison\"\n\n[defaults]\nthreshold = 10\n\n\
         [[trace]]\npath = \"compress_a.bwss\"\n\n[[trace]]\npath = \"li_a.bwss\"\n",
    )
    .expect("write manifest");
    let cache_dir = dir.join(".bwsa-cache");
    let corpus = Corpus::open(&manifest).expect("open corpus");
    let cold = corpus.session().with_cache(&cache_dir).run_all();

    let cells: Vec<PathBuf> = fs::read_dir(&cache_dir)
        .expect("cache dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p: &PathBuf| p.extension().and_then(|e| e.to_str()) == Some("cell"))
        .collect();
    assert_eq!(cells.len(), 2);
    for (i, cell) in cells.iter().enumerate() {
        let mut bytes = fs::read(cell).expect("read cell");
        let idx = (i * 7) % bytes.len();
        bytes[idx] ^= 1 << (i % 8);
        fs::write(cell, bytes).expect("poison cell");
    }

    let poisoned = corpus.session().with_cache(&cache_dir).run_all();
    assert_eq!(
        poisoned.to_json().to_pretty_string(),
        cold.to_json().to_pretty_string(),
        "poisoned cells must recompute to the same bytes, never serve garbage"
    );
    assert_eq!(
        (
            poisoned.cache.hits,
            poisoned.cache.misses,
            poisoned.cache.corrupt
        ),
        (0, 2, 2)
    );
    // The recompute rewrote the cells: a third run is all hits again.
    let healed = corpus.session().with_cache(&cache_dir).run_all();
    assert_eq!((healed.cache.hits, healed.cache.corrupt), (2, 0));
    let _ = fs::remove_dir_all(&dir);
}
