//! End-to-end corpus runs against real traces on disk: the serial ==
//! parallel bit-identity contract, manifest-order invariance, TOML/JSON
//! equivalence, and the salvage ladder (one corrupted BWSS2 member
//! degrades its own entry, never the batch).

use std::fs;
use std::path::{Path, PathBuf};

use bwsa_corpus::{Corpus, CorpusError, EntryStatus, Manifest, FLEET_SUMMARY_VERSION};
use bwsa_trace::stream::{frame_spans, StreamWriter};
use bwsa_trace::Trace;
use bwsa_workload::suite::{Benchmark, InputSet};

/// A fresh per-test directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwsa_corpus_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Encodes a trace as a BWSS2 stream with small chunks (so corruption
/// tests have several frames to damage).
fn write_bwss(trace: &Trace, path: &Path) {
    let mut buf = Vec::new();
    {
        let mut w = StreamWriter::new(&mut buf, &trace.meta().name)
            .expect("stream header")
            .with_chunk_records(64);
        for rec in trace.iter() {
            w.push(*rec).expect("stream record");
        }
        w.finish(trace.meta().total_instructions).expect("finish");
    }
    fs::write(path, buf).expect("write trace file");
}

/// Three small, distinct benchmark traces plus a manifest naming them.
fn build_corpus(dir: &Path) -> PathBuf {
    for (bench, name) in [
        (Benchmark::Compress, "compress_a.bwss"),
        (Benchmark::Pgp, "pgp_a.bwss"),
        (Benchmark::Li, "li_a.bwss"),
    ] {
        write_bwss(&bench.generate_scaled(InputSet::A, 0.01), &dir.join(name));
    }
    let manifest = dir.join("corpus.toml");
    fs::write(
        &manifest,
        r#"name = "itest"

[defaults]
threshold = 10
class = "integer"

[[trace]]
path = "compress_a.bwss"

[[trace]]
path = "pgp_a.bwss"
class = "crypto"

[[trace]]
path = "li_a.bwss"
class = "interp"
"#,
    )
    .expect("write manifest");
    manifest
}

fn summary_bytes(manifest: &Path, jobs: usize) -> String {
    Corpus::open(manifest)
        .expect("open corpus")
        .session()
        .with_jobs(jobs)
        .run_all()
        .to_json()
        .to_pretty_string()
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let dir = scratch("serpar");
    let manifest = build_corpus(&dir);
    let serial = summary_bytes(&manifest, 1);
    for jobs in [2, 3, 8] {
        assert_eq!(summary_bytes(&manifest, jobs), serial, "jobs={jobs}");
    }
    assert!(serial.contains(&format!(
        "\"fleet_summary_version\": {FLEET_SUMMARY_VERSION}"
    )));
}

#[test]
fn manifest_entry_order_does_not_change_the_summary() {
    let dir = scratch("order");
    let manifest = build_corpus(&dir);
    let baseline = summary_bytes(&manifest, 2);
    // Same corpus, entries listed in reverse.
    let reversed = dir.join("reversed.toml");
    fs::write(
        &reversed,
        r#"name = "itest"

[defaults]
threshold = 10
class = "integer"

[[trace]]
path = "li_a.bwss"
class = "interp"

[[trace]]
path = "pgp_a.bwss"
class = "crypto"

[[trace]]
path = "compress_a.bwss"
"#,
    )
    .expect("write manifest");
    assert_eq!(summary_bytes(&reversed, 2), baseline);
}

#[test]
fn json_manifest_is_equivalent_to_toml() {
    let dir = scratch("json");
    let manifest = build_corpus(&dir);
    let json = dir.join("corpus.json");
    fs::write(
        &json,
        r#"{"name": "itest",
            "defaults": {"threshold": 10, "class": "integer"},
            "traces": [
              {"path": "compress_a.bwss"},
              {"path": "pgp_a.bwss", "class": "crypto"},
              {"path": "li_a.bwss", "class": "interp"}
            ]}"#,
    )
    .expect("write manifest");
    assert_eq!(summary_bytes(&json, 2), summary_bytes(&manifest, 2));
}

#[test]
fn corrupted_member_degrades_without_sinking_the_batch() {
    let dir = scratch("salvage");
    let manifest = build_corpus(&dir);
    // Damage one payload byte inside a middle frame of pgp_a.bwss: the
    // chunk CRC fails, salvage drops that chunk, the stream resyncs.
    let victim = dir.join("pgp_a.bwss");
    let mut bytes = fs::read(&victim).expect("read victim");
    let spans = frame_spans(&bytes).expect("intact stream");
    assert!(spans.len() > 2, "need several frames, got {}", spans.len());
    let mid = spans[spans.len() / 2];
    bytes[mid.offset + mid.len / 2] ^= 0xff;
    fs::write(&victim, &bytes).expect("rewrite victim");

    let summary = Corpus::open(&manifest)
        .expect("open corpus")
        .session()
        .with_jobs(2)
        .run_all();
    assert_eq!(summary.entries.len(), 3, "batch completed all entries");
    let victim_row = summary
        .entries
        .iter()
        .find(|e| e.key == "pgp_a.bwss")
        .expect("victim row present");
    assert_eq!(victim_row.status, EntryStatus::Degraded);
    assert!(victim_row.chunks_dropped > 0);
    assert_eq!(victim_row.error, None);
    // The other two entries are untouched.
    assert_eq!(summary.ok, 2);
    assert_eq!(summary.degraded, 1);
    assert!(summary.degradation_rate() > 0.0);
}

#[test]
fn unreadable_member_fails_its_entry_only() {
    let dir = scratch("failed");
    let manifest = build_corpus(&dir);
    // Garbage with a BWSS magic: not salvageable at all.
    fs::write(dir.join("li_a.bwss"), b"BWSS\xff\xff garbage").expect("overwrite");
    let summary = Corpus::open(&manifest)
        .expect("open corpus")
        .session()
        .with_jobs(2)
        .run_all();
    assert_eq!(summary.entries.len(), 3);
    let row = summary
        .entries
        .iter()
        .find(|e| e.key == "li_a.bwss")
        .expect("row present");
    assert_eq!(row.status, EntryStatus::Failed);
    assert!(row.error.is_some());
    assert_eq!(summary.ok, 2);
    assert_eq!(summary.failed, 1);
}

#[test]
fn open_rejects_dangling_and_duplicate_entries() {
    let dir = scratch("reject");
    let manifest = build_corpus(&dir);
    fs::remove_file(dir.join("li_a.bwss")).expect("remove trace");
    match Corpus::open(&manifest) {
        Err(CorpusError::DanglingEntry { path }) => assert!(path.ends_with("li_a.bwss")),
        other => panic!("expected DanglingEntry, got {other:?}"),
    }
    let dup = dir.join("dup.toml");
    fs::write(
        &dup,
        "[[trace]]\npath = \"compress_a.bwss\"\n[[trace]]\npath = \"compress_a.bwss\"\n",
    )
    .expect("write manifest");
    assert!(matches!(
        Corpus::open(&dup),
        Err(CorpusError::DuplicatePath { .. })
    ));
}

#[test]
fn warm_cache_rerun_is_byte_identical_with_zero_analyses() {
    let dir = scratch("warmcache");
    let manifest = build_corpus(&dir);
    let cache_dir = dir.join(".bwsa-cache");
    let corpus = Corpus::open(&manifest).expect("open corpus");
    let cold = corpus.session().with_cache(&cache_dir).run_all();
    assert_eq!(
        (cold.cache.hits, cold.cache.misses),
        (0, 3),
        "cold run misses every entry"
    );
    let obs = bwsa_obs::Obs::recording();
    let warm = corpus
        .session()
        .with_jobs(2)
        .with_cache(&cache_dir)
        .with_observer(obs.clone())
        .run_all();
    assert_eq!(
        warm.to_json().to_pretty_string(),
        cold.to_json().to_pretty_string(),
        "warm and cold summaries must be byte-identical"
    );
    assert_eq!(
        (warm.cache.hits, warm.cache.misses, warm.cache.corrupt),
        (3, 0, 0),
        "warm rerun performs zero trace analyses"
    );
    let metrics = obs.snapshot().expect("recording observer");
    assert_eq!(metrics.counter("corpus.cache_hits"), 3);
    assert_eq!(metrics.counter("corpus.cache_misses"), 0);
    assert_eq!(metrics.counter("corpus.journal_appends"), 3);
}

#[test]
fn cached_subset_matches_all_fresh_under_permutation_and_jobs() {
    let dir = scratch("subsetcache");
    let manifest = build_corpus(&dir);
    let cache_dir = dir.join(".bwsa-cache");
    let corpus = Corpus::open(&manifest).expect("open corpus");
    let fresh = corpus.session().with_jobs(3).run_all();
    // Populate the cache, then drop an arbitrary subset of cells so the
    // next run mixes cache hits with fresh analyses.
    corpus.session().with_cache(&cache_dir).run_all();
    let mut cells: Vec<_> = fs::read_dir(&cache_dir)
        .expect("cache dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("cell"))
        .collect();
    cells.sort();
    assert_eq!(cells.len(), 3);
    fs::remove_file(&cells[1]).expect("drop one cell");
    let mixed = corpus
        .session()
        .with_jobs(2)
        .with_cache(&cache_dir)
        .run_all();
    assert_eq!((mixed.cache.hits, mixed.cache.misses), (2, 1));
    assert_eq!(
        mixed.to_json().to_pretty_string(),
        fresh.to_json().to_pretty_string(),
        "a cache-hit/fresh mix must fold to the all-fresh bytes"
    );
}

#[test]
fn resume_replays_journaled_entries_from_cache() {
    let dir = scratch("resume");
    let manifest = build_corpus(&dir);
    let cache_dir = dir.join(".bwsa-cache");
    let corpus = Corpus::open(&manifest).expect("open corpus");
    let uninterrupted = corpus.session().with_cache(&cache_dir).run_all();
    let (completed, source) = bwsa_corpus::journal::load(&cache_dir);
    assert_eq!(source, bwsa_corpus::journal::JournalSource::Primary);
    assert_eq!(completed.len(), 3, "every completed entry journaled");
    let obs = bwsa_obs::Obs::recording();
    let resumed = corpus
        .session()
        .with_cache(&cache_dir)
        .with_resume(true)
        .with_observer(obs.clone())
        .run_all();
    assert_eq!(
        resumed.to_json().to_pretty_string(),
        uninterrupted.to_json().to_pretty_string(),
        "resumed summary must be byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.cache.hits, 3);
    let metrics = obs.snapshot().expect("recording observer");
    assert_eq!(metrics.counter("corpus.journal_resumed"), 3);
}

#[test]
fn threshold_override_addresses_different_cache_cells() {
    let dir = scratch("cachekeys");
    let manifest = build_corpus(&dir);
    let cache_dir = dir.join(".bwsa-cache");
    let corpus = Corpus::open(&manifest).expect("open corpus");
    corpus.session().with_cache(&cache_dir).run_all();
    // Same corpus, different effective threshold: the cache must not
    // serve the threshold-10 results.
    let overridden = corpus
        .session()
        .with_cache(&cache_dir)
        .with_threshold(1)
        .run_all();
    assert_eq!(
        (overridden.cache.hits, overridden.cache.misses),
        (0, 3),
        "a config change misses every cell"
    );
    // And rerunning with the override hits the new cells.
    let warm = corpus
        .session()
        .with_cache(&cache_dir)
        .with_threshold(1)
        .run_all();
    assert_eq!((warm.cache.hits, warm.cache.misses), (3, 0));
}

#[test]
fn threshold_override_and_observer_counters_flow_through() {
    let dir = scratch("knobs");
    let manifest = build_corpus(&dir);
    let corpus = Corpus::open(&manifest).expect("open corpus");
    let obs = bwsa_obs::Obs::recording();
    let summary = corpus
        .session()
        .with_threshold(1)
        .with_observer(obs.clone())
        .run_all();
    let loose = Manifest::load(&manifest).expect("manifest reloads");
    assert_eq!(loose.entries.len(), summary.entries.len());
    // A threshold of 1 keeps every conflict edge, so working sets can
    // only grow (or stay) relative to threshold 10.
    let tight = corpus.session().run_all();
    for (a, b) in summary.entries.iter().zip(tight.entries.iter()) {
        assert!(
            a.max_set >= b.max_set,
            "{}: {} < {}",
            a.key,
            a.max_set,
            b.max_set
        );
    }
    let metrics = obs.snapshot().expect("recording observer");
    assert_eq!(metrics.counter("corpus.entries"), 3);
}
