//! Criterion microbenchmarks of working-set extraction (analysis step 3).

use bwsa_core::conflict::{ConflictAnalysis, ConflictConfig};
use bwsa_graph::clique::{greedy_clique_partition, maximal_cliques};
use bwsa_workload::suite::{Benchmark, InputSet};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_clique(c: &mut Criterion) {
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, 0.2);
    let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(20).unwrap());
    let graph = analysis.graph;
    let mut group = c.benchmark_group("clique");
    group.bench_function("greedy_partition", |b| {
        b.iter(|| greedy_clique_partition(&graph).len())
    });
    group.bench_function("bron_kerbosch_capped", |b| {
        b.iter(|| maximal_cliques(&graph, 10_000).cliques.len())
    });
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
