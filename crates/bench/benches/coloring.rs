//! Criterion microbenchmarks of graph coloring — the allocation
//! routine's inner loop, probed ~30 times per required-size search.

use bwsa_core::conflict::{ConflictAnalysis, ConflictConfig};
use bwsa_graph::coloring::{color_graph, ColoringOptions};
use bwsa_workload::suite::{Benchmark, InputSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_coloring(c: &mut Criterion) {
    let trace = Benchmark::Perl.generate_scaled(InputSet::A, 0.2);
    let analysis = ConflictAnalysis::of_trace(&trace, ConflictConfig::with_threshold(20).unwrap());
    let graph = analysis.graph;
    let mut group = c.benchmark_group("coloring");
    for k in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("color_graph", k), &k, |b, &k| {
            b.iter(|| color_graph(&graph, k, &ColoringOptions::default()).conflict_mass)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
