//! Criterion microbenchmarks of the predictor simulator (`sim-bpred`
//! loop), across the predictor zoo.

use bwsa_predictor::{
    simulate, Agree, BhtIndexer, Bimodal, BranchPredictor, Gag, Gshare, Hybrid, Pag, Pap,
    StaticPredictor,
};
use bwsa_workload::suite::{Benchmark, InputSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn predictors() -> Vec<(&'static str, Box<dyn BranchPredictor>)> {
    vec![
        ("static", Box::new(StaticPredictor::always_taken())),
        ("bimodal", Box::new(Bimodal::new(1024))),
        ("gag", Box::new(Gag::new(12))),
        ("gshare", Box::new(Gshare::new(12))),
        ("pag", Box::new(Pag::paper_baseline())),
        ("pag-free", Box::new(Pag::interference_free())),
        ("pap", Box::new(Pap::new(BhtIndexer::pc_modulo(128), 8))),
        (
            "hybrid",
            Box::new(Hybrid::new(Gshare::new(12), Bimodal::new(1024), 1024)),
        ),
        ("agree", Box::new(Agree::new(12, 1024))),
    ]
}

fn bench_predictors(c: &mut Criterion) {
    let trace = Benchmark::Pgp.generate_scaled(InputSet::A, 0.2);
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, _proto) in predictors() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, trace| {
            b.iter_batched(
                || proto_clone(name),
                |mut p| simulate(&mut *p, trace).mispredictions,
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Criterion needs a fresh predictor per iteration; trait objects aren't
/// Clone, so rebuild by name.
fn proto_clone(name: &str) -> Box<dyn BranchPredictor> {
    predictors()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
        .expect("known name")
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
