//! Criterion microbenchmarks of the timestamp interleaving engine
//! (analysis step 1) — the pipeline's dominant cost.

use bwsa_core::interleave_counts;
use bwsa_workload::suite::{Benchmark, InputSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("interleave");
    for (bench, scale) in [
        (Benchmark::Compress, 0.05),
        (Benchmark::Pgp, 0.05),
        (Benchmark::Li, 0.02),
    ] {
        let trace = bench.generate_scaled(InputSet::A, scale);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("counts", bench.name()),
            &trace,
            |b, trace| b.iter(|| interleave_counts(trace).edge_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interleave);
criterion_main!(benches);
