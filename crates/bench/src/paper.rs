//! The paper's published numbers, embedded for side-by-side comparison.
//!
//! Absolute values are not expected to match (our substrate is a scaled
//! synthetic workload, not SPECint95 under SimpleScalar); they are printed
//! next to measured values so the *shape* claims are easy to eyeball and
//! are asserted in EXPERIMENTS.md.

/// Paper Table 2: `(benchmark, total working sets, avg static size, avg
/// dynamic size)`.
pub const TABLE2: [(&str, u64, u64, u64); 11] = [
    ("compress", 224, 41, 25),
    ("gcc", 51888, 365, 336),
    ("ijpeg", 246, 27, 36),
    ("li", 2792, 178, 154),
    ("m88ksim", 1203, 144, 150),
    ("perl", 1079, 51, 51),
    ("chess", 23936, 250, 244),
    ("pgp", 775, 45, 39),
    ("plot", 5370, 143, 185),
    ("python", 25216, 347, 318),
    ("ss", 19368, 287, 246),
];

/// Paper Table 3: `(benchmark label, required BHT size)` for plain branch
/// allocation against a conventional 1024-entry BHT.
pub const TABLE3: [(&str, u64); 14] = [
    ("chess", 320),
    ("compress", 208),
    ("gcc", 544),
    ("gs", 740),
    ("li", 270),
    ("m88ksim", 166),
    ("perl_a", 288),
    ("perl_b", 288),
    ("pgp", 188),
    ("plot", 224),
    ("python", 570),
    ("ss_a", 336),
    ("ss_b", 360),
    ("tex", 680),
];

/// Paper Table 4: `(benchmark label, required BHT size)` with branch
/// classification.
pub const TABLE4: [(&str, u64); 14] = [
    ("chess", 160),
    ("compress", 40),
    ("gcc", 150),
    ("gs", 80),
    ("li", 48),
    ("m88ksim", 40),
    ("perl_a", 32),
    ("perl_b", 32),
    ("pgp", 118),
    ("plot", 40),
    ("python", 48),
    ("ss_a", 160),
    ("ss_b", 85),
    ("tex", 80),
];

/// The paper's headline Figure 4 claim: allocation at 1024 entries
/// improves prediction accuracy by ~16% relative to the conventional
/// 1024-entry PAg.
pub const HEADLINE_IMPROVEMENT: f64 = 0.16;

/// Looks up a paper value by label in one of the tables above.
pub fn lookup(table: &[(&str, u64)], label: &str) -> Option<u64> {
    table.iter().find(|(l, _)| *l == label).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_rows() {
        assert_eq!(lookup(&TABLE3, "gcc"), Some(544));
        assert_eq!(lookup(&TABLE4, "gcc"), Some(150));
        assert_eq!(lookup(&TABLE3, "nope"), None);
    }

    #[test]
    fn classification_shrinks_every_paper_row() {
        // The shape claim our Table 4 must reproduce, verified on the
        // paper's own numbers.
        for (label, t3) in TABLE3 {
            let t4 = lookup(&TABLE4, label).unwrap();
            assert!(t4 <= t3, "{label}: {t4} > {t3}");
        }
    }

    #[test]
    fn paper_requirements_are_below_1024() {
        for (_, v) in TABLE3.iter().chain(TABLE4.iter()) {
            assert!(*v < 1024);
        }
    }
}
