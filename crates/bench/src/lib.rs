//! Experiment harness shared by the per-table/per-figure binaries, the
//! ablation binaries, and the integration tests.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>` — dynamic-branch budget multiplier (default 1.0).
//!   The conflict threshold scales with it so thresholding behaves the
//!   same at reduced scale (edge weights are proportional to trace
//!   length).
//! * `--quick` — shorthand for `--scale 0.05`.
//! * `--bench <name>` — restrict to one benchmark (repeatable).
//! * `--jobs <n>` — worker threads for the benchmark fan-out (default:
//!   all hardware threads). Results are reported in input order for any
//!   value.
//!
//! The harness runs benchmarks in parallel with scoped threads and prints
//! fixed-width text tables whose columns mirror the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod legacy;
pub mod paper;
pub mod text;

use bwsa_workload::suite::Benchmark;

/// Command-line configuration shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Trace-budget multiplier.
    pub scale: f64,
    /// Benchmarks to run (empty = the binary's default set).
    pub benchmarks: Vec<Benchmark>,
    /// Worker threads for the run fan-out (`None` = hardware threads).
    pub jobs: Option<usize>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0,
            benchmarks: Vec::new(),
            jobs: None,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: <binary> [--scale F] [--quick] [--bench NAME]... [--jobs N]");
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit argument iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    cli.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                    if cli.scale <= 0.0 {
                        return Err("scale must be positive".into());
                    }
                }
                "--quick" => cli.scale = 0.05,
                "--bench" => {
                    let v = it.next().ok_or("--bench needs a name")?;
                    let b = Benchmark::ALL
                        .iter()
                        .find(|b| b.name() == v)
                        .ok_or(format!("unknown benchmark {v:?}"))?;
                    cli.benchmarks.push(*b);
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be positive".into());
                    }
                    cli.jobs = Some(n);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(cli)
    }

    /// The benchmark list to run: the explicit `--bench` set, or `default`.
    pub fn benchmarks_or(&self, default: &[Benchmark]) -> Vec<Benchmark> {
        if self.benchmarks.is_empty() {
            default.to_vec()
        } else {
            self.benchmarks.clone()
        }
    }

    /// The conflict threshold adjusted for the scale: the paper's 100 at
    /// full scale, proportionally smaller (floor 2) at reduced scale.
    pub fn threshold(&self) -> u64 {
        ((100.0 * self.scale).round() as u64).max(2)
    }
}

/// Runs `f` over the items in parallel (scoped threads, the work split
/// across the machine's parallelism) and returns the results in input
/// order.
pub fn run_parallel<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Copy + Send + Sync,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_parallel_jobs(items, None, f)
}

/// [`run_parallel`] with an explicit worker count; `None` uses every
/// hardware thread. Results are in input order for any worker count.
pub fn run_parallel_jobs<I, T, F>(items: &[I], jobs: Option<usize>, f: F) -> Vec<T>
where
    I: Copy + Send + Sync,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let mut results: Vec<Option<T>> = items.iter().map(|_| None).collect();
    let max = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let chunk_size = (items.len() + max - 1) / max.max(1);
    let mut work: Vec<(&mut Option<T>, I)> =
        results.iter_mut().zip(items.iter().copied()).collect();
    crossbeam::thread::scope(|scope| {
        for chunk in work.chunks_mut(chunk_size) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in chunk.iter_mut() {
                    **slot = Some(f(*item));
                }
            });
        }
    })
    .expect("worker panicked");
    drop(work);
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.scale, 1.0);
        assert_eq!(cli.threshold(), 100);
        assert!(cli.benchmarks.is_empty());
    }

    #[test]
    fn quick_sets_scale() {
        let cli = parse(&["--quick"]).unwrap();
        assert_eq!(cli.scale, 0.05);
        assert_eq!(cli.threshold(), 5);
    }

    #[test]
    fn threshold_has_a_floor() {
        let cli = parse(&["--scale", "0.001"]).unwrap();
        assert_eq!(cli.threshold(), 2);
    }

    #[test]
    fn bench_filter_parses() {
        let cli = parse(&["--bench", "gcc", "--bench", "perl"]).unwrap();
        assert_eq!(cli.benchmarks, vec![Benchmark::Gcc, Benchmark::Perl]);
        assert_eq!(
            cli.benchmarks_or(&[Benchmark::Tex]),
            vec![Benchmark::Gcc, Benchmark::Perl]
        );
        let empty = parse(&[]).unwrap();
        assert_eq!(empty.benchmarks_or(&[Benchmark::Tex]), vec![Benchmark::Tex]);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--bench", "nope"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }

    #[test]
    fn run_parallel_preserves_order() {
        let out = run_parallel(&Benchmark::ALL, |b| b.name().to_owned());
        let expect: Vec<String> = Benchmark::ALL.iter().map(|b| b.name().to_owned()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&["--jobs", "3"]).unwrap().jobs, Some(3));
        assert_eq!(parse(&[]).unwrap().jobs, None);
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
    }

    #[test]
    fn explicit_job_counts_preserve_order_too() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for jobs in [1, 2, 5, 64] {
            let out = run_parallel_jobs(&items, Some(jobs), |v| v * 3);
            assert_eq!(out, expect, "jobs {jobs}");
        }
    }
}
