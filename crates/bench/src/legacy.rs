//! Frozen replicas of the pre-optimisation hot paths, kept solely so the
//! `hotpath` benchmark can measure the flat engines against the exact
//! data structures they replaced — on the same machine, in the same
//! binary, with the same workloads.
//!
//! Three replicas, matching the seed implementations line for line:
//!
//! * [`interleave_counts`] — the Figure 1 detection loop over a
//!   `BTreeSet<(u64, u32)>` recency index.
//! * [`EdgeMap`] — a `HashMap<(u32, u32), u64>` edge accumulator, the old
//!   `GraphBuilder` interior.
//! * [`Csr::from_edge_map`] — the two-pass CSR compile with per-node
//!   adjacency sorts, the old `ConflictGraph::from_edge_map`.
//!
//! Nothing in the workspace calls these outside the benchmark; the
//! production paths must never regress back onto them.

use bwsa_trace::Trace;
use std::collections::{BTreeSet, HashMap};

/// The old `GraphBuilder` core: canonicalised pair keys in a `HashMap`.
#[derive(Debug, Clone, Default)]
pub struct EdgeMap {
    nodes: u32,
    edges: HashMap<(u32, u32), u64>,
}

impl EdgeMap {
    /// An accumulator over nodes `0..nodes`.
    pub fn new(nodes: u32) -> Self {
        EdgeMap {
            nodes,
            edges: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds `weight` to the undirected edge `{a, b}` (the seed's
    /// entry-or-insert accumulate).
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) {
        debug_assert!(a != b && a < self.nodes && b < self.nodes);
        let key = if a < b { (a, b) } else { (b, a) };
        *self.edges.entry(key).or_insert(0) += weight;
    }

    /// The accumulated edges, sorted — for equivalence checks against the
    /// flat engine, not on the timed path.
    pub fn sorted_edges(&self) -> Vec<(u32, u32, u64)> {
        let mut out: Vec<_> = self.edges.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
        out.sort_unstable();
        out
    }

    /// Compiles to CSR with the seed's build routine.
    pub fn build(&self) -> Csr {
        Csr::from_edge_map(self.nodes, &self.edges)
    }
}

/// The old CSR compile target, private fields and all. Only the summary
/// accessors the benchmark needs are exposed.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<u64>,
}

impl Csr {
    fn from_edge_map(nodes: u32, edges: &HashMap<(u32, u32), u64>) -> Self {
        let n = nodes as usize;
        let mut degree = vec![0usize; n];
        for &(a, b) in edges.keys() {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0u32; acc];
        let mut weights = vec![0u64; acc];
        let mut cursor = offsets[..n].to_vec();
        for (&(a, b), &w) in edges {
            let ca = cursor[a as usize];
            neighbors[ca] = b;
            weights[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize];
            neighbors[cb] = a;
            weights[cb] = w;
            cursor[b as usize] += 1;
        }
        let mut csr = Csr {
            offsets,
            neighbors,
            weights,
        };
        for node in 0..n {
            let range = csr.offsets[node]..csr.offsets[node + 1];
            let mut pairs: Vec<(u32, u64)> = csr.neighbors[range.clone()]
                .iter()
                .copied()
                .zip(csr.weights[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(nb, _)| nb);
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                csr.neighbors[range.start + i] = nb;
                csr.weights[range.start + i] = w;
            }
        }
        csr
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum::<u64>() / 2
    }
}

/// The seed's interleave detection: a `BTreeSet<(u64, u32)>` recency index
/// scanned with a `(prev + 1, 0)..` range per re-execution.
pub fn interleave_counts(trace: &Trace) -> EdgeMap {
    let n = trace.static_branch_count();
    let mut builder = EdgeMap::new(n as u32);
    let mut last_stamp: Vec<Option<u64>> = vec![None; n];
    let mut recency: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut hits: Vec<u32> = Vec::new();
    for (id, rec) in trace.indexed_records() {
        let node = id.as_u32();
        let t = rec.time.get();
        if let Some(prev) = last_stamp[node as usize] {
            hits.clear();
            // The seed wrote `prev + 1`; saturating keeps the replica
            // panic-free at u64::MAX without changing any other stamp.
            for &(_, b) in recency.range((prev.saturating_add(1), 0)..) {
                if b != node {
                    hits.push(b);
                }
            }
            for &b in &hits {
                builder.add_edge(node, b, 1);
            }
            recency.remove(&(prev, node));
        }
        recency.insert((t, node));
        last_stamp[node as usize] = Some(t);
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    /// The legacy replica and the production engine must agree edge for
    /// edge — otherwise the benchmark compares different computations.
    #[test]
    fn legacy_replica_matches_production_engine() {
        let mut b = TraceBuilder::new("mix");
        let mut lcg: u64 = 0xBEEF;
        let mut t = 0u64;
        for _ in 0..5000 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t += (lcg >> 61) % 3;
            b.record(0x1000 + ((lcg >> 33) % 40) * 4, (lcg >> 17) & 1 == 0, t);
        }
        let trace = b.finish();
        let legacy = interleave_counts(&trace);
        let fast = bwsa_core::interleave_counts(&trace);
        let mut fast_edges: Vec<_> = fast.edges().collect();
        fast_edges.sort_unstable();
        assert_eq!(legacy.sorted_edges(), fast_edges);
        let legacy_csr = legacy.build();
        let graph = fast.build();
        assert_eq!(legacy_csr.edge_count(), graph.edge_count());
        assert_eq!(legacy_csr.total_weight(), graph.total_weight());
    }

    #[test]
    fn figure1_example() {
        let mut b = TraceBuilder::new("fig1");
        b.record(0xa, true, 5)
            .record(0xb, true, 10)
            .record(0xc, true, 15)
            .record(0xa, true, 20);
        let m = interleave_counts(&b.finish());
        assert_eq!(m.sorted_edges(), vec![(0, 1, 1), (0, 2, 1)]);
    }
}
