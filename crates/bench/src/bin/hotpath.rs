//! Hot-path wall-time benchmark: the flat engines (monotonic recency
//! ring, open-addressed edge table, fused predictor loop) against the
//! frozen legacy replicas they replaced, over pinned-seed synthetic
//! workloads at three trace sizes.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin hotpath -- \
//!     [--iters N] [--quick] [--engine flat|legacy|both] [--out FILE]
//! cargo run --release -p bwsa-bench --bin hotpath -- --validate FILE
//! ```
//!
//! Measures, per size (median of `--iters` runs, default 5):
//!
//! * `analysis_serial` — [`bwsa_core::interleave_counts`] + CSR build,
//!   for both engines; this pair is the headline speedup.
//! * `analysis_streaming` — record-by-record
//!   [`bwsa_core::StreamingInterleave`] + build (flat only).
//! * `analysis_parallel` — the full sharded pipeline at 2 workers
//!   (flat only).
//! * `analysis_windowed` — the online [`bwsa_core::WindowedAnalysis`]
//!   engine at a 4096-branch reset interval (flat only); its checksum is
//!   the final folded conflict-graph weight, which `--validate` checks
//!   against `analysis_parallel` — same answer, different engine.
//! * `pag_simulate` — the paper-baseline PAg over the trace: the fused
//!   `observe` loop vs the legacy split predict/update loop.
//!
//! Each size also carries a `windowed` object (window count, re-colors,
//! mean stability, phase changes) from the timed windowed run.
//!
//! `--out` writes `BENCH_hotpath.json` (schema `bwsa-bench-hotpath/1`)
//! and refuses to run in a debug build — unoptimised timings must never
//! be checked in. `--validate` parses a previously written file and
//! checks every measurement has positive time and throughput (the CI
//! smoke step).

use bwsa_bench::legacy;
use bwsa_core::{
    analyze_parallel, AnalysisPipeline, ParallelConfig, StreamingInterleave, WindowConfig,
    WindowedAnalysis,
};
use bwsa_obs::json::Json;
use bwsa_predictor::{simulate, BranchPredictor, Pag};
use bwsa_trace::Trace;
use bwsa_workload::suite::{Benchmark, InputSet};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Flat,
    Legacy,
    Both,
}

impl Engine {
    fn runs_flat(self) -> bool {
        self != Engine::Legacy
    }
    fn runs_legacy(self) -> bool {
        self != Engine::Flat
    }
}

struct Args {
    iters: usize,
    quick: bool,
    engine: Engine,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 5,
        quick: false,
        engine: Engine::Both,
        out: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse().map_err(|_| format!("bad --iters {v:?}"))?;
                if args.iters == 0 {
                    return Err("--iters must be positive".into());
                }
            }
            "--quick" => args.quick = true,
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                args.engine = match v.as_str() {
                    "flat" => Engine::Flat,
                    "legacy" => Engine::Legacy,
                    "both" => Engine::Both,
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// One timed measurement: median wall time over `iters` runs of `f`,
/// which returns a checksum kept in the output so the work cannot be
/// optimised away.
fn measure(iters: usize, branches: u64, mut f: impl FnMut() -> u64) -> Json {
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    let mut checksum = 0u64;
    for _ in 0..iters {
        let start = Instant::now();
        checksum = f();
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    let median_ns = times[times.len() / 2].max(1) as u64;
    let throughput = branches as f64 * 1e9 / median_ns as f64;
    Json::object([
        ("median_ns", Json::from(median_ns)),
        ("throughput_branches_per_sec", Json::from(throughput)),
        ("checksum", Json::from(checksum)),
    ])
}

fn median_ns(measurement: &Json) -> u64 {
    measurement
        .get("median_ns")
        .and_then(Json::as_u64)
        .expect("measurement has median_ns")
}

/// The legacy simulation loop: split predict-then-update calls, exactly
/// what `simulate` did before the fused `observe` path.
fn simulate_split(predictor: &mut Pag, trace: &Trace) -> u64 {
    let mut mispredictions = 0u64;
    for (id, rec) in trace.indexed_records() {
        if predictor.predict(rec.pc, id) != rec.direction {
            mispredictions += 1;
        }
        predictor.update(rec.pc, id, rec.direction);
    }
    mispredictions
}

fn bench_size(name: &str, bench: Benchmark, scale: f64, args: &Args) -> Json {
    let trace = bench.generate_scaled(InputSet::A, scale);
    let branches = trace.len() as u64;
    eprintln!(
        "[{name}] {}@{scale}: {branches} dynamic branches",
        bench.name()
    );
    let mut measurements: Vec<Json> = Vec::new();
    let mut push = |label: &str, engine: &str, m: Json| {
        measurements.push(Json::object([
            ("name", Json::from(label)),
            ("engine", Json::from(engine)),
            ("median_ns", m.get("median_ns").expect("median").clone()),
            (
                "throughput_branches_per_sec",
                m.get("throughput_branches_per_sec")
                    .expect("throughput")
                    .clone(),
            ),
            ("checksum", m.get("checksum").expect("checksum").clone()),
        ]));
    };

    if args.engine.runs_flat() {
        push(
            "analysis_serial",
            "flat",
            measure(args.iters, branches, || {
                let g = bwsa_core::interleave_counts(&trace).build();
                g.total_weight() ^ g.edge_count() as u64
            }),
        );
    }
    if args.engine.runs_legacy() {
        push(
            "analysis_serial",
            "legacy",
            measure(args.iters, branches, || {
                let g = legacy::interleave_counts(&trace).build();
                g.total_weight() ^ g.edge_count() as u64
            }),
        );
    }
    if args.engine.runs_flat() {
        push(
            "analysis_streaming",
            "flat",
            measure(args.iters, branches, || {
                let mut engine = StreamingInterleave::new();
                for rec in trace.records() {
                    engine.push(rec);
                }
                let g = engine.finish().0.build();
                g.total_weight() ^ g.edge_count() as u64
            }),
        );
        push(
            "analysis_parallel",
            "flat",
            measure(args.iters, branches, || {
                let analysis = analyze_parallel(
                    &AnalysisPipeline::new(),
                    &trace,
                    &ParallelConfig::with_jobs(2),
                );
                analysis.conflict.graph.total_weight()
            }),
        );
        push(
            "pag_simulate",
            "flat",
            measure(args.iters, branches, || {
                simulate(&mut Pag::paper_baseline(), &trace).mispredictions
            }),
        );
    }
    // Online windowed engine at a 4096-branch reset interval (shrunk
    // under --quick so small smoke traces still flush several windows).
    // Checksum is the folded conflict-graph weight: identical work to
    // analysis_parallel, so --validate cross-checks the two engines.
    let mut windowed_stats: Option<Json> = None;
    if args.engine.runs_flat() {
        let interval = if args.quick { 256 } else { 4096 };
        let config = WindowConfig::branches(interval).expect("nonzero interval");
        push(
            "analysis_windowed",
            "flat",
            measure(args.iters, branches, || {
                let mut engine = WindowedAnalysis::new(config, AnalysisPipeline::new());
                for (id, rec) in trace.indexed_records() {
                    engine.push(id.as_u32(), rec.time.get(), rec.is_taken());
                }
                let result = engine.finish();
                windowed_stats = Some(Json::object([
                    ("interval", Json::from(interval)),
                    ("windows", Json::from(result.windows.len() as u64)),
                    ("recolors", Json::from(result.recolors)),
                    ("mean_stability", Json::from(result.mean_stability)),
                    ("phase_changes", Json::from(result.phase_changes)),
                ]));
                result.analysis.conflict.graph.total_weight()
            }),
        );
    }
    if args.engine.runs_legacy() {
        push(
            "pag_simulate",
            "legacy",
            measure(args.iters, branches, || {
                simulate_split(&mut Pag::paper_baseline(), &trace)
            }),
        );
    }

    let mut fields = vec![
        ("name".to_string(), Json::from(name)),
        (
            "workload".to_string(),
            Json::from(format!("{}@{scale}", bench.name())),
        ),
        ("branches".to_string(), Json::from(branches)),
        (
            "measurements".to_string(),
            Json::Array(measurements.clone()),
        ),
    ];
    if let Some(stats) = windowed_stats {
        fields.push(("windowed".to_string(), stats));
    }
    // With both engines present, report legacy/flat speedups.
    if args.engine == Engine::Both {
        for metric in ["analysis_serial", "pag_simulate"] {
            let of = |engine: &str| {
                measurements.iter().find(|m| {
                    m.get("name").and_then(Json::as_str) == Some(metric)
                        && m.get("engine").and_then(Json::as_str) == Some(engine)
                })
            };
            if let (Some(flat), Some(legacy)) = (of("flat"), of("legacy")) {
                let speedup = median_ns(legacy) as f64 / median_ns(flat) as f64;
                fields.push((format!("speedup_{metric}"), Json::from(speedup)));
            }
        }
    }
    Json::Object(fields)
}

/// Validates a previously written report: schema tag, and positive time
/// and throughput for every measurement.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bwsa-bench-hotpath/1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let sizes = match doc.get("sizes") {
        Some(Json::Array(sizes)) if !sizes.is_empty() => sizes,
        _ => return Err("sizes must be a non-empty array".into()),
    };
    let mut checked = 0usize;
    for size in sizes {
        let sname = size
            .get("name")
            .and_then(Json::as_str)
            .ok_or("size missing name")?;
        let measurements = match size.get("measurements") {
            Some(Json::Array(ms)) if !ms.is_empty() => ms,
            _ => return Err(format!("{sname}: measurements must be non-empty")),
        };
        for m in measurements {
            let label = m.get("name").and_then(Json::as_str).unwrap_or("?");
            let ns = m
                .get("median_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{sname}/{label}: missing median_ns"))?;
            if ns == 0 {
                return Err(format!("{sname}/{label}: zero median_ns"));
            }
            let ok_throughput = matches!(
                m.get("throughput_branches_per_sec"),
                Some(Json::Float(t)) if *t > 0.0
            );
            if !ok_throughput {
                return Err(format!("{sname}/{label}: throughput must be positive"));
            }
            checked += 1;
        }
        // Cross-engine checksum discipline: the windowed fold and the
        // sharded parallel engine both end at the folded conflict-graph
        // weight, so their checksums must be identical.
        let checksum_of = |metric: &str| {
            measurements
                .iter()
                .find(|m| m.get("name").and_then(Json::as_str) == Some(metric))
                .and_then(|m| m.get("checksum"))
                .and_then(Json::as_u64)
        };
        if let (Some(windowed), Some(parallel)) = (
            checksum_of("analysis_windowed"),
            checksum_of("analysis_parallel"),
        ) {
            if windowed != parallel {
                return Err(format!(
                    "{sname}: windowed checksum {windowed} != parallel checksum {parallel}"
                ));
            }
            let stats = size
                .get("windowed")
                .ok_or_else(|| format!("{sname}: missing windowed stats object"))?;
            let windows = stats
                .get("windows")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{sname}: windowed.windows missing"))?;
            let recolors = stats
                .get("recolors")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{sname}: windowed.recolors missing"))?;
            if recolors > windows {
                return Err(format!(
                    "{sname}: {recolors} recolors exceed {windows} windows"
                ));
            }
            let ok_stability = matches!(
                stats.get("mean_stability"),
                Some(Json::Float(s)) if (0.0..=1.0).contains(s)
            );
            if !ok_stability {
                return Err(format!("{sname}: mean_stability must be within [0, 1]"));
            }
        }
    }
    println!("{path}: ok ({checked} measurements)");
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: hotpath [--iters N] [--quick] [--engine flat|legacy|both] \
                 [--out FILE] | --validate FILE"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.out.is_some() && cfg!(debug_assertions) {
        eprintln!(
            "error: refusing to write a benchmark report from a debug build; \
             rerun with --release"
        );
        std::process::exit(2);
    }
    // Three pinned-seed workloads spanning ~100k to ~2.5M dynamic
    // branches; --quick shrinks them two orders of magnitude for smoke
    // runs.
    let shrink = if args.quick { 0.01 } else { 1.0 };
    let sizes = [
        ("small", Benchmark::Compress, 0.25 * shrink),
        ("medium", Benchmark::Li, 1.0 * shrink),
        ("large", Benchmark::Gcc, 1.0 * shrink),
    ];
    let reports: Vec<Json> = sizes
        .iter()
        .map(|&(name, bench, scale)| bench_size(name, bench, scale, &args))
        .collect();
    let doc = Json::object([
        ("schema", Json::from("bwsa-bench-hotpath/1")),
        ("iters", Json::from(args.iters as u64)),
        ("quick", Json::from(args.quick)),
        ("sizes", Json::Array(reports)),
    ]);
    let text = doc.to_pretty_string();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
