//! Regenerates **Figure 4**: misprediction rates of the branch-allocation
//! PAg *with branch classification* against the conventional 1024-entry
//! PAg and the interference-free PAg. The paper's headline: the 128-entry
//! allocated BHT outperforms the conventional 1024-entry BHT (except on
//! gcc), and allocation at 1024 entries improves accuracy by ~16%,
//! approaching the interference-free table.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin figure4 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, figure_row, table34_runs};
use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{paper, run_parallel_jobs, Cli};

fn main() {
    let cli = Cli::parse();
    let mut runs = table34_runs();
    if !cli.benchmarks.is_empty() {
        runs.retain(|(b, _)| cli.benchmarks.contains(b));
    }
    let rows = run_parallel_jobs(&runs, cli.jobs, |(b, s)| {
        let run = analyze(b, s, cli.scale, cli.threshold());
        figure_row(&run, true)
    });
    println!("Figure 4: misprediction rates, branch allocation WITH classification\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.alloc_16),
                pct(r.alloc_128),
                pct(r.alloc_1024),
                pct(r.pag_1024),
                pct(r.interference_free),
                format!("{:+.1}%", r.alloc_1024_improvement() * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "alloc-16",
                "alloc-128",
                "alloc-1024",
                "PAg-1024",
                "interf-free",
                "alloc1024 gain"
            ],
            &body
        )
    );
    let wins_128 = rows
        .iter()
        .filter(|r| r.alloc_128 <= r.pag_1024 + 0.001)
        .count();
    let near_free = rows
        .iter()
        .filter(|r| r.alloc_1024 <= r.interference_free * 1.10 + 1e-9)
        .count();
    let mean_gain: f64 =
        rows.iter().map(|r| r.alloc_1024_improvement()).sum::<f64>() / rows.len().max(1) as f64;
    println!("\nShape checks (paper expectations):");
    println!(
        "  alloc-128 beats/ties (within 0.1pp) PAg-1024 on {}/{} runs (paper: all but gcc)",
        wins_128,
        rows.len()
    );
    println!(
        "  alloc-1024 within 10% of interference-free on {}/{} runs (paper: all)",
        near_free,
        rows.len()
    );
    println!(
        "  mean relative gain of alloc-1024 over PAg-1024: {:.1}% (paper: ~{:.0}%)",
        mean_gain * 100.0,
        paper::HEADLINE_IMPROVEMENT * 100.0
    );
}
