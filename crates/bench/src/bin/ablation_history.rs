//! Ablation: PAg history length (PHT size) under each indexing scheme.
//!
//! The paper fixes a 4096-entry PHT (12 history bits). This sweep shows
//! how the allocation advantage behaves at other history lengths: first-
//! level interference corrupts *histories*, so schemes separate at every
//! width once the PHT is not the bottleneck.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_history [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::analyze;
use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::allocation::AllocationConfig;
use bwsa_predictor::{simulate, BhtIndexer, Pag};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[Benchmark::Compress, Benchmark::Li, Benchmark::M88ksim]);
    let widths = [4u32, 8, 12, 16];
    let runs = run_parallel_jobs(&benches, cli.jobs, |b| {
        (b, analyze(b, InputSet::A, cli.scale, cli.threshold()))
    });
    let mut rows = Vec::new();
    for (b, run) in &runs {
        let allocation = run
            .analysis
            .allocation(
                bwsa_core::Classified(false),
                1024,
                &AllocationConfig::default(),
            )
            .expect("valid table size");
        for w in widths {
            let conv = simulate(&mut Pag::new(BhtIndexer::pc_modulo(1024), w), &run.trace);
            let alloc = simulate(
                &mut Pag::new(BhtIndexer::Allocated(allocation.index.clone()), w),
                &run.trace,
            );
            let free = simulate(&mut Pag::new(BhtIndexer::PerBranch, w), &run.trace);
            rows.push(vec![
                b.name().to_owned(),
                w.to_string(),
                pct(conv.misprediction_rate()),
                pct(alloc.misprediction_rate()),
                pct(free.misprediction_rate()),
            ]);
        }
    }
    println!("Ablation: PAg history width sweep (PHT = 2^width counters)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "history bits",
                "PAg-1024",
                "alloc-1024",
                "interf-free"
            ],
            &rows
        )
    );
}
