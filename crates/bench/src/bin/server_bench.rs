//! Daemon throughput and overload benchmark: an in-process `bwsa-server`
//! on a Unix socket, hammered by concurrent tenant clients.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin server_bench -- \
//!     [--clients N] [--requests N] [--quick] [--out FILE]
//! cargo run --release -p bwsa-bench --bin server_bench -- --validate FILE
//! ```
//!
//! Two phases, each against its own daemon:
//!
//! * **throughput** — `--clients` connections each send `--requests`
//!   analyze requests of a pinned-seed BWSS2 payload; reports aggregate
//!   requests/sec and per-request p50/p99 latency. Every response must
//!   be `Ok` — a single typed error fails the run.
//! * **overload** — a daemon squeezed to one worker with a zero shed
//!   watermark, its only slot held from outside. Every request sheds
//!   with a jittered retry-after hint (counted, hints summarised); then
//!   the slot is released and each client retries until served, proving
//!   the shed → retry-after → served ladder round-trips.
//!
//! `--out` writes `BENCH_server.json` (schema `bwsa-bench-server/1`) and
//! refuses to run in a debug build. `--validate` re-parses a written
//! report and checks the invariants (the CI smoke step).

use bwsa_obs::json::Json;
use bwsa_server::server::ServerConfig;
use bwsa_server::{AdmissionConfig, Client, Response, Server, ServerHandle};
use bwsa_trace::stream::StreamWriter;
use bwsa_workload::suite::{Benchmark, InputSet};
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    requests: usize,
    quick: bool,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        requests: 25,
        quick: false,
        out: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                args.clients = v.parse().map_err(|_| format!("bad --clients {v:?}"))?;
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                args.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--quick" => args.quick = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".into());
    }
    Ok(args)
}

/// Pinned-seed BWSS2 payload: the compress workload at benchmark scale.
fn payload(quick: bool) -> Vec<u8> {
    let scale = if quick { 0.002 } else { 0.05 };
    let trace = Benchmark::Compress.generate_scaled(InputSet::A, scale);
    let mut bytes = Vec::new();
    let mut writer = StreamWriter::new(&mut bytes, &trace.meta().name).expect("encode payload");
    for record in trace.records() {
        writer.push(*record).expect("encode payload");
    }
    writer
        .finish(trace.meta().total_instructions)
        .expect("encode payload");
    bytes
}

fn spawn_daemon(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut socket = std::env::temp_dir();
    socket.push(format!("bwsa-bench-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut config = ServerConfig::new(socket);
    tweak(&mut config);
    Server::bind(config).expect("bind bench daemon").spawn()
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    let idx = (sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1);
    sorted_ns[idx]
}

/// Phase 1: aggregate throughput and latency under healthy load.
fn bench_throughput(args: &Args, bytes: &[u8]) -> Json {
    let handle = spawn_daemon("throughput", |_| {});
    let socket = handle.socket().to_path_buf();
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let socket = socket.clone();
            let bytes = bytes.to_vec();
            let requests = args.requests;
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    Client::connect(&socket, &format!("bench-{c}")).map_err(|e| e.to_string())?;
                let mut latencies = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let sent = Instant::now();
                    match client
                        .analyze(bytes.clone(), None)
                        .map_err(|e| e.to_string())?
                    {
                        Response::Ok(_) => {
                            latencies.push(sent.elapsed().as_nanos().max(1) as u64);
                        }
                        Response::Error { code, message, .. } => {
                            return Err(format!("unexpected {code}: {message}"));
                        }
                        Response::Window(json) => {
                            return Err(format!("window frame on an analyze request: {json}"));
                        }
                    }
                }
                Ok(latencies)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    for worker in workers {
        match worker.join().expect("bench client panicked") {
            Ok(mut ns) => latencies.append(&mut ns),
            Err(message) => {
                eprintln!("[throughput] client failed: {message}");
                errors += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    handle.begin_shutdown();
    handle.join().expect("bench daemon failed to drain");
    assert!(
        !latencies.is_empty(),
        "no request succeeded; cannot report latency percentiles"
    );

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let requests_per_sec = total as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "[throughput] {total} requests over {} clients in {:.3}s: {:.1} req/s",
        args.clients,
        elapsed.as_secs_f64(),
        requests_per_sec
    );
    Json::object([
        ("clients", Json::from(args.clients as u64)),
        ("requests", Json::from(total)),
        ("errors", Json::from(errors as u64)),
        ("elapsed_ns", Json::from(elapsed.as_nanos().max(1) as u64)),
        ("requests_per_sec", Json::from(requests_per_sec)),
        ("p50_ns", Json::from(percentile(&latencies, 50))),
        ("p99_ns", Json::from(percentile(&latencies, 99))),
    ])
}

/// Phase 2: deterministic overload — the daemon's only worker slot is
/// held, so every request sheds; releasing it lets retries through.
fn bench_overload(args: &Args, bytes: &[u8]) -> Json {
    let handle = spawn_daemon("overload", |c| {
        c.admission = AdmissionConfig {
            workers: 1,
            shed_watermark: 0,
            jitter_seed: 0xbe9c4,
        };
    });
    let slot = handle.admission().enter().expect("hold the worker slot");
    let socket = handle.socket().to_path_buf();

    let mut hints_ms: Vec<u64> = Vec::new();
    let mut clients: Vec<Client> = Vec::new();
    for c in 0..args.clients {
        let mut client =
            Client::connect(&socket, &format!("burst-{c}")).expect("connect overload client");
        for _ in 0..args.requests {
            match client
                .analyze(bytes.to_vec(), None)
                .expect("overload request")
            {
                Response::Error {
                    retry_after_ms: Some(ms),
                    ..
                } => hints_ms.push(ms),
                other => panic!("expected a shed with a retry-after hint, got {other:?}"),
            }
        }
        clients.push(client);
    }
    let shed = handle.admission().shed_total();

    // Release the slot: every client's retry (honouring a capped hint)
    // must eventually be served.
    drop(slot);
    let mut recovered = 0u64;
    for client in &mut clients {
        let mut attempts = 0;
        loop {
            match client.analyze(bytes.to_vec(), None).expect("retry request") {
                Response::Ok(_) => {
                    recovered += 1;
                    break;
                }
                Response::Error { retry_after_ms, .. } => {
                    attempts += 1;
                    assert!(attempts < 50, "retry never admitted");
                    let wait = retry_after_ms.unwrap_or(5).min(50);
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Response::Window(json) => {
                    panic!("window frame on an analyze request: {json}")
                }
            }
        }
    }
    handle.begin_shutdown();
    handle.join().expect("overload daemon failed to drain");

    hints_ms.sort_unstable();
    eprintln!(
        "[overload] {shed} shed with hints {}..{}ms, {recovered} recovered after release",
        hints_ms.first().copied().unwrap_or(0),
        hints_ms.last().copied().unwrap_or(0)
    );
    Json::object([
        ("offered", Json::from((args.clients * args.requests) as u64)),
        ("shed", Json::from(shed)),
        (
            "retry_hint_ms_min",
            Json::from(hints_ms.first().copied().unwrap_or(0)),
        ),
        (
            "retry_hint_ms_max",
            Json::from(hints_ms.last().copied().unwrap_or(0)),
        ),
        ("recovered", Json::from(recovered)),
    ])
}

/// Validates a previously written report's schema and invariants.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bwsa-bench-server/1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let throughput = doc.get("throughput").ok_or("missing throughput phase")?;
    let u = |node: &Json, field: &str| -> Result<u64, String> {
        node.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing {field}"))
    };
    if u(throughput, "requests")? == 0 {
        return Err("throughput.requests must be positive".into());
    }
    if u(throughput, "errors")? != 0 {
        return Err("throughput phase saw request errors".into());
    }
    let ok_rate = matches!(
        throughput.get("requests_per_sec"),
        Some(Json::Float(r)) if *r > 0.0
    );
    if !ok_rate {
        return Err("throughput.requests_per_sec must be positive".into());
    }
    let p50 = u(throughput, "p50_ns")?;
    let p99 = u(throughput, "p99_ns")?;
    if p50 == 0 || p99 < p50 {
        return Err(format!("bad latency percentiles: p50={p50} p99={p99}"));
    }
    let overload = doc.get("overload").ok_or("missing overload phase")?;
    let offered = u(overload, "offered")?;
    if u(overload, "shed")? != offered {
        return Err("overload must shed every offered request".into());
    }
    if u(overload, "retry_hint_ms_max")? == 0 {
        return Err("shed responses must carry real retry-after hints".into());
    }
    if u(overload, "recovered")? == 0 {
        return Err("no client recovered after the overload cleared".into());
    }
    println!("{path}: ok");
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: server_bench [--clients N] [--requests N] [--quick] \
                 [--out FILE] | --validate FILE"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.out.is_some() && cfg!(debug_assertions) {
        eprintln!(
            "error: refusing to write a benchmark report from a debug build; \
             rerun with --release"
        );
        std::process::exit(2);
    }
    let args = if args.quick {
        Args {
            requests: args.requests.min(5),
            ..args
        }
    } else {
        args
    };
    let bytes = payload(args.quick);
    eprintln!(
        "[payload] {} bytes, {} clients x {} requests",
        bytes.len(),
        args.clients,
        args.requests
    );
    let throughput = bench_throughput(&args, &bytes);
    let overload = bench_overload(&args, &bytes);
    let doc = Json::object([
        ("schema", Json::from("bwsa-bench-server/1")),
        ("quick", Json::from(args.quick)),
        ("payload_bytes", Json::from(bytes.len() as u64)),
        ("throughput", throughput),
        ("overload", overload),
    ]);
    let text = doc.to_pretty_string();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
