//! Corpus batch-analytics benchmark: a pinned synthetic trace corpus on
//! disk — encoded once as `BWSS2` streams and once as `BWSS3` columnar
//! files with identical names — ingested and folded into fleet
//! summaries.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin corpus_bench -- \
//!     [--traces N] [--jobs N] [--quick] [--out FILE]
//! cargo run --release -p bwsa-bench --bin corpus_bench -- --validate FILE
//! ```
//!
//! Five phases over the same generated corpus:
//!
//! * **ingest** — cold decode-only throughput per format: every `BWSS2`
//!   file through the stream reader vs every `BWSS3` file through the
//!   mmap'd columnar decoder (and once more fully buffered, isolating
//!   the mmap-vs-`read(2)` delta). Asserts the `BWSS3` mmap path
//!   ingests at least 3x the `BWSS2` records/sec — the format's reason
//!   to exist, measured where it is cheapest to regress.
//! * **identity** — the cross-format contract: the analysis, windowed,
//!   corpus, and predictor paths each run over both encodings of the
//!   same records and must render byte-identical results.
//! * **batch** — `Corpus::open(..).session().run_all()` serial and at
//!   `--jobs` width; reports end-to-end wall time, ingest throughput,
//!   the fan-out decision (small corpora demote to serial), and asserts
//!   the serial and parallel summaries are byte-identical.
//! * **aggregation** — the pure fold in isolation: the batch's entry
//!   records absorbed into a fresh accumulator and `finish`ed repeatedly.
//! * **cache** — the content-addressed result cache: a cold run that
//!   fills it vs a warm rerun that replays every entry (zero analyses).
//!
//! `--out` writes `BENCH_corpus.json` (schema `bwsa-bench-corpus/3`) and
//! refuses to run in a debug build. `--validate` re-parses a written
//! report and checks the invariants (the CI smoke step).

use bwsa_core::columnar::decode_columnar;
use bwsa_core::{AnalysisPipeline, WindowConfig, WindowedAnalysis};
use bwsa_corpus::{Corpus, EntryStatus, FleetAccumulator, FleetSummary};
use bwsa_obs::json::Json;
use bwsa_obs::Obs;
use bwsa_predictor::{simulate, BhtIndexer, Pag};
use bwsa_trace::columnar::write_columnar;
use bwsa_trace::mmap::TraceBytes;
use bwsa_trace::stream::{RecoveryPolicy, StreamReader, StreamWriter};
use bwsa_trace::Trace;
use bwsa_workload::suite::{Benchmark, InputSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    traces: usize,
    jobs: usize,
    quick: bool,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        traces: 8,
        jobs: 4,
        quick: false,
        out: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--traces" => {
                let v = it.next().ok_or("--traces needs a value")?;
                args.traces = v.parse().map_err(|_| format!("bad --traces {v:?}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
            }
            "--quick" => args.quick = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.traces == 0 || args.jobs == 0 {
        return Err("--traces and --jobs must be positive".into());
    }
    Ok(args)
}

/// The workload rotation the synthetic corpus draws from, with the
/// class tag each benchmark carries in the manifest.
const ROTATION: [(Benchmark, &str); 4] = [
    (Benchmark::Compress, "integer"),
    (Benchmark::Pgp, "crypto"),
    (Benchmark::Li, "interp"),
    (Benchmark::Perl, "interp"),
];

/// The generated corpus, encoded twice: sibling directories with
/// identical file names and manifest text, so entry keys — and
/// therefore fleet summaries — can only differ if the formats decode
/// differently.
struct CorpusPair {
    bwss_manifest: PathBuf,
    bws3_manifest: PathBuf,
    bwss_bytes: u64,
    bws3_bytes: u64,
    records: u64,
}

/// Generates the corpus on disk in both formats.
fn build_corpus(dir: &Path, traces: usize, quick: bool) -> CorpusPair {
    let scale = if quick { 0.005 } else { 0.05 };
    let bwss_dir = dir.join("bwss");
    let bws3_dir = dir.join("bws3");
    std::fs::create_dir_all(&bwss_dir).expect("create corpus dir");
    std::fs::create_dir_all(&bws3_dir).expect("create corpus dir");
    let mut manifest = String::from("name = \"bench\"\n\n[defaults]\nthreshold = 100\n");
    let mut pair = CorpusPair {
        bwss_manifest: bwss_dir.join("corpus.toml"),
        bws3_manifest: bws3_dir.join("corpus.toml"),
        bwss_bytes: 0,
        bws3_bytes: 0,
        records: 0,
    };
    for i in 0..traces {
        let (bench, class) = ROTATION[i % ROTATION.len()];
        // Alternate input sets so repeated benchmarks still differ.
        let input = if (i / ROTATION.len()).is_multiple_of(2) {
            InputSet::A
        } else {
            InputSet::B
        };
        let trace = bench.generate_scaled(input, scale);
        pair.records += trace.len() as u64;
        let name = format!("t{i:03}.trace");

        let mut bwss = Vec::new();
        let mut writer = StreamWriter::new(&mut bwss, &trace.meta().name).expect("encode trace");
        for record in trace.records() {
            writer.push(*record).expect("encode trace");
        }
        writer
            .finish(trace.meta().total_instructions)
            .expect("encode trace");
        pair.bwss_bytes += bwss.len() as u64;
        std::fs::write(bwss_dir.join(&name), &bwss).expect("write trace");

        let mut bws3 = Vec::new();
        write_columnar(&trace, &mut bws3).expect("encode trace");
        pair.bws3_bytes += bws3.len() as u64;
        std::fs::write(bws3_dir.join(&name), &bws3).expect("write trace");

        manifest.push_str(&format!(
            "\n[[trace]]\npath = \"{name}\"\nclass = \"{class}\"\n"
        ));
    }
    std::fs::write(&pair.bwss_manifest, &manifest).expect("write manifest");
    std::fs::write(&pair.bws3_manifest, &manifest).expect("write manifest");
    pair
}

/// Decodes one BWSS2 stream file the way the corpus runner does.
fn decode_bwss(path: &Path) -> Trace {
    let bytes = std::fs::read(path).expect("read trace");
    let mut reader = StreamReader::new(&bytes[..]).expect("open stream");
    let mut trace = Trace::new(reader.name().to_owned());
    for item in reader.by_ref() {
        trace
            .push(item.expect("decode record"))
            .expect("push record");
    }
    if let Some(total) = reader.total_instructions() {
        trace.meta_mut().total_instructions = total;
    }
    trace
}

/// Lists the trace files of one corpus directory, in name order.
fn trace_files(manifest: &Path) -> Vec<PathBuf> {
    let dir = manifest.parent().expect("manifest has a parent");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("list corpus dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    files.sort();
    files
}

/// Best-of-N wall time for `f`, returning (ns, records decoded in one
/// pass). Cold-cache honesty is impossible in-process; best-of-N at
/// least pins the decode cost rather than first-touch noise.
fn time_decode(iters: usize, mut f: impl FnMut() -> u64) -> (u64, u64) {
    let mut best = u64::MAX;
    let mut records = 0;
    for _ in 0..iters {
        let started = Instant::now();
        records = f();
        best = best.min(started.elapsed().as_nanos().max(1) as u64);
    }
    (best, records)
}

/// Minimum BWSS3-over-BWSS2 cold-ingest speedup the report asserts.
fn ingest_floor(quick: bool) -> f64 {
    if quick {
        2.0
    } else {
        3.0
    }
}

/// Phase 1: cold decode-only ingest, BWSS2 stream vs BWSS3 columnar
/// (mmap'd and buffered).
fn bench_ingest(pair: &CorpusPair, jobs: usize, quick: bool) -> Json {
    let bwss_files = trace_files(&pair.bwss_manifest);
    let bws3_files = trace_files(&pair.bws3_manifest);
    let iters = if quick { 3 } else { 5 };

    let (bwss_ns, bwss_records) = time_decode(iters, || {
        bwss_files.iter().map(|p| decode_bwss(p).len() as u64).sum()
    });
    let (mmap_ns, mmap_records) = time_decode(iters, || {
        bws3_files
            .iter()
            .map(|p| {
                let bytes = TraceBytes::open(p).expect("mmap trace");
                let (trace, _) =
                    decode_columnar(&bytes, RecoveryPolicy::Strict, jobs).expect("decode columnar");
                trace.len() as u64
            })
            .sum()
    });
    let (buffered_ns, buffered_records) = time_decode(iters, || {
        bws3_files
            .iter()
            .map(|p| {
                let bytes = TraceBytes::from_vec(std::fs::read(p).expect("read trace"));
                let (trace, _) =
                    decode_columnar(&bytes, RecoveryPolicy::Strict, jobs).expect("decode columnar");
                trace.len() as u64
            })
            .sum()
    });
    assert_eq!(
        (bwss_records, mmap_records, buffered_records),
        (pair.records, pair.records, pair.records),
        "every ingest path must decode the whole corpus"
    );

    let rps = |ns: u64| pair.records as f64 / (ns as f64 / 1e9);
    let bwss_rps = rps(bwss_ns);
    let mmap_rps = rps(mmap_ns);
    let buffered_rps = rps(buffered_ns);
    let speedup = mmap_rps / bwss_rps;
    let mmap_vs_buffered = buffered_ns as f64 / mmap_ns as f64;
    eprintln!(
        "[ingest] {} records: bwss2 {:.1}M rec/s, bws3 mmap {:.1}M rec/s ({speedup:.1}x), \
         bws3 buffered {:.1}M rec/s (mmap {mmap_vs_buffered:.2}x buffered)",
        pair.records,
        bwss_rps / 1e6,
        mmap_rps / 1e6,
        buffered_rps / 1e6,
    );
    // The published floor is 3x; a --quick smoke corpus is too small to
    // amortise per-file costs, so it gets a looser 2x sanity floor.
    let floor = ingest_floor(quick);
    assert!(
        speedup >= floor,
        "BWSS3 mmap cold ingest must be >= {floor}x BWSS2 records/sec, got {speedup:.2}x"
    );
    Json::object([
        ("records", Json::from(pair.records)),
        ("bwss_bytes", Json::from(pair.bwss_bytes)),
        ("bws3_bytes", Json::from(pair.bws3_bytes)),
        ("decode_jobs", Json::from(jobs as u64)),
        ("bwss2_ns", Json::from(bwss_ns)),
        ("bws3_mmap_ns", Json::from(mmap_ns)),
        ("bws3_buffered_ns", Json::from(buffered_ns)),
        ("bwss2_records_per_sec", Json::from(bwss_rps)),
        ("bws3_mmap_records_per_sec", Json::from(mmap_rps)),
        ("bws3_buffered_records_per_sec", Json::from(buffered_rps)),
        ("bws3_speedup", Json::from(speedup)),
        ("mmap_vs_buffered", Json::from(mmap_vs_buffered)),
    ])
}

/// Phase 2: the cross-format identity contract — every downstream path
/// must render byte-identical results over both encodings.
fn bench_identity(pair: &CorpusPair, jobs: usize) -> Json {
    let bwss_files = trace_files(&pair.bwss_manifest);
    let bws3_files = trace_files(&pair.bws3_manifest);
    let path_pairs: Vec<(Trace, Trace)> = bwss_files
        .iter()
        .zip(&bws3_files)
        .map(|(s, c)| {
            let bytes = TraceBytes::open(c).expect("mmap trace");
            let (columnar, _) =
                decode_columnar(&bytes, RecoveryPolicy::Strict, jobs).expect("decode columnar");
            (decode_bwss(s), columnar)
        })
        .collect();

    let pipeline = AnalysisPipeline::new();
    let analysis = path_pairs.iter().all(|(s, c)| {
        let a = pipeline.run_observed(s, &Obs::noop()).summary_json();
        let b = pipeline.run_observed(c, &Obs::noop()).summary_json();
        a.to_pretty_string() == b.to_pretty_string()
    });
    let windowed = path_pairs.iter().all(|(s, c)| {
        let run = |t: &Trace| {
            let config = WindowConfig::branches(1000).expect("window config");
            let mut engine = WindowedAnalysis::new(config, AnalysisPipeline::new());
            for (id, r) in t.indexed_records() {
                engine.push(id.as_u32(), r.time.get(), r.is_taken());
            }
            engine.finish().to_json().to_pretty_string()
        };
        run(s) == run(c)
    });
    let predictor = path_pairs.iter().all(|(s, c)| {
        let run = |t: &Trace| {
            let mut pag = Pag::new(BhtIndexer::pc_modulo(1024), 10);
            let r = simulate(&mut pag, t);
            (r.total, r.mispredictions)
        };
        run(s) == run(c)
    });
    let corpus_run = |manifest: &Path| {
        Corpus::open(manifest)
            .expect("open bench corpus")
            .session()
            .run_all()
            .to_json()
            .to_pretty_string()
    };
    let corpus = corpus_run(&pair.bwss_manifest) == corpus_run(&pair.bws3_manifest);
    eprintln!(
        "[identity] analysis {analysis}, windowed {windowed}, corpus {corpus}, \
         predictor {predictor} across {} trace pairs",
        path_pairs.len()
    );
    assert!(
        analysis && windowed && corpus && predictor,
        "a result diverged between the BWSS2 and BWSS3 encodings"
    );
    Json::object([
        ("analysis", Json::from(analysis)),
        ("windowed", Json::from(windowed)),
        ("corpus", Json::from(corpus)),
        ("predictor", Json::from(predictor)),
    ])
}

fn run_at(manifest: &Path, jobs: usize) -> (FleetSummary, u64) {
    let started = Instant::now();
    let summary = Corpus::open(manifest)
        .expect("open bench corpus")
        .session()
        .with_jobs(jobs)
        .run_all();
    (summary, started.elapsed().as_nanos().max(1) as u64)
}

/// Phase 3: end-to-end batch runs, serial vs fanned.
fn bench_batch(args: &Args, manifest: &Path, corpus_bytes: u64) -> (Json, FleetSummary) {
    let (serial, serial_ns) = run_at(manifest, 1);
    let (parallel, parallel_ns) = run_at(manifest, args.jobs);
    let identical = serial.to_json().to_pretty_string() == parallel.to_json().to_pretty_string();
    assert!(
        identical,
        "fleet summaries diverged between jobs=1 and jobs={}",
        args.jobs
    );
    assert!(
        serial.entries.iter().all(|e| e.status == EntryStatus::Ok),
        "a synthetic corpus entry failed: {:?}",
        serial.entries
    );
    let records = serial.records;
    let best_ns = serial_ns.min(parallel_ns);
    let ingest_bytes_per_sec = corpus_bytes as f64 / (best_ns as f64 / 1e9);
    let records_per_sec = records as f64 / (best_ns as f64 / 1e9);
    let fan_out = parallel.fan_out;
    eprintln!(
        "[batch] {} traces, {} records: serial {:.3}s, jobs={} {:.3}s \
         ({:.1} MB/s ingest, fan-out {})",
        serial.entries.len(),
        records,
        serial_ns as f64 / 1e9,
        args.jobs,
        parallel_ns as f64 / 1e9,
        ingest_bytes_per_sec / 1e6,
        fan_out.mode(),
    );
    let doc = Json::object([
        ("traces", Json::from(serial.entries.len() as u64)),
        ("records", Json::from(records)),
        ("corpus_bytes", Json::from(corpus_bytes)),
        ("serial_ns", Json::from(serial_ns)),
        ("jobs", Json::from(args.jobs as u64)),
        ("parallel_ns", Json::from(parallel_ns)),
        ("identical", Json::from(identical)),
        ("fan_out_mode", Json::from(fan_out.mode())),
        (
            "fan_out_effective_jobs",
            Json::from(fan_out.effective_jobs as u64),
        ),
        (
            "largest_entry_bytes",
            Json::from(fan_out.largest_entry_bytes),
        ),
        ("ingest_bytes_per_sec", Json::from(ingest_bytes_per_sec)),
        ("records_per_sec", Json::from(records_per_sec)),
    ]);
    (doc, serial)
}

/// Phase 4: the pure fold, isolated from analysis cost.
fn bench_aggregation(summary: &FleetSummary) -> Json {
    let iters = 200usize;
    let started = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..iters {
        let folded: FleetAccumulator = summary.entries.iter().cloned().collect();
        let result = folded.finish(&summary.name);
        checksum = checksum.wrapping_add(result.records);
    }
    let elapsed = started.elapsed().as_nanos().max(1) as u64;
    let mean_ns = elapsed / iters as u64;
    eprintln!(
        "[aggregation] {iters} folds of {} entries: {mean_ns} ns/fold (checksum {checksum})",
        summary.entries.len()
    );
    Json::object([
        ("iters", Json::from(iters as u64)),
        ("entries", Json::from(summary.entries.len() as u64)),
        ("mean_fold_ns", Json::from(mean_ns.max(1))),
    ])
}

/// Phase 5: the result cache — one cold run filling a fresh cache, one
/// warm rerun replaying every entry from it without re-analysis.
fn bench_cache(manifest: &Path, corpus_bytes: u64) -> Json {
    let cache_dir = manifest
        .parent()
        .expect("manifest has a parent")
        .join("bench-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = || {
        let started = Instant::now();
        let summary = Corpus::open(manifest)
            .expect("open bench corpus")
            .session()
            .with_cache(&cache_dir)
            .run_all();
        (summary, started.elapsed().as_nanos().max(1) as u64)
    };
    let (cold, cold_ns) = run();
    let (warm, warm_ns) = run();
    assert_eq!(
        cold.to_json().to_pretty_string(),
        warm.to_json().to_pretty_string(),
        "warm cache summary diverged from the cold run"
    );
    let entries = cold.entries.len() as u64;
    assert_eq!(
        (warm.cache.hits, warm.cache.misses),
        (entries, 0),
        "a warm rerun must replay every entry from the cache"
    );
    let speedup = cold_ns as f64 / warm_ns as f64;
    let warm_bytes_per_sec = corpus_bytes as f64 / (warm_ns as f64 / 1e9);
    eprintln!(
        "[cache] cold {:.3}s, warm {:.3}s ({speedup:.1}x, {:.1} MB/s warm ingest, {} hits)",
        cold_ns as f64 / 1e9,
        warm_ns as f64 / 1e9,
        warm_bytes_per_sec / 1e6,
        warm.cache.hits,
    );
    Json::object([
        ("cold_ns", Json::from(cold_ns)),
        ("warm_ns", Json::from(warm_ns)),
        ("speedup", Json::from(speedup)),
        ("warm_hits", Json::from(warm.cache.hits)),
        ("warm_misses", Json::from(warm.cache.misses)),
        ("warm_bytes_per_sec", Json::from(warm_bytes_per_sec)),
    ])
}

/// Validates a previously written report's schema and invariants.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bwsa-bench-corpus/3" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let u = |node: &Json, field: &str| -> Result<u64, String> {
        node.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing {field}"))
    };
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let ingest = doc.get("ingest").ok_or("missing ingest phase")?;
    if u(ingest, "records")? == 0 {
        return Err("ingest phase decoded nothing".into());
    }
    if u(ingest, "bwss2_ns")? == 0
        || u(ingest, "bws3_mmap_ns")? == 0
        || u(ingest, "bws3_buffered_ns")? == 0
    {
        return Err("ingest wall times must be positive".into());
    }
    let floor = ingest_floor(quick);
    let fast_enough = matches!(
        ingest.get("bws3_speedup"),
        Some(Json::Float(s)) if *s >= floor
    );
    if !fast_enough {
        return Err(format!(
            "ingest.bws3_speedup must be >= {floor} (BWSS3 mmap vs BWSS2 cold ingest)"
        ));
    }
    if !matches!(ingest.get("mmap_vs_buffered"), Some(Json::Float(r)) if *r > 0.0) {
        return Err("ingest.mmap_vs_buffered must be positive".into());
    }
    let identity = doc.get("identity").ok_or("missing identity phase")?;
    for field in ["analysis", "windowed", "corpus", "predictor"] {
        if !matches!(identity.get(field), Some(Json::Bool(true))) {
            return Err(format!(
                "identity.{field} must be true (BWSS2 and BWSS3 results byte-identical)"
            ));
        }
    }
    let batch = doc.get("batch").ok_or("missing batch phase")?;
    if u(batch, "traces")? == 0 || u(batch, "records")? == 0 || u(batch, "corpus_bytes")? == 0 {
        return Err("batch phase analyzed nothing".into());
    }
    if u(batch, "serial_ns")? == 0 || u(batch, "parallel_ns")? == 0 {
        return Err("batch wall times must be positive".into());
    }
    if !matches!(batch.get("identical"), Some(Json::Bool(true))) {
        return Err("serial and parallel summaries must be byte-identical".into());
    }
    match batch.get("fan_out_mode").and_then(Json::as_str) {
        Some("serial") | Some("parallel") => {}
        _ => return Err("batch.fan_out_mode must be \"serial\" or \"parallel\"".into()),
    }
    let ok_rate = matches!(
        batch.get("ingest_bytes_per_sec"),
        Some(Json::Float(r)) if *r > 0.0
    );
    if !ok_rate {
        return Err("batch.ingest_bytes_per_sec must be positive".into());
    }
    let aggregation = doc.get("aggregation").ok_or("missing aggregation phase")?;
    if u(aggregation, "mean_fold_ns")? == 0 {
        return Err("aggregation.mean_fold_ns must be positive".into());
    }
    if u(aggregation, "entries")? != u(batch, "traces")? {
        return Err("aggregation must fold exactly the batch's entries".into());
    }
    let cache = doc.get("cache").ok_or("missing cache phase")?;
    if u(cache, "cold_ns")? == 0 || u(cache, "warm_ns")? == 0 {
        return Err("cache wall times must be positive".into());
    }
    if u(cache, "warm_hits")? != u(batch, "traces")? || u(cache, "warm_misses")? != 0 {
        return Err("a warm rerun must replay every entry from the cache".into());
    }
    let warm_faster = matches!(
        cache.get("speedup"),
        Some(Json::Float(s)) if *s > 1.0
    );
    if !warm_faster {
        return Err("cache.speedup must exceed 1.0 (warm replay beats re-analysis)".into());
    }
    println!("{path}: ok");
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: corpus_bench [--traces N] [--jobs N] [--quick] \
                 [--out FILE] | --validate FILE"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.out.is_some() && cfg!(debug_assertions) {
        eprintln!(
            "error: refusing to write a benchmark report from a debug build; \
             rerun with --release"
        );
        std::process::exit(2);
    }
    let args = if args.quick {
        Args {
            traces: args.traces.min(4),
            ..args
        }
    } else {
        args
    };
    let dir = std::env::temp_dir().join(format!("bwsa-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pair = build_corpus(&dir, args.traces, args.quick);
    eprintln!(
        "[corpus] {} traces, {} records: {} bytes as BWSS2, {} as BWSS3, at {}",
        args.traces,
        pair.records,
        pair.bwss_bytes,
        pair.bws3_bytes,
        dir.display()
    );
    let ingest = bench_ingest(&pair, args.jobs, args.quick);
    let identity = bench_identity(&pair, args.jobs);
    let (batch, summary) = bench_batch(&args, &pair.bwss_manifest, pair.bwss_bytes);
    let aggregation = bench_aggregation(&summary);
    let cache = bench_cache(&pair.bwss_manifest, pair.bwss_bytes);
    let _ = std::fs::remove_dir_all(&dir);
    let doc = Json::object([
        ("schema", Json::from("bwsa-bench-corpus/3")),
        ("quick", Json::from(args.quick)),
        ("ingest", ingest),
        ("identity", identity),
        ("batch", batch),
        ("aggregation", aggregation),
        ("cache", cache),
    ]);
    let text = doc.to_pretty_string();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
