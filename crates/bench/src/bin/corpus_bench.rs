//! Corpus batch-analytics benchmark: a pinned synthetic trace corpus on
//! disk, ingested and folded into a fleet summary at several fan-out
//! widths.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin corpus_bench -- \
//!     [--traces N] [--jobs N] [--quick] [--out FILE]
//! cargo run --release -p bwsa-bench --bin corpus_bench -- --validate FILE
//! ```
//!
//! Two phases over the same generated corpus:
//!
//! * **batch** — `Corpus::open(..).session().run_all()` serial and at
//!   `--jobs` width; reports end-to-end wall time, ingest throughput
//!   (bytes/sec and records/sec over the summed on-disk trace sizes),
//!   and asserts the serial and parallel summaries are byte-identical —
//!   the fleet fold's schedule-independence contract, measured where it
//!   is cheapest to violate.
//! * **aggregation** — the pure fold in isolation: the batch's entry
//!   records absorbed into a fresh accumulator and `finish`ed repeatedly;
//!   reports mean wall time per fold, separating aggregation cost from
//!   analysis cost.
//! * **cache** — the content-addressed result cache: a cold run that
//!   fills it vs a warm rerun that replays every entry (zero analyses);
//!   reports both wall times, warm ingest throughput, and the speedup,
//!   and asserts the warm summary is byte-identical with every entry a
//!   hit.
//!
//! `--out` writes `BENCH_corpus.json` (schema `bwsa-bench-corpus/2`) and
//! refuses to run in a debug build. `--validate` re-parses a written
//! report and checks the invariants (the CI smoke step).

use bwsa_corpus::{Corpus, EntryStatus, FleetAccumulator, FleetSummary};
use bwsa_obs::json::Json;
use bwsa_trace::stream::StreamWriter;
use bwsa_workload::suite::{Benchmark, InputSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    traces: usize,
    jobs: usize,
    quick: bool,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        traces: 8,
        jobs: 4,
        quick: false,
        out: None,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--traces" => {
                let v = it.next().ok_or("--traces needs a value")?;
                args.traces = v.parse().map_err(|_| format!("bad --traces {v:?}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
            }
            "--quick" => args.quick = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--validate" => args.validate = Some(it.next().ok_or("--validate needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.traces == 0 || args.jobs == 0 {
        return Err("--traces and --jobs must be positive".into());
    }
    Ok(args)
}

/// The workload rotation the synthetic corpus draws from, with the
/// class tag each benchmark carries in the manifest.
const ROTATION: [(Benchmark, &str); 4] = [
    (Benchmark::Compress, "integer"),
    (Benchmark::Pgp, "crypto"),
    (Benchmark::Li, "interp"),
    (Benchmark::Perl, "interp"),
];

/// Generates the corpus on disk and returns (manifest path, summed
/// trace bytes).
fn build_corpus(dir: &Path, traces: usize, quick: bool) -> (PathBuf, u64) {
    let scale = if quick { 0.005 } else { 0.05 };
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let mut manifest = String::from("name = \"bench\"\n\n[defaults]\nthreshold = 100\n");
    let mut bytes = 0u64;
    for i in 0..traces {
        let (bench, class) = ROTATION[i % ROTATION.len()];
        // Alternate input sets so repeated benchmarks still differ.
        let input = if (i / ROTATION.len()).is_multiple_of(2) {
            InputSet::A
        } else {
            InputSet::B
        };
        let trace = bench.generate_scaled(input, scale);
        let name = format!("t{i:03}.bwss");
        let path = dir.join(&name);
        let mut buf = Vec::new();
        let mut writer = StreamWriter::new(&mut buf, &trace.meta().name).expect("encode trace");
        for record in trace.records() {
            writer.push(*record).expect("encode trace");
        }
        writer
            .finish(trace.meta().total_instructions)
            .expect("encode trace");
        bytes += buf.len() as u64;
        std::fs::write(&path, &buf).expect("write trace");
        manifest.push_str(&format!(
            "\n[[trace]]\npath = \"{name}\"\nclass = \"{class}\"\n"
        ));
    }
    let manifest_path = dir.join("corpus.toml");
    std::fs::write(&manifest_path, manifest).expect("write manifest");
    (manifest_path, bytes)
}

fn run_at(manifest: &Path, jobs: usize) -> (FleetSummary, u64) {
    let started = Instant::now();
    let summary = Corpus::open(manifest)
        .expect("open bench corpus")
        .session()
        .with_jobs(jobs)
        .run_all();
    (summary, started.elapsed().as_nanos().max(1) as u64)
}

/// Phase 1: end-to-end batch runs, serial vs fanned.
fn bench_batch(args: &Args, manifest: &Path, corpus_bytes: u64) -> (Json, FleetSummary) {
    let (serial, serial_ns) = run_at(manifest, 1);
    let (parallel, parallel_ns) = run_at(manifest, args.jobs);
    let identical = serial.to_json().to_pretty_string() == parallel.to_json().to_pretty_string();
    assert!(
        identical,
        "fleet summaries diverged between jobs=1 and jobs={}",
        args.jobs
    );
    assert!(
        serial.entries.iter().all(|e| e.status == EntryStatus::Ok),
        "a synthetic corpus entry failed: {:?}",
        serial.entries
    );
    let records = serial.records;
    let best_ns = serial_ns.min(parallel_ns);
    let ingest_bytes_per_sec = corpus_bytes as f64 / (best_ns as f64 / 1e9);
    let records_per_sec = records as f64 / (best_ns as f64 / 1e9);
    eprintln!(
        "[batch] {} traces, {} records: serial {:.3}s, jobs={} {:.3}s ({:.1} MB/s ingest)",
        serial.entries.len(),
        records,
        serial_ns as f64 / 1e9,
        args.jobs,
        parallel_ns as f64 / 1e9,
        ingest_bytes_per_sec / 1e6,
    );
    let doc = Json::object([
        ("traces", Json::from(serial.entries.len() as u64)),
        ("records", Json::from(records)),
        ("corpus_bytes", Json::from(corpus_bytes)),
        ("serial_ns", Json::from(serial_ns)),
        ("jobs", Json::from(args.jobs as u64)),
        ("parallel_ns", Json::from(parallel_ns)),
        ("identical", Json::from(identical)),
        ("ingest_bytes_per_sec", Json::from(ingest_bytes_per_sec)),
        ("records_per_sec", Json::from(records_per_sec)),
    ]);
    (doc, serial)
}

/// Phase 2: the pure fold, isolated from analysis cost.
fn bench_aggregation(summary: &FleetSummary) -> Json {
    let iters = 200usize;
    let started = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..iters {
        let folded: FleetAccumulator = summary.entries.iter().cloned().collect();
        let result = folded.finish(&summary.name);
        checksum = checksum.wrapping_add(result.records);
    }
    let elapsed = started.elapsed().as_nanos().max(1) as u64;
    let mean_ns = elapsed / iters as u64;
    eprintln!(
        "[aggregation] {iters} folds of {} entries: {mean_ns} ns/fold (checksum {checksum})",
        summary.entries.len()
    );
    Json::object([
        ("iters", Json::from(iters as u64)),
        ("entries", Json::from(summary.entries.len() as u64)),
        ("mean_fold_ns", Json::from(mean_ns.max(1))),
    ])
}

/// Phase 3: the result cache — one cold run filling a fresh cache, one
/// warm rerun replaying every entry from it without re-analysis.
fn bench_cache(manifest: &Path, corpus_bytes: u64) -> Json {
    let cache_dir = manifest
        .parent()
        .expect("manifest has a parent")
        .join("bench-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = || {
        let started = Instant::now();
        let summary = Corpus::open(manifest)
            .expect("open bench corpus")
            .session()
            .with_cache(&cache_dir)
            .run_all();
        (summary, started.elapsed().as_nanos().max(1) as u64)
    };
    let (cold, cold_ns) = run();
    let (warm, warm_ns) = run();
    assert_eq!(
        cold.to_json().to_pretty_string(),
        warm.to_json().to_pretty_string(),
        "warm cache summary diverged from the cold run"
    );
    let entries = cold.entries.len() as u64;
    assert_eq!(
        (warm.cache.hits, warm.cache.misses),
        (entries, 0),
        "a warm rerun must replay every entry from the cache"
    );
    let speedup = cold_ns as f64 / warm_ns as f64;
    let warm_bytes_per_sec = corpus_bytes as f64 / (warm_ns as f64 / 1e9);
    eprintln!(
        "[cache] cold {:.3}s, warm {:.3}s ({speedup:.1}x, {:.1} MB/s warm ingest, {} hits)",
        cold_ns as f64 / 1e9,
        warm_ns as f64 / 1e9,
        warm_bytes_per_sec / 1e6,
        warm.cache.hits,
    );
    Json::object([
        ("cold_ns", Json::from(cold_ns)),
        ("warm_ns", Json::from(warm_ns)),
        ("speedup", Json::from(speedup)),
        ("warm_hits", Json::from(warm.cache.hits)),
        ("warm_misses", Json::from(warm.cache.misses)),
        ("warm_bytes_per_sec", Json::from(warm_bytes_per_sec)),
    ])
}

/// Validates a previously written report's schema and invariants.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bwsa-bench-corpus/2" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let batch = doc.get("batch").ok_or("missing batch phase")?;
    let u = |node: &Json, field: &str| -> Result<u64, String> {
        node.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing {field}"))
    };
    if u(batch, "traces")? == 0 || u(batch, "records")? == 0 || u(batch, "corpus_bytes")? == 0 {
        return Err("batch phase analyzed nothing".into());
    }
    if u(batch, "serial_ns")? == 0 || u(batch, "parallel_ns")? == 0 {
        return Err("batch wall times must be positive".into());
    }
    if !matches!(batch.get("identical"), Some(Json::Bool(true))) {
        return Err("serial and parallel summaries must be byte-identical".into());
    }
    let ok_rate = matches!(
        batch.get("ingest_bytes_per_sec"),
        Some(Json::Float(r)) if *r > 0.0
    );
    if !ok_rate {
        return Err("batch.ingest_bytes_per_sec must be positive".into());
    }
    let aggregation = doc.get("aggregation").ok_or("missing aggregation phase")?;
    if u(aggregation, "mean_fold_ns")? == 0 {
        return Err("aggregation.mean_fold_ns must be positive".into());
    }
    if u(aggregation, "entries")? != u(batch, "traces")? {
        return Err("aggregation must fold exactly the batch's entries".into());
    }
    let cache = doc.get("cache").ok_or("missing cache phase")?;
    if u(cache, "cold_ns")? == 0 || u(cache, "warm_ns")? == 0 {
        return Err("cache wall times must be positive".into());
    }
    if u(cache, "warm_hits")? != u(batch, "traces")? || u(cache, "warm_misses")? != 0 {
        return Err("a warm rerun must replay every entry from the cache".into());
    }
    let warm_faster = matches!(
        cache.get("speedup"),
        Some(Json::Float(s)) if *s > 1.0
    );
    if !warm_faster {
        return Err("cache.speedup must exceed 1.0 (warm replay beats re-analysis)".into());
    }
    println!("{path}: ok");
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: corpus_bench [--traces N] [--jobs N] [--quick] \
                 [--out FILE] | --validate FILE"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if args.out.is_some() && cfg!(debug_assertions) {
        eprintln!(
            "error: refusing to write a benchmark report from a debug build; \
             rerun with --release"
        );
        std::process::exit(2);
    }
    let args = if args.quick {
        Args {
            traces: args.traces.min(4),
            ..args
        }
    } else {
        args
    };
    let dir = std::env::temp_dir().join(format!("bwsa-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (manifest, corpus_bytes) = build_corpus(&dir, args.traces, args.quick);
    eprintln!(
        "[corpus] {} traces, {} bytes on disk at {}",
        args.traces,
        corpus_bytes,
        dir.display()
    );
    let (batch, summary) = bench_batch(&args, &manifest, corpus_bytes);
    let aggregation = bench_aggregation(&summary);
    let cache = bench_cache(&manifest, corpus_bytes);
    let _ = std::fs::remove_dir_all(&dir);
    let doc = Json::object([
        ("schema", Json::from("bwsa-bench-corpus/2")),
        ("quick", Json::from(args.quick)),
        ("batch", batch),
        ("aggregation", aggregation),
        ("cache", cache),
    ]);
    let text = doc.to_pretty_string();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
