//! Ablation: the index cache of the paper's footnote 1.
//!
//! Branch allocation needs the compiler-assigned index at fetch time.
//! Instead of an ISA change, a small hardware cache can hold
//! `pc → allocated index` mappings, falling back to conventional pc
//! indexing on a miss. The footnote warns the cache must be sized
//! "carefully ... to avoid the original problem of contention, only this
//! time in the cache"; this sweep quantifies that.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_index_cache [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::analyze;
use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::allocation::AllocationConfig;
use bwsa_predictor::{simulate, BhtIndexer, CachedIndexPag, Pag};
use bwsa_workload::suite::{Benchmark, InputSet};

const ALLOC_TABLE: usize = 1024;

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[Benchmark::Compress, Benchmark::Li, Benchmark::M88ksim]);
    let cache_sizes = [64usize, 256, 1024, 4096];
    let runs = run_parallel_jobs(&benches, cli.jobs, |b| {
        (b, analyze(b, InputSet::A, cli.scale, cli.threshold()))
    });
    let mut rows = Vec::new();
    for (b, run) in &runs {
        let allocation = run
            .analysis
            .allocation(
                bwsa_core::Classified(true),
                ALLOC_TABLE,
                &AllocationConfig::default(),
            )
            .expect("valid table size");
        let conventional = simulate(&mut Pag::paper_baseline(), &run.trace).misprediction_rate();
        let pure = simulate(
            &mut Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index.clone())),
            &run.trace,
        )
        .misprediction_rate();
        for &slots in &cache_sizes {
            let mut cached = CachedIndexPag::paper(allocation.index.clone(), slots);
            let rate = simulate(&mut cached, &run.trace).misprediction_rate();
            rows.push(vec![
                b.name().to_owned(),
                slots.to_string(),
                format!("{:.1}%", cached.cache().hit_rate() * 100.0),
                pct(rate),
                pct(pure),
                pct(conventional),
            ]);
        }
    }
    println!("Ablation: index-cache size (allocation table = {ALLOC_TABLE} entries, footnote 1)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "icache slots",
                "icache hit",
                "cached alloc",
                "pure alloc (ISA)",
                "conventional"
            ],
            &rows
        )
    );
    println!(
        "\nExpected: a few hundred slots recover nearly all of the ISA-carried allocation benefit."
    );
}
