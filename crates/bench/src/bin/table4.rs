//! Regenerates **Table 4**: the BHT size required for branch allocation
//! *with branch classification* (two reserved entries for highly biased
//! branches) to beat a conventional 1024-entry BHT.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin table4 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, required_row, table34_runs};
use bwsa_bench::text::render_table;
use bwsa_bench::{paper, run_parallel_jobs, Cli};

fn main() {
    let cli = Cli::parse();
    let mut runs = table34_runs();
    if !cli.benchmarks.is_empty() {
        runs.retain(|(b, _)| cli.benchmarks.contains(b));
    }
    let rows = run_parallel_jobs(&runs, cli.jobs, |(b, s)| {
        let run = analyze(b, s, cli.scale, cli.threshold());
        (required_row(&run, true), required_row(&run, false))
    });
    println!(
        "Table 4: BHT size required for branch allocation with classification\n(baseline: conventional 1024-entry; entries include the 2 reserved biased entries)\n"
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(c, plain)| {
            vec![
                c.benchmark.clone(),
                c.required_size.to_string(),
                plain.required_size.to_string(),
                c.target_mass.to_string(),
                c.achieved_mass.to_string(),
                paper::lookup(&paper::TABLE4, &c.benchmark).map_or("-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "required (classified)",
                "required (plain)",
                "target mass",
                "achieved mass",
                "paper"
            ],
            &body
        )
    );
    let shrunk = rows
        .iter()
        .filter(|(c, p)| c.required_size <= p.required_size.max(3))
        .count();
    println!(
        "\nShape check: classification shrinks (or maintains) the requirement on {}/{} runs (paper: all).",
        shrunk,
        rows.len()
    );
}
