//! Runs **every** experiment (Tables 1–4, Figures 3–4) with a single
//! analysis pass per benchmark run — the efficient way to regenerate the
//! whole evaluation for EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin experiments_all \
//!     [--scale F] [--quick] [--bench NAME]... [--jobs N]
//! ```

use bwsa_bench::experiments::{
    analyze, figure_row, required_row, table1_row, table2_row, table34_runs, BenchRun,
};
use bwsa_bench::text::{f1, pct, render_table};
use bwsa_bench::{paper, run_parallel_jobs, Cli};
use bwsa_core::report::{FigureRow, RequiredSizeRow};
use bwsa_workload::suite::{Benchmark, InputSet};

struct FullRun {
    run: BenchRun,
    required_plain: RequiredSizeRow,
    required_classified: RequiredSizeRow,
    figure3: FigureRow,
    figure4: FigureRow,
}

fn main() {
    let cli = Cli::parse();
    let mut runs = table34_runs();
    if !cli.benchmarks.is_empty() {
        runs.retain(|(b, _)| cli.benchmarks.contains(b));
    }
    eprintln!(
        "analysing {} runs at scale {} (threshold {})...",
        runs.len(),
        cli.scale,
        cli.threshold()
    );
    let results = run_parallel_jobs(&runs, cli.jobs, |(b, s)| {
        let started = std::time::Instant::now();
        let run = analyze(b, s, cli.scale, cli.threshold());
        let required_plain = required_row(&run, false);
        let required_classified = required_row(&run, true);
        let figure3 = figure_row(&run, false);
        let figure4 = figure_row(&run, true);
        eprintln!(
            "  {} done in {:.1}s",
            figure3.benchmark,
            started.elapsed().as_secs_f64()
        );
        FullRun {
            run,
            required_plain,
            required_classified,
            figure3,
            figure4,
        }
    });

    // ---- Table 1 -------------------------------------------------------
    println!("## Table 1: dynamic branches analysed\n");
    let body: Vec<Vec<String>> = results
        .iter()
        .filter(|r| r.run.set == InputSet::A)
        .map(|r| {
            let t = table1_row(&r.run);
            vec![
                t.benchmark,
                t.input_set,
                t.total_dynamic.to_string(),
                t.analyzed_dynamic.to_string(),
                format!("{:.2}%", t.analyzed_percent),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "input set",
                "total dynamic",
                "analyzed",
                "% analyzed"
            ],
            &body
        )
    );

    // ---- Table 2 -------------------------------------------------------
    println!(
        "\n## Table 2: working set sizes (threshold {})\n",
        cli.threshold()
    );
    let body: Vec<Vec<String>> = results
        .iter()
        .filter(|r| r.run.set == InputSet::A && Benchmark::TABLE2.contains(&r.run.benchmark))
        .map(|r| {
            let t = table2_row(&r.run);
            let p = paper::TABLE2.iter().find(|(n, ..)| *n == t.benchmark);
            vec![
                t.benchmark.clone(),
                t.static_branches.to_string(),
                t.total_sets.to_string(),
                f1(t.avg_static_size),
                f1(t.avg_dynamic_size),
                t.max_size.to_string(),
                p.map_or("-".into(), |&(_, _, s, d)| format!("{s}/{d}")),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "static br",
                "sets",
                "avg static",
                "avg dynamic",
                "max",
                "paper st/dyn"
            ],
            &body
        )
    );

    // ---- Tables 3 and 4 --------------------------------------------------
    println!("\n## Tables 3 and 4: required BHT size (baseline: conventional 1024)\n");
    let body: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.required_plain.benchmark.clone(),
                r.required_plain.required_size.to_string(),
                paper::lookup(&paper::TABLE3, &r.required_plain.benchmark)
                    .map_or("-".into(), |v| v.to_string()),
                r.required_classified.required_size.to_string(),
                paper::lookup(&paper::TABLE4, &r.required_classified.benchmark)
                    .map_or("-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "T3 required",
                "T3 paper",
                "T4 required (classified)",
                "T4 paper"
            ],
            &body
        )
    );

    // ---- Figures 3 and 4 -------------------------------------------------
    for (title, pick) in [
        ("Figure 3: misprediction rates (no classification)", false),
        ("Figure 4: misprediction rates (with classification)", true),
    ] {
        println!("\n## {title}\n");
        let body: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let f = if pick { &r.figure4 } else { &r.figure3 };
                vec![
                    f.benchmark.clone(),
                    pct(f.alloc_16),
                    pct(f.alloc_128),
                    pct(f.alloc_1024),
                    pct(f.pag_1024),
                    pct(f.interference_free),
                    format!("{:+.1}%", f.alloc_1024_improvement() * 100.0),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &[
                    "benchmark",
                    "alloc-16",
                    "alloc-128",
                    "alloc-1024",
                    "PAg-1024",
                    "interf-free",
                    "gain"
                ],
                &body
            )
        );
    }

    // ---- Shape summary ---------------------------------------------------
    let n = results.len().max(1);
    let t3_below = results
        .iter()
        .filter(|r| r.required_plain.required_size < 1024)
        .count();
    let t4_shrinks = results
        .iter()
        .filter(|r| r.required_classified.required_size <= r.required_plain.required_size.max(3))
        .count();
    let f4_wins_128 = results
        .iter()
        .filter(|r| r.figure4.alloc_128 <= r.figure4.pag_1024 + 0.001)
        .count();
    let f4_near_free = results
        .iter()
        .filter(|r| r.figure4.alloc_1024 <= r.figure4.interference_free * 1.10 + 1e-9)
        .count();
    let mean_gain: f64 = results
        .iter()
        .map(|r| r.figure4.alloc_1024_improvement())
        .sum::<f64>()
        / n as f64;
    println!("\n## Shape summary\n");
    println!("  Table 3: required < 1024 on {t3_below}/{n} runs (paper: all)");
    println!("  Table 4: classification shrinks/maintains requirement on {t4_shrinks}/{n} runs (paper: all)");
    println!("  Figure 4: alloc-128 beats/ties (within 0.1pp) PAg-1024 on {f4_wins_128}/{n} runs (paper: all but gcc)");
    println!("  Figure 4: alloc-1024 within 10% of interference-free on {f4_near_free}/{n} runs (paper: all)");
    println!(
        "  Figure 4: mean relative gain of alloc-1024 over PAg-1024: {:.1}% (paper: ~{:.0}%)",
        mean_gain * 100.0,
        paper::HEADLINE_IMPROVEMENT * 100.0
    );
}
