//! Regenerates **Table 2**: the sizes of branch working sets.
//!
//! Prints measured values next to the paper's published ones. Absolute
//! counts differ (scaled synthetic workloads); the shape claim is that
//! working sets stay small relative to the static branch population.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin table2 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, table2_row};
use bwsa_bench::text::{f1, render_table};
use bwsa_bench::{paper, run_parallel_jobs, Cli};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&Benchmark::TABLE2);
    let rows = run_parallel_jobs(&benches, cli.jobs, |b| {
        let run = analyze(b, InputSet::A, cli.scale, cli.threshold());
        table2_row(&run)
    });
    println!(
        "Table 2: the sizes of branch working sets (threshold {})\n",
        cli.threshold()
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper_row = paper::TABLE2.iter().find(|(n, ..)| *n == r.benchmark);
            vec![
                r.benchmark.clone(),
                r.static_branches.to_string(),
                r.total_sets.to_string(),
                f1(r.avg_static_size),
                f1(r.avg_dynamic_size),
                r.max_size.to_string(),
                paper_row.map_or("-".into(), |(_, s, ..)| s.to_string()),
                paper_row.map_or("-".into(), |&(_, _, s, _)| s.to_string()),
                paper_row.map_or("-".into(), |&(_, _, _, d)| d.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "static br",
                "sets",
                "avg static",
                "avg dynamic",
                "max",
                "paper sets",
                "paper static",
                "paper dynamic",
            ],
            &body
        )
    );
    println!("\nShape check: every avg working set is small relative to the static population.");
    for r in &rows {
        let frac = r.avg_static_size / r.static_branches.max(1) as f64;
        println!(
            "  {:<10} avg set = {:>6.1} of {:>6} static branches ({:.1}%)",
            r.benchmark,
            r.avg_static_size,
            r.static_branches,
            frac * 100.0
        );
    }
}
