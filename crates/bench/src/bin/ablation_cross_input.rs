//! Ablation: profile-input sensitivity and cumulative profiles (§5.2).
//!
//! Profiles an allocation on one input and evaluates it on another:
//!
//! * `self` — profile A, evaluate A (the Figures 3–4 methodology);
//! * `cross` — profile A, evaluate B: the paper's warning that a profile
//!   "will not be effective when input data for actual run of a program
//!   exercises different segments of the code";
//! * `cumulative` — merge the conflict graphs of A *and* B, allocate on
//!   the union, evaluate B: the paper's proposed fix.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_cross_input [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, cross_input_rate};
use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::allocation::{allocate, AllocationConfig};
use bwsa_core::merge::CumulativeProfile;
use bwsa_predictor::{simulate, Pag};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[Benchmark::Perl, Benchmark::Ss, Benchmark::Compress]);
    const TABLE: usize = 128;
    let rows = run_parallel_jobs(&benches, cli.jobs, |b| {
        let cfg = AllocationConfig::default();
        let run_a = analyze(b, InputSet::A, cli.scale, cli.threshold());
        let run_b = analyze(b, InputSet::B, cli.scale, cli.threshold());
        let alloc_a = run_a
            .analysis
            .allocation(bwsa_core::Classified(false), TABLE, &cfg)
            .expect("valid table size");

        let self_rate = {
            let mut pag = Pag::paper_with_indexer(bwsa_predictor::BhtIndexer::Allocated(
                alloc_a.index.clone(),
            ));
            simulate(&mut pag, &run_a.trace).misprediction_rate()
        };
        let cross_rate = cross_input_rate(&alloc_a.index, run_a.trace.table(), &run_b.trace);

        // Cumulative: merge both inputs' conflict graphs, allocate over
        // the union id space, evaluate on B.
        let mut cumulative = CumulativeProfile::new();
        cumulative.add_trace(&run_a.trace);
        cumulative.add_trace(&run_b.trace);
        let merged = cumulative.conflict_analysis(run_a.analysis.conflict.config);
        let alloc_union = allocate(&merged.graph, TABLE, &cfg);
        let cumulative_rate =
            cross_input_rate(&alloc_union.index, cumulative.table(), &run_b.trace);

        // Conventional baseline on B for reference.
        let conv_b = simulate(&mut Pag::paper_baseline(), &run_b.trace).misprediction_rate();

        vec![
            b.name().to_owned(),
            pct(self_rate),
            pct(cross_rate),
            pct(cumulative_rate),
            pct(conv_b),
        ]
    });
    println!(
        "Ablation: profile-input sensitivity (allocation table = {TABLE} entries, eval on input B)\n"
    );
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "self (A→A)",
                "cross (A→B)",
                "cumulative (A+B→B)",
                "PAg-1024 on B"
            ],
            &rows
        )
    );
    println!("\nExpected: cumulative ≤ cross (merged profiles recover coverage, §5.2).");
}
