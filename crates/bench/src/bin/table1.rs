//! Regenerates **Table 1**: benchmarks, input sets, and the percentage of
//! dynamic branches analysed after frequency-filtering static branches.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin table1 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, table1_row};
use bwsa_bench::text::render_table;
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&Benchmark::ALL);
    let rows = run_parallel_jobs(&benches, cli.jobs, |b| {
        let run = analyze(b, InputSet::A, cli.scale, cli.threshold());
        table1_row(&run)
    });
    println!("Table 1: benchmarks, input sets, and dynamic branches analysed");
    println!(
        "(scale {} => frequency filter keeps branches with >= {} executions)\n",
        cli.scale,
        ((20.0 * cli.scale).round() as u64).max(2)
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.input_set.clone(),
                r.total_dynamic.to_string(),
                r.analyzed_dynamic.to_string(),
                format!("{:.2}%", r.analyzed_percent),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "input set",
                "total dynamic",
                "analyzed",
                "% analyzed"
            ],
            &body
        )
    );
}
