//! Prints workload-characterisation statistics for the benchmark suite:
//! branch density, re-execution distances (the temporal locality the
//! working-set analysis feeds on), and taken-rate distribution (what
//! classification can harvest).
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin trace_stats [--scale F] [--quick]
//! ```

use bwsa_bench::text::render_table;
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_trace::stats::trace_stats;
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&Benchmark::ALL);
    let rows = run_parallel_jobs(&benches, cli.jobs, |b| {
        let trace = b.generate_scaled(InputSet::A, cli.scale);
        let s = trace_stats(&trace);
        let dist = s.reexecution_distance;
        let biased = s.taken_rate_deciles[0] + s.taken_rate_deciles[9];
        let total: usize = s.taken_rate_deciles.iter().sum();
        vec![
            b.name().to_owned(),
            trace.len().to_string(),
            trace.static_branch_count().to_string(),
            format!("{:.3}", s.branch_density),
            format!("{:.2}%", s.dynamic_taken_rate * 100.0),
            dist.map_or("-".into(), |d| d.median.to_string()),
            dist.map_or("-".into(), |d| format!("{:.0}", d.mean)),
            format!("{:.0}%", 100.0 * biased as f64 / total.max(1) as f64),
        ]
    });
    println!("Workload characterisation (input A)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "dynamic br",
                "static br",
                "br/instr",
                "taken rate",
                "reexec median",
                "reexec mean",
                "extreme-decile br"
            ],
            &rows
        )
    );
    println!("\n(~1 conditional branch per 16 instructions; extreme deciles feed classification)");
}
