//! Ablation: phase-schedule model — i.i.d. region draws vs. a Markov
//! walk with sticky phases.
//!
//! The working-set claims should be robust to *how* the program moves
//! between phases; what changes is the switch rate, and with it the
//! sub-threshold interference that small allocated tables absorb. The
//! Markov walk (longer dwell times) should therefore help the small
//! allocated tables most.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_schedule [--scale F] [--quick]
//! ```

use bwsa_bench::text::{f1, pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::allocation::AllocationConfig;
use bwsa_core::conflict::ConflictConfig;
use bwsa_core::pipeline::AnalysisPipeline;
use bwsa_predictor::{simulate, BhtIndexer, Pag};
use bwsa_trace::profile::FrequencyFilter;
use bwsa_workload::spec::ScheduleModel;
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[Benchmark::Compress, Benchmark::Perl, Benchmark::M88ksim]);
    let models: [(&str, ScheduleModel); 3] = [
        ("iid", ScheduleModel::Iid),
        ("markov-0.5", ScheduleModel::Markov { self_loop: 0.5 }),
        ("markov-0.9", ScheduleModel::Markov { self_loop: 0.9 }),
    ];
    let work: Vec<(Benchmark, usize)> = benches
        .iter()
        .flat_map(|&b| (0..models.len()).map(move |m| (b, m)))
        .collect();
    let rows = run_parallel_jobs(&work, cli.jobs, |(b, m)| {
        let (label, model) = models[m];
        let mut spec = b.spec();
        spec.schedule = model;
        spec.target_dynamic_branches =
            ((spec.target_dynamic_branches as f64 * cli.scale).ceil() as u64).max(1);
        let workload = spec.instantiate().expect("suite specs stay valid");
        let raw = workload.trace(&b.input(InputSet::A));
        let (trace, _) = FrequencyFilter::MinExecutions(2).filter_trace(&raw);
        let pipeline = AnalysisPipeline {
            conflict: ConflictConfig::with_threshold(cli.threshold()).expect("threshold >= 1"),
            ..AnalysisPipeline::new()
        };
        let analysis = pipeline.run_observed(&trace, &bwsa_obs::Obs::noop());
        let alloc = bwsa_core::allocation::allocate_classified(
            &analysis.conflict.graph,
            &analysis.classification,
            128,
            &AllocationConfig::default(),
        );
        let alloc_rate = simulate(
            &mut Pag::paper_with_indexer(BhtIndexer::Allocated(alloc.index)),
            &trace,
        )
        .misprediction_rate();
        let conv_rate = simulate(&mut Pag::paper_baseline(), &trace).misprediction_rate();
        vec![
            b.name().to_owned(),
            label.to_owned(),
            analysis.working_sets.report.total_sets.to_string(),
            f1(analysis.working_sets.report.avg_dynamic_size),
            pct(alloc_rate),
            pct(conv_rate),
        ]
    });
    println!("Ablation: phase schedule model (allocation table = 128, classified)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "schedule",
                "sets",
                "avg dynamic WS",
                "alloc-128",
                "PAg-1024"
            ],
            &rows
        )
    );
    println!(
        "\nExpected: working-set sizes stable across models; sticky schedules favor alloc-128."
    );
}
