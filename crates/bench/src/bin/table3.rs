//! Regenerates **Table 3**: the BHT size required for branch allocation
//! (without classification) to reduce table conflicts below a
//! conventional 1024-entry pc-indexed BHT.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin table3 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, required_row, table34_runs};
use bwsa_bench::text::render_table;
use bwsa_bench::{paper, run_parallel_jobs, Cli};

fn main() {
    let cli = Cli::parse();
    let mut runs = table34_runs();
    if !cli.benchmarks.is_empty() {
        runs.retain(|(b, _)| cli.benchmarks.contains(b));
    }
    let rows = run_parallel_jobs(&runs, cli.jobs, |(b, s)| {
        let run = analyze(b, s, cli.scale, cli.threshold());
        required_row(&run, false)
    });
    println!(
        "Table 3: BHT size required for branch allocation (baseline: conventional 1024-entry)\n"
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.required_size.to_string(),
                r.target_mass.to_string(),
                r.achieved_mass.to_string(),
                paper::lookup(&paper::TABLE3, &r.benchmark).map_or("-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "required BHT",
                "target mass",
                "achieved mass",
                "paper"
            ],
            &body
        )
    );
    let below = rows.iter().filter(|r| r.required_size < 1024).count();
    println!(
        "\nShape check: {}/{} runs need fewer than 1024 entries (paper: all).",
        below,
        rows.len()
    );
}
