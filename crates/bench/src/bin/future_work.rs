//! The paper's future-work question, answered: **are clustered branch
//! mispredictions caused by changes in working set?**
//!
//! Method: cut each trace into fixed windows of dynamic branches; compute
//! (a) each window's instantaneous working set and the Jaccard-based
//! phase transitions, and (b) the conventional PAg's mispredictions per
//! window. Compare misprediction rates in transition windows versus
//! stable windows and report the Fano factor of the miss process.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin future_work [--scale F] [--quick]
//! ```

use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::phases::PhaseTimeline;
use bwsa_predictor::clustering::{clustering_stats, misprediction_flags};
use bwsa_predictor::Pag;
use bwsa_workload::suite::{Benchmark, InputSet};

const WINDOW: usize = 1000;
const JACCARD_THRESHOLD: f64 = 0.5;

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[
        Benchmark::Compress,
        Benchmark::Perl,
        Benchmark::M88ksim,
        Benchmark::Li,
    ]);
    let rows = run_parallel_jobs(&benches, cli.jobs, |b| {
        let trace = b.generate_scaled(InputSet::A, cli.scale);
        let timeline = PhaseTimeline::of_trace(&trace, WINDOW);
        let transitions: std::collections::HashSet<usize> = timeline
            .transitions(JACCARD_THRESHOLD)
            .into_iter()
            .collect();

        let flags = misprediction_flags(&mut Pag::paper_baseline(), &trace);
        let stats = clustering_stats(&flags, WINDOW);

        // Misprediction rate in transition windows vs stable windows.
        let mut trans_miss = 0usize;
        let mut trans_total = 0usize;
        let mut stable_miss = 0usize;
        let mut stable_total = 0usize;
        for (i, chunk) in flags.chunks_exact(WINDOW).enumerate() {
            let misses = chunk.iter().filter(|&&f| f).count();
            if transitions.contains(&i) {
                trans_miss += misses;
                trans_total += WINDOW;
            } else {
                stable_miss += misses;
                stable_total += WINDOW;
            }
        }
        let trans_rate = trans_miss as f64 / trans_total.max(1) as f64;
        let stable_rate = stable_miss as f64 / stable_total.max(1) as f64;

        vec![
            b.name().to_owned(),
            timeline.windows.len().to_string(),
            transitions.len().to_string(),
            format!("{:.1}", timeline.mean_working_set_size()),
            pct(trans_rate),
            pct(stable_rate),
            format!("{:.2}x", trans_rate / stable_rate.max(1e-12)),
            format!("{:.2}", stats.fano_factor),
            format!("{:.2}", stats.mean_run_length),
        ]
    });
    println!(
        "Future work: do working-set changes cause misprediction clusters?\n(window = {WINDOW} branches, transition = Jaccard < {JACCARD_THRESHOLD}, predictor = conventional PAg-1024)\n"
    );
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "windows",
                "transitions",
                "mean WS size",
                "miss@transition",
                "miss@stable",
                "ratio",
                "fano",
                "mean run"
            ],
            &rows
        )
    );
    println!(
        "\nExpected: ratio > 1 (transition windows mispredict more) and Fano > 1 (misses cluster)."
    );
}
