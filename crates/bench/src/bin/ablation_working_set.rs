//! Ablation: working-set definition — greedy clique *partition* versus
//! capped maximal-clique *enumeration*.
//!
//! The paper's prose describes a partition while its Table 2 counts imply
//! enumeration (see DESIGN.md); this binary quantifies how much the two
//! readings differ on the same conflict graphs.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_working_set [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::analyze_with_definition;
use bwsa_bench::text::{f1, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::WorkingSetDefinition;
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[
        Benchmark::Compress,
        Benchmark::Ijpeg,
        Benchmark::Perl,
        Benchmark::Pgp,
    ]);
    let defs: [(&str, WorkingSetDefinition); 2] = [
        ("partition", WorkingSetDefinition::Partition),
        (
            "max-cliques",
            WorkingSetDefinition::MaximalCliques { cap: 200_000 },
        ),
    ];
    let work: Vec<(Benchmark, usize)> = benches
        .iter()
        .flat_map(|&b| (0..defs.len()).map(move |d| (b, d)))
        .collect();
    let rows = run_parallel_jobs(&work, cli.jobs, |(b, d)| {
        let (label, def) = defs[d];
        let run = analyze_with_definition(b, InputSet::A, cli.scale, cli.threshold(), def);
        let r = &run.analysis.working_sets.report;
        vec![
            b.name().to_owned(),
            label.to_owned(),
            r.total_sets.to_string(),
            f1(r.avg_static_size),
            f1(r.avg_dynamic_size),
            r.max_size.to_string(),
            if r.truncated { "yes" } else { "no" }.to_owned(),
        ]
    });
    println!("Ablation: working-set definition (partition vs maximal cliques)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "definition",
                "sets",
                "avg static",
                "avg dynamic",
                "max",
                "truncated"
            ],
            &rows
        )
    );
    println!("\nEnumeration can only find more (overlapping) sets; per-set sizes stay comparable.");
}
