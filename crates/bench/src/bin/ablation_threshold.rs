//! Ablation: the conflict-graph edge threshold (§4.2).
//!
//! The paper picks 100 and reports that "other threshold values such as
//! 500 or 1000 show no significant difference on the results". This
//! binary sweeps the threshold and prints the working-set statistics and
//! the required BHT size at each value. Thresholds are scaled with
//! `--scale` like everything else.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_threshold [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, required_row, table2_row};
use bwsa_bench::text::{f1, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[
        Benchmark::Compress,
        Benchmark::Perl,
        Benchmark::Pgp,
        Benchmark::M88ksim,
    ]);
    // The paper's sweep, scaled: 100, 500, 1000 at scale 1.
    let base = cli.threshold();
    let factors = [1u64, 5, 10];
    let work: Vec<(Benchmark, u64)> = benches
        .iter()
        .flat_map(|&b| factors.iter().map(move |&f| (b, (base * f).max(2))))
        .collect();
    let rows = run_parallel_jobs(&work, cli.jobs, |(b, threshold)| {
        let run = analyze(b, InputSet::A, cli.scale, threshold);
        let t2 = table2_row(&run);
        let req = required_row(&run, false);
        vec![
            b.name().to_owned(),
            threshold.to_string(),
            t2.total_sets.to_string(),
            f1(t2.avg_static_size),
            f1(t2.avg_dynamic_size),
            req.required_size.to_string(),
        ]
    });
    println!("Ablation: conflict threshold sweep (paper: 100 vs 500 vs 1000 — no significant difference)\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "threshold",
                "sets",
                "avg static",
                "avg dynamic",
                "required BHT"
            ],
            &rows
        )
    );
}
