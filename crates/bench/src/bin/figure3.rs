//! Regenerates **Figure 3**: misprediction rates of the branch-allocation
//! PAg (16/128/1024-entry BHT, no classification) against the
//! conventional 1024-entry PAg and the interference-free PAg. All use a
//! 4096-entry PHT (12 history bits).
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin figure3 [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::{analyze, figure_row, table34_runs};
use bwsa_bench::text::{pct, render_table};
use bwsa_bench::{run_parallel_jobs, Cli};

fn main() {
    let cli = Cli::parse();
    let mut runs = table34_runs();
    if !cli.benchmarks.is_empty() {
        runs.retain(|(b, _)| cli.benchmarks.contains(b));
    }
    let rows = run_parallel_jobs(&runs, cli.jobs, |(b, s)| {
        let run = analyze(b, s, cli.scale, cli.threshold());
        figure_row(&run, false)
    });
    println!("Figure 3: misprediction rates, branch allocation WITHOUT classification\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.alloc_16),
                pct(r.alloc_128),
                pct(r.alloc_1024),
                pct(r.pag_1024),
                pct(r.interference_free),
                format!("{:+.1}%", r.alloc_1024_improvement() * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "alloc-16",
                "alloc-128",
                "alloc-1024",
                "PAg-1024",
                "interf-free",
                "alloc1024 gain"
            ],
            &body
        )
    );
    let wins = rows.iter().filter(|r| r.alloc_1024 <= r.pag_1024).count();
    let mean_gain: f64 =
        rows.iter().map(|r| r.alloc_1024_improvement()).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\nShape check: alloc-1024 beats/ties PAg-1024 on {}/{} runs; mean relative gain {:.1}%.",
        wins,
        rows.len(),
        mean_gain * 100.0
    );
}
