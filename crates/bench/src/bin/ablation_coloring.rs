//! Ablation: merge-candidate ordering in the allocation coloring.
//!
//! The paper merges "the branches with the fewest conflicts" when a
//! working set overflows the table. This binary compares that choice
//! (min weighted degree) against min unweighted degree and against a
//! deliberately bad max-weighted-degree order, reporting the required BHT
//! size and the residual mass at 128 entries.
//!
//! ```text
//! cargo run --release -p bwsa-bench --bin ablation_coloring [--scale F] [--quick]
//! ```

use bwsa_bench::experiments::analyze;
use bwsa_bench::text::render_table;
use bwsa_bench::{run_parallel_jobs, Cli};
use bwsa_core::allocation::{allocate, required_bht_size, AllocationConfig};
use bwsa_graph::coloring::{ColoringOptions, MergeOrder};
use bwsa_workload::suite::{Benchmark, InputSet};

fn main() {
    let cli = Cli::parse();
    let benches = cli.benchmarks_or(&[Benchmark::Li, Benchmark::M88ksim, Benchmark::Plot]);
    let orders = [
        ("min-weighted (paper)", MergeOrder::MinWeightedDegree),
        ("min-degree", MergeOrder::MinDegree),
        ("max-weighted (bad)", MergeOrder::MaxWeightedDegree),
    ];
    let runs = run_parallel_jobs(&benches, cli.jobs, |b| {
        (b, analyze(b, InputSet::A, cli.scale, cli.threshold()))
    });
    let mut rows = Vec::new();
    for (b, run) in &runs {
        for (label, order) in orders {
            let cfg = AllocationConfig {
                coloring: ColoringOptions { merge_order: order },
            };
            let req =
                required_bht_size(&run.analysis.conflict.graph, run.trace.table(), 1024, &cfg);
            let at128 = allocate(&run.analysis.conflict.graph, 128, &cfg);
            rows.push(vec![
                b.name().to_owned(),
                label.to_owned(),
                req.size.to_string(),
                at128.conflict_mass.to_string(),
                at128.conflicting_pairs.to_string(),
            ]);
        }
    }
    println!("Ablation: merge-candidate order in allocation coloring\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "merge order",
                "required BHT",
                "mass@128",
                "pairs@128"
            ],
            &rows
        )
    );
}
