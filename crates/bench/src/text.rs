//! Fixed-width text-table rendering for experiment output.

/// Renders a table with a header row, a separator, and the body rows.
/// Columns are left-aligned and padded to the widest cell.
///
/// # Example
///
/// ```
/// use bwsa_bench::text::render_table;
///
/// let s = render_table(
///     &["bench", "rate"],
///     &[vec!["gcc".into(), "0.10".into()]],
/// );
/// assert!(s.contains("bench"));
/// assert!(s.contains("gcc"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.push_str(&" ".repeat(w - cell.len()));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a misprediction rate as a percentage with two decimals.
pub fn pct(rate: f64) -> String {
    format!("{:.2}%", rate * 100.0)
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let s = render_table(
            &["a", "bbbb"],
            &[
                vec!["xxxxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every body row.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_rows_panic() {
        render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f1(3.24), "3.2");
    }
}
