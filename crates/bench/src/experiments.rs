//! The experiment implementations behind every table and figure binary.

use bwsa_core::allocation::AllocationConfig;
use bwsa_core::conflict::ConflictConfig;
use bwsa_core::pipeline::{Analysis, AnalysisPipeline};
use bwsa_core::report::{FigureRow, RequiredSizeRow, Table1Row, Table2Row};
use bwsa_core::{Classified, WorkingSetDefinition};
use bwsa_predictor::{simulate, BhtIndexer, Pag};
use bwsa_trace::profile::{FilterOutcome, FrequencyFilter};
use bwsa_trace::Trace;
use bwsa_workload::suite::{Benchmark, InputSet};

/// A fully analysed benchmark run: the (frequency-filtered) trace, the
/// Table 1 coverage accounting, and the complete analysis.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Which input set.
    pub set: InputSet,
    /// Scale the trace was generated at.
    pub scale: f64,
    /// The frequency-filtered trace all analyses and simulations use.
    pub trace: Trace,
    /// Coverage accounting of the frequency filter (Table 1).
    pub filter: FilterOutcome,
    /// The full working-set / classification analysis.
    pub analysis: Analysis,
}

/// Label used in Tables 3–4 (`perl_a`, `ss_b`, plain name otherwise).
pub fn run_label(benchmark: Benchmark, set: InputSet) -> String {
    match benchmark {
        Benchmark::Perl | Benchmark::Ss => format!("{}_{}", benchmark.name(), set.suffix()),
        _ => benchmark.name().to_owned(),
    }
}

/// Generates, filters, and analyses one benchmark run.
///
/// The paper reduces each benchmark to its frequently executed static
/// branches (Table 1); we drop branches executed fewer than `20 × scale`
/// times (floor 2), then run the default pipeline with the scale-adjusted
/// `threshold`.
pub fn analyze(benchmark: Benchmark, set: InputSet, scale: f64, threshold: u64) -> BenchRun {
    let raw = benchmark.generate_scaled(set, scale);
    let min_execs = ((20.0 * scale).round() as u64).max(2);
    let (trace, filter) = FrequencyFilter::MinExecutions(min_execs).filter_trace(&raw);
    let pipeline = AnalysisPipeline {
        conflict: ConflictConfig::with_threshold(threshold).expect("threshold >= 1"),
        ..AnalysisPipeline::new()
    };
    let analysis = pipeline.run_observed(&trace, &bwsa_obs::Obs::noop());
    BenchRun {
        benchmark,
        set,
        scale,
        trace,
        filter,
        analysis,
    }
}

/// Like [`analyze`] but with an explicit working-set definition (used by
/// the working-set ablation).
pub fn analyze_with_definition(
    benchmark: Benchmark,
    set: InputSet,
    scale: f64,
    threshold: u64,
    definition: WorkingSetDefinition,
) -> BenchRun {
    let mut run = analyze(benchmark, set, scale, threshold);
    run.analysis.working_sets = bwsa_core::working_sets(
        &run.analysis.conflict.graph,
        &run.analysis.profile,
        definition,
    );
    run
}

/// The Table 1 row of a run.
pub fn table1_row(run: &BenchRun) -> Table1Row {
    Table1Row {
        benchmark: run.benchmark.name().to_owned(),
        input_set: run.benchmark.input_name(run.set).to_owned(),
        total_dynamic: run.filter.total_dynamic,
        analyzed_dynamic: run.filter.analyzed_dynamic,
        analyzed_percent: run.filter.analyzed_percent(),
    }
}

/// The Table 2 row of a run.
pub fn table2_row(run: &BenchRun) -> Table2Row {
    let r = &run.analysis.working_sets.report;
    Table2Row {
        benchmark: run.benchmark.name().to_owned(),
        static_branches: run.trace.static_branch_count(),
        total_sets: r.total_sets,
        avg_static_size: r.avg_static_size,
        avg_dynamic_size: r.avg_dynamic_size,
        max_size: r.max_size,
    }
}

/// The baseline BHT size the required-size experiments compare against.
pub const BASELINE_BHT: usize = 1024;

/// One Table 3 (`classified = false`) or Table 4 (`classified = true`)
/// row.
pub fn required_row(run: &BenchRun, classified: bool) -> RequiredSizeRow {
    let cfg = AllocationConfig::default();
    let r = run
        .analysis
        .required_size(Classified(classified), &run.trace, BASELINE_BHT, &cfg)
        .expect("positive baseline");
    RequiredSizeRow {
        benchmark: run_label(run.benchmark, run.set),
        classified,
        baseline_size: BASELINE_BHT,
        target_mass: r.target_mass,
        required_size: r.size,
        achieved_mass: r.achieved_mass,
    }
}

/// The BHT sizes Figure 3/4 sweeps for the allocation-indexed PAg.
pub const FIGURE_ALLOC_SIZES: [usize; 3] = [16, 128, 1024];

/// Simulates one allocation-indexed PAg at `table_size`.
pub fn alloc_rate(run: &BenchRun, table_size: usize, classified: bool) -> f64 {
    let cfg = AllocationConfig::default();
    let allocation = run
        .analysis
        .allocation(Classified(classified), table_size, &cfg)
        .expect("valid table size");
    let mut pag = Pag::paper_with_indexer(BhtIndexer::Allocated(allocation.index));
    simulate(&mut pag, &run.trace).misprediction_rate()
}

/// One Figure 3 (`classified = false`) or Figure 4 (`classified = true`)
/// bar group: all five schemes on this run's trace.
pub fn figure_row(run: &BenchRun, classified: bool) -> FigureRow {
    let [a16, a128, a1024] = FIGURE_ALLOC_SIZES.map(|size| alloc_rate(run, size, classified));
    let pag_1024 = simulate(&mut Pag::paper_baseline(), &run.trace).misprediction_rate();
    let interference_free =
        simulate(&mut Pag::interference_free(), &run.trace).misprediction_rate();
    FigureRow {
        benchmark: run_label(run.benchmark, run.set),
        classified,
        alloc_16: a16,
        alloc_128: a128,
        alloc_1024: a1024,
        pag_1024,
        interference_free,
    }
}

/// Translates an allocation computed over one trace's branch-id space
/// into another trace's id space, matching branches by pc.
///
/// Branches of the target trace that the profiling trace never saw get no
/// entry and fall back to conventional pc-modulo indexing — exactly the
/// paper's caveat that "branches in library routines [un-annotated code]
/// will not be affected by the allocation technique".
pub fn remap_allocation(
    allocation: &bwsa_predictor::AllocatedIndex,
    profiled: &bwsa_trace::BranchTable,
    target: &bwsa_trace::BranchTable,
) -> bwsa_predictor::AllocatedIndex {
    let entries = target
        .iter()
        .map(|(_, pc)| profiled.id_of(pc).and_then(|id| allocation.entry(id)))
        .collect();
    bwsa_predictor::AllocatedIndex::new(allocation.table_size(), entries)
        .expect("entries copied from a valid allocation")
}

/// Misprediction rate of an allocation-indexed PAg evaluated on a trace
/// whose id space may differ from the profiling trace's.
pub fn cross_input_rate(
    allocation: &bwsa_predictor::AllocatedIndex,
    profiled: &bwsa_trace::BranchTable,
    eval: &Trace,
) -> f64 {
    let remapped = remap_allocation(allocation, profiled, eval.table());
    let mut pag = Pag::paper_with_indexer(BhtIndexer::Allocated(remapped));
    simulate(&mut pag, eval).misprediction_rate()
}

/// The benchmark/input pairs of Tables 3–4 and Figures 3–4: every
/// benchmark's input A plus the B inputs of `perl` and `ss`.
pub fn table34_runs() -> Vec<(Benchmark, InputSet)> {
    let mut runs: Vec<(Benchmark, InputSet)> =
        Benchmark::ALL.iter().map(|&b| (b, InputSet::A)).collect();
    runs.push((Benchmark::Perl, InputSet::B));
    runs.push((Benchmark::Ss, InputSet::B));
    runs.sort_by_key(|&(b, s)| run_label(b, s));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_run() -> BenchRun {
        analyze(Benchmark::Compress, InputSet::A, 0.02, 3)
    }

    #[test]
    fn analyze_produces_consistent_artifacts() {
        let run = tiny_run();
        assert!(!run.trace.is_empty());
        assert_eq!(run.analysis.profile.total_dynamic(), run.trace.len() as u64);
        assert_eq!(
            run.analysis.conflict.graph.node_count(),
            run.trace.static_branch_count()
        );
        assert!(run.filter.analyzed_percent() > 90.0);
    }

    #[test]
    fn table_rows_are_populated() {
        let run = tiny_run();
        let t1 = table1_row(&run);
        assert_eq!(t1.benchmark, "compress");
        assert!(t1.analyzed_dynamic <= t1.total_dynamic);
        let t2 = table2_row(&run);
        assert!(t2.total_sets > 0);
        assert!(t2.avg_static_size >= 1.0);
    }

    #[test]
    fn required_rows_beat_their_targets() {
        let run = tiny_run();
        for classified in [false, true] {
            let row = required_row(&run, classified);
            assert!(row.achieved_mass <= row.target_mass || row.required_size <= 3);
            assert!(row.required_size <= run.trace.static_branch_count() + 3);
        }
    }

    #[test]
    fn figure_row_rates_are_sane() {
        let run = tiny_run();
        let row = figure_row(&run, false);
        for rate in [
            row.alloc_16,
            row.alloc_128,
            row.alloc_1024,
            row.pag_1024,
            row.interference_free,
        ] {
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn labels_distinguish_multi_input_benchmarks() {
        assert_eq!(run_label(Benchmark::Perl, InputSet::A), "perl_a");
        assert_eq!(run_label(Benchmark::Ss, InputSet::B), "ss_b");
        assert_eq!(run_label(Benchmark::Gcc, InputSet::A), "gcc");
    }

    #[test]
    fn table34_runs_cover_all_benchmarks_plus_b_inputs() {
        let runs = table34_runs();
        assert_eq!(runs.len(), 15);
        assert!(runs.contains(&(Benchmark::Perl, InputSet::B)));
        assert!(runs.contains(&(Benchmark::Ss, InputSet::B)));
    }
}
