//! The two tables of a two-level predictor: the branch history table
//! (first level) and the pattern history table (second level).

use crate::{HistoryRegister, PredictorError, SaturatingCounter};
use bwsa_trace::Direction;
use serde::{Deserialize, Serialize};

/// First-level table: one [`HistoryRegister`] per entry.
///
/// A [`crate::BhtIndexer`] decides which entry a branch uses; a
/// "per-branch" indexer makes the table grow on demand, modelling the
/// paper's interference-free 2M-entry BHT without allocating two million
/// registers up front.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchHistoryTable {
    entries: Vec<HistoryRegister>,
    width: u32,
    growable: bool,
}

impl BranchHistoryTable {
    /// Creates a fixed-size table of `size` history registers of
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `width` is outside `1..=63`.
    pub fn new(size: usize, width: u32) -> Self {
        assert!(size > 0, "BHT size must be positive");
        BranchHistoryTable {
            entries: vec![HistoryRegister::new(width); size],
            width,
            growable: false,
        }
    }

    /// Creates an empty table that grows to whatever index is touched —
    /// the interference-free configuration.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=63`.
    pub fn growable(width: u32) -> Self {
        // Validate width eagerly.
        let _probe = HistoryRegister::new(width);
        BranchHistoryTable {
            entries: Vec::new(),
            width,
            growable: true,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table currently has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// History register width.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn ensure(&mut self, index: usize) {
        if self.growable && index >= self.entries.len() {
            self.entries
                .resize(index + 1, HistoryRegister::new(self.width));
        }
    }

    /// Reads the history value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for a fixed-size table.
    pub fn history(&mut self, index: usize) -> u64 {
        self.ensure(index);
        self.entries[index].value()
    }

    /// Shifts an outcome into the register at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for a fixed-size table.
    pub fn record(&mut self, index: usize, outcome: Direction) {
        self.ensure(index);
        self.entries[index].push(outcome);
    }

    /// Reads the history value at `index` and shifts `outcome` in — one
    /// bounds check and one `ensure` instead of the two a
    /// [`BranchHistoryTable::history`] / [`BranchHistoryTable::record`]
    /// pair costs on the simulation hot path. Returns the *pre-update*
    /// history value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for a fixed-size table.
    pub fn observe(&mut self, index: usize, outcome: Direction) -> u64 {
        self.ensure(index);
        let entry = &mut self.entries[index];
        let history = entry.value();
        entry.push(outcome);
        history
    }

    /// The current history value of every entry, in index order — the save
    /// half of checkpointing.
    pub fn snapshot(&self) -> Vec<u64> {
        self.entries.iter().map(HistoryRegister::value).collect()
    }

    /// Overwrites every entry from a [`BranchHistoryTable::snapshot`].
    ///
    /// A growable table resizes to the snapshot's length; a fixed table
    /// requires an exact length match.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::Checkpoint`] when a fixed table's size
    /// differs from the snapshot's.
    pub fn restore(&mut self, values: &[u64]) -> Result<(), PredictorError> {
        if self.growable {
            self.entries
                .resize(values.len(), HistoryRegister::new(self.width));
        } else if values.len() != self.entries.len() {
            return Err(PredictorError::checkpoint(format!(
                "BHT snapshot holds {} entries, table has {}",
                values.len(),
                self.entries.len()
            )));
        }
        for (entry, &v) in self.entries.iter_mut().zip(values) {
            entry.set_value(v);
        }
        Ok(())
    }
}

/// Second-level table: saturating counters indexed by a pattern (history
/// value or hashed pc/history).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternHistoryTable {
    counters: Vec<SaturatingCounter>,
    /// `size - 1` when `size` is a power of two (the common `2^history`
    /// configuration), letting the pattern fold be a mask instead of a
    /// 64-bit division; `0` otherwise (a 1-entry table masks to 0 too,
    /// which is exactly right).
    mask: u64,
}

impl PatternHistoryTable {
    /// Creates a table of `size` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        PatternHistoryTable::with_bits(size, 2)
    }

    /// Creates a table of `size` n-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `bits` is outside `1..=8`.
    pub fn with_bits(size: usize, bits: u32) -> Self {
        assert!(size > 0, "PHT size must be positive");
        PatternHistoryTable {
            counters: vec![SaturatingCounter::new(bits); size],
            mask: if size.is_power_of_two() {
                size as u64 - 1
            } else {
                0
            },
        }
    }

    /// The counter index for `pattern`: a mask for power-of-two tables, a
    /// modulo otherwise. Always in range, so callers may index without a
    /// second bounds check.
    #[inline]
    fn slot(&self, pattern: u64) -> usize {
        if self.mask != 0 || self.counters.len() == 1 {
            (pattern & self.mask) as usize
        } else {
            (pattern % self.counters.len() as u64) as usize
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the table has no counters (never: construction
    /// requires a positive size).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The prediction of the counter for `pattern` (taken modulo the
    /// table size).
    pub fn predict(&self, pattern: u64) -> Direction {
        self.counters[self.slot(pattern)].predict()
    }

    /// Trains the counter for `pattern` with an outcome.
    pub fn update(&mut self, pattern: u64, outcome: Direction) {
        let i = self.slot(pattern);
        self.counters[i].update(outcome);
    }

    /// Reads the prediction for `pattern` and trains the same counter
    /// with `outcome` — one index fold and one bounds check for the
    /// predict/update pair every simulated branch performs.
    pub fn observe(&mut self, pattern: u64, outcome: Direction) -> Direction {
        let i = self.slot(pattern);
        let counter = &mut self.counters[i];
        let predicted = counter.predict();
        counter.update(outcome);
        predicted
    }

    /// Read access to the counter for `pattern`.
    pub fn counter(&self, pattern: u64) -> &SaturatingCounter {
        &self.counters[self.slot(pattern)]
    }

    /// The raw value of every counter, in index order — the save half of
    /// checkpointing.
    pub fn snapshot(&self) -> Vec<u8> {
        self.counters.iter().map(SaturatingCounter::value).collect()
    }

    /// Overwrites every counter from a [`PatternHistoryTable::snapshot`];
    /// values above the counter maximum clamp.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::Checkpoint`] when the snapshot's length
    /// differs from the table's.
    pub fn restore(&mut self, values: &[u8]) -> Result<(), PredictorError> {
        if values.len() != self.counters.len() {
            return Err(PredictorError::checkpoint(format!(
                "PHT snapshot holds {} counters, table has {}",
                values.len(),
                self.counters.len()
            )));
        }
        for (counter, &v) in self.counters.iter_mut().zip(values) {
            counter.set_value(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bht_histories_are_independent() {
        let mut bht = BranchHistoryTable::new(2, 4);
        bht.record(0, Direction::Taken);
        bht.record(1, Direction::NotTaken);
        bht.record(0, Direction::Taken);
        assert_eq!(bht.history(0), 0b11);
        assert_eq!(bht.history(1), 0b0);
    }

    #[test]
    fn growable_bht_extends_on_demand() {
        let mut bht = BranchHistoryTable::growable(4);
        assert!(bht.is_empty());
        bht.record(10, Direction::Taken);
        assert_eq!(bht.len(), 11);
        assert_eq!(bht.history(10), 1);
        assert_eq!(bht.history(3), 0);
    }

    #[test]
    #[should_panic]
    fn fixed_bht_panics_out_of_range() {
        let mut bht = BranchHistoryTable::new(2, 4);
        bht.record(5, Direction::Taken);
    }

    #[test]
    fn pht_learns_per_pattern() {
        let mut pht = PatternHistoryTable::new(4);
        for _ in 0..2 {
            pht.update(1, Direction::Taken);
            pht.update(2, Direction::NotTaken);
        }
        assert!(pht.predict(1).is_taken());
        assert!(!pht.predict(2).is_taken());
    }

    #[test]
    fn pht_pattern_wraps_modulo() {
        let mut pht = PatternHistoryTable::new(4);
        pht.update(5, Direction::Taken);
        pht.update(5, Direction::Taken);
        assert!(pht.predict(1).is_taken(), "5 mod 4 == 1");
    }

    #[test]
    fn bht_snapshot_restore_roundtrips() {
        let mut bht = BranchHistoryTable::new(3, 4);
        bht.record(0, Direction::Taken);
        bht.record(2, Direction::Taken);
        bht.record(2, Direction::NotTaken);
        let snap = bht.snapshot();
        let mut fresh = BranchHistoryTable::new(3, 4);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh, bht);
        assert!(fresh.restore(&[0; 2]).is_err(), "fixed size must match");
    }

    #[test]
    fn growable_bht_restore_resizes() {
        let mut bht = BranchHistoryTable::growable(4);
        bht.record(5, Direction::Taken);
        let snap = bht.snapshot();
        let mut fresh = BranchHistoryTable::growable(4);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh, bht);
        assert_eq!(fresh.len(), 6);
    }

    #[test]
    fn pht_snapshot_restore_roundtrips_and_clamps() {
        let mut pht = PatternHistoryTable::new(4);
        pht.update(1, Direction::Taken);
        pht.update(3, Direction::NotTaken);
        let snap = pht.snapshot();
        let mut fresh = PatternHistoryTable::new(4);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh, pht);
        assert!(fresh.restore(&[0; 3]).is_err(), "length must match");
        fresh.restore(&[200, 0, 1, 2]).unwrap();
        assert_eq!(fresh.counter(0).value(), 3, "clamped to the maximum");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_pht_rejected() {
        PatternHistoryTable::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_bht_rejected() {
        BranchHistoryTable::new(0, 4);
    }
}
