//! Branch history shift registers.

use bwsa_trace::Direction;
use serde::{Deserialize, Serialize};

/// A fixed-width branch-outcome shift register.
///
/// New outcomes shift in at the least-significant bit (1 = taken); the
/// register value indexes a pattern history table.
///
/// # Example
///
/// ```
/// use bwsa_predictor::HistoryRegister;
/// use bwsa_trace::Direction;
///
/// let mut h = HistoryRegister::new(4);
/// h.push(Direction::Taken);
/// h.push(Direction::NotTaken);
/// h.push(Direction::Taken);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HistoryRegister {
    value: u64,
    width: u32,
}

impl HistoryRegister {
    /// Creates an all-zero (all not-taken) history of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 63`.
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=63).contains(&width),
            "history width {width} outside 1..=63"
        );
        HistoryRegister { value: 0, width }
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current history value in `0..2^width`.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Overwrites the history value, masking to the register width — the
    /// restore half of checkpointing.
    pub fn set_value(&mut self, value: u64) {
        self.value = value & ((1u64 << self.width) - 1);
    }

    /// Shifts in an outcome.
    pub fn push(&mut self, outcome: Direction) {
        self.value = ((self.value << 1) | outcome.as_bit()) & ((1u64 << self.width) - 1);
    }

    /// Number of distinct history values (`2^width`) — the natural pattern
    /// table size for this register.
    pub fn pattern_count(&self) -> usize {
        1usize << self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_lsb_first() {
        let mut h = HistoryRegister::new(3);
        h.push(Direction::Taken);
        assert_eq!(h.value(), 0b1);
        h.push(Direction::Taken);
        assert_eq!(h.value(), 0b11);
        h.push(Direction::NotTaken);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn width_masks_old_history() {
        let mut h = HistoryRegister::new(2);
        for _ in 0..5 {
            h.push(Direction::Taken);
        }
        assert_eq!(h.value(), 0b11);
        h.push(Direction::NotTaken);
        assert_eq!(h.value(), 0b10);
    }

    #[test]
    fn pattern_count_is_two_to_width() {
        assert_eq!(HistoryRegister::new(12).pattern_count(), 4096);
    }

    #[test]
    #[should_panic(expected = "outside 1..=63")]
    fn zero_width_rejected() {
        HistoryRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=63")]
    fn width_64_rejected() {
        HistoryRegister::new(64);
    }
}
