//! McFarling-style hybrid predictor with a chooser table.

use crate::{BranchPredictor, SaturatingCounter};
use bwsa_trace::{BranchId, Direction, Pc};

/// A combining predictor: two components plus a pc-indexed chooser of
/// two-bit counters that learns, per branch, which component to trust
/// (McFarling 1993; the hybrid designs of Chang et al. build on this).
///
/// The chooser counter moves toward the component that was correct when
/// the two disagree; both components always train.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Bimodal, Gshare, Hybrid};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("mix");
/// for i in 0..4000u64 {
///     // One strongly biased branch and one globally patterned branch.
///     b.record(0x100, true, 2 * i + 1);
///     b.record(0x200, i % 2 == 0, 2 * i + 2);
/// }
/// let trace = b.finish();
/// let mut h = Hybrid::new(Gshare::new(10), Bimodal::new(1024), 1024);
/// let r = simulate(&mut h, &trace);
/// assert!(r.misprediction_rate() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    first: A,
    second: B,
    chooser: Vec<SaturatingCounter>,
}

impl<A: BranchPredictor, B: BranchPredictor> Hybrid<A, B> {
    /// Creates a hybrid of two components with a `chooser_size`-entry
    /// chooser table.
    ///
    /// # Panics
    ///
    /// Panics if `chooser_size` is zero.
    pub fn new(first: A, second: B, chooser_size: usize) -> Self {
        assert!(chooser_size > 0, "chooser size must be positive");
        Hybrid {
            first,
            second,
            chooser: vec![SaturatingCounter::two_bit(); chooser_size],
        }
    }

    fn chooser_index(&self, pc: Pc) -> usize {
        (pc.word_index() % self.chooser.len() as u64) as usize
    }

    /// Read access to the components (for inspection in experiments).
    pub fn components(&self) -> (&A, &B) {
        (&self.first, &self.second)
    }
}

impl<A: BranchPredictor, B: BranchPredictor> BranchPredictor for Hybrid<A, B> {
    fn name(&self) -> String {
        format!("hybrid({}+{})", self.first.name(), self.second.name())
    }

    fn predict(&mut self, pc: Pc, id: BranchId) -> Direction {
        let a = self.first.predict(pc, id);
        let b = self.second.predict(pc, id);
        // Chooser counter high half → trust the first component.
        if self.chooser[self.chooser_index(pc)].predict().is_taken() {
            a
        } else {
            b
        }
    }

    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction) {
        let a = self.first.predict(pc, id);
        let b = self.second.predict(pc, id);
        if a != b {
            // Move toward whichever component was right.
            let idx = self.chooser_index(pc);
            self.chooser[idx].update(Direction::from_taken(a == outcome));
        }
        self.first.update(pc, id, outcome);
        self.second.update(pc, id, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Bimodal, Gshare, StaticPredictor};
    use bwsa_trace::TraceBuilder;

    #[test]
    fn chooser_prefers_the_better_component() {
        // always-taken vs always-not-taken on an always-taken stream:
        // the chooser must settle on the first component.
        let mut h = Hybrid::new(
            StaticPredictor::always_taken(),
            StaticPredictor::always_not_taken(),
            16,
        );
        let pc = Pc::new(0x40);
        let id = BranchId::new(0);
        for _ in 0..8 {
            h.update(pc, id, Direction::Taken);
        }
        assert!(h.predict(pc, id).is_taken());
    }

    #[test]
    fn hybrid_is_at_least_as_good_as_its_worse_component() {
        let mut b = TraceBuilder::new("t");
        for i in 0..3000u64 {
            b.record(0x100 + (i % 4) * 4, i % 3 == 0, i + 1);
        }
        let trace = b.finish();
        let hybrid = simulate(
            &mut Hybrid::new(Gshare::new(10), Bimodal::new(256), 256),
            &trace,
        );
        let gshare = simulate(&mut Gshare::new(10), &trace);
        let bimodal = simulate(&mut Bimodal::new(256), &trace);
        let worst = gshare
            .misprediction_rate()
            .max(bimodal.misprediction_rate());
        assert!(hybrid.misprediction_rate() <= worst + 0.02);
    }

    #[test]
    fn name_mentions_both_components() {
        let h = Hybrid::new(Gshare::new(4), Bimodal::new(8), 8);
        assert_eq!(h.name(), "hybrid(gshare/4+bimodal/8)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chooser_rejected() {
        Hybrid::new(Bimodal::new(2), Bimodal::new(2), 0);
    }
}
