//! PAg: per-address (first level) histories, global pattern table — the
//! paper's evaluation vehicle.

use crate::{
    checkpoint, BhtIndexer, BranchHistoryTable, BranchPredictor, Checkpointable,
    PatternHistoryTable, PredictorError,
};
use bwsa_trace::codec::{self, Cursor};
use bwsa_trace::{BranchId, Direction, Pc};

/// PAg two-level predictor (Yeh & Patt): a branch history table of
/// per-entry history registers feeds one shared pattern history table of
/// two-bit counters.
///
/// The [`BhtIndexer`] decides which history register a branch uses —
/// conventional pc-modulo, the paper's compiler allocation, or a private
/// per-branch register (interference-free). §5.3 evaluates exactly these
/// three on a 1024-entry BHT with a 4096-entry PHT (12 bits of history);
/// [`Pag::paper_baseline`] and friends build those configurations.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, BhtIndexer, Pag};
/// use bwsa_trace::TraceBuilder;
///
/// // Two branches with colliding BHT entries corrupt each other's
/// // local history under pc-modulo indexing...
/// let mut b = TraceBuilder::new("collide");
/// for i in 0..4000u64 {
///     let pc = if i % 2 == 0 { 0x1000 } else { 0x1000 + 4 * 8 }; // same idx mod 8
///     b.record(pc, (i / 2) % 4 != 3, i + 1);
/// }
/// let trace = b.finish();
/// let collided = simulate(&mut Pag::new(BhtIndexer::pc_modulo(8), 8), &trace);
/// // ...while private histories capture the 4-periodic pattern exactly.
/// let private = simulate(&mut Pag::new(BhtIndexer::PerBranch, 8), &trace);
/// assert!(private.misprediction_rate() <= collided.misprediction_rate());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pag {
    indexer: BhtIndexer,
    bht: BranchHistoryTable,
    pht: PatternHistoryTable,
    /// `last_user[entry]` = id of the previous branch to update the entry.
    last_user: Vec<u32>,
    interference_events: u64,
}

impl Pag {
    /// Creates a PAg with the given first-level indexing scheme and
    /// `history_bits` of per-entry history; the PHT has
    /// `2^history_bits` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=24`.
    pub fn new(indexer: BhtIndexer, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        let bht = match indexer.table_size() {
            Some(size) => BranchHistoryTable::new(size, history_bits),
            None => BranchHistoryTable::growable(history_bits),
        };
        let pht = PatternHistoryTable::new(1 << history_bits);
        Pag {
            indexer,
            bht,
            pht,
            last_user: Vec::new(),
            interference_events: 0,
        }
    }

    /// Number of *interference events* observed so far: dynamic branches
    /// that found their BHT entry last written by a different static
    /// branch. This is the quantity branch allocation minimises; the
    /// conventional pc-indexed table accumulates them wherever low pc
    /// bits collide.
    pub fn interference_events(&self) -> u64 {
        self.interference_events
    }

    /// The paper's baseline: PAg, 1024-entry pc-indexed BHT, 4096-entry
    /// PHT (12 history bits).
    pub fn paper_baseline() -> Self {
        Pag::new(BhtIndexer::pc_modulo(1024), 12)
    }

    /// The paper's interference-free reference: a private history per
    /// static branch (standing in for the 2M-entry BHT), 4096-entry PHT.
    pub fn interference_free() -> Self {
        Pag::new(BhtIndexer::PerBranch, 12)
    }

    /// A paper-configured PAg with an arbitrary indexer (12 history bits,
    /// 4096-entry PHT).
    pub fn paper_with_indexer(indexer: BhtIndexer) -> Self {
        Pag::new(indexer, 12)
    }

    /// The first-level indexing scheme.
    pub fn indexer(&self) -> &BhtIndexer {
        &self.indexer
    }

    /// Interference bookkeeping shared by `update` and `observe`.
    #[inline]
    fn note_user(&mut self, entry: usize, id: BranchId) {
        const FREE: u32 = u32::MAX;
        if entry >= self.last_user.len() {
            self.last_user.resize(entry + 1, FREE);
        }
        let prev = self.last_user[entry];
        if prev != FREE && prev != id.as_u32() {
            self.interference_events += 1;
        }
        self.last_user[entry] = id.as_u32();
    }
}

impl BranchPredictor for Pag {
    fn name(&self) -> String {
        format!("PAg[{}]h{}", self.indexer.label(), self.bht.width())
    }

    fn predict(&mut self, pc: Pc, id: BranchId) -> Direction {
        let entry = self.indexer.index(pc, id);
        self.pht.predict(self.bht.history(entry))
    }

    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction) {
        let entry = self.indexer.index(pc, id);
        let history = self.bht.history(entry);
        self.pht.update(history, outcome);
        self.bht.record(entry, outcome);
        self.note_user(entry, id);
    }

    fn observe(&mut self, pc: Pc, id: BranchId, outcome: Direction) -> Direction {
        // predict + update share the entry index and the pre-update
        // history; compute each once.
        let entry = self.indexer.index(pc, id);
        let history = self.bht.observe(entry, outcome);
        let predicted = self.pht.observe(history, outcome);
        self.note_user(entry, id);
        predicted
    }

    fn interference_events(&self) -> Option<u64> {
        Some(self.interference_events)
    }
}

impl Checkpointable for Pag {
    fn save_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        checkpoint::put_str(&mut buf, &self.name());
        checkpoint::put_u64_list(&mut buf, &self.bht.snapshot());
        checkpoint::put_bytes(&mut buf, &self.pht.snapshot());
        let users: Vec<u64> = self.last_user.iter().map(|&u| u64::from(u)).collect();
        checkpoint::put_u64_list(&mut buf, &users);
        codec::put_varint(&mut buf, self.interference_events);
        buf
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), PredictorError> {
        let mut cur = Cursor::new(bytes);
        checkpoint::check_name(&mut cur, &self.name())?;
        let histories = checkpoint::get_u64_list(&mut cur)?;
        let counters = checkpoint::get_bytes(&mut cur)?;
        let users = checkpoint::get_u64_list(&mut cur)?;
        let events = cur.get_varint().map_err(checkpoint::malformed)?;
        checkpoint::ensure_empty(&cur)?;
        let mut last_user = Vec::with_capacity(users.len());
        for u in users {
            last_user.push(u32::try_from(u).map_err(|_| {
                PredictorError::checkpoint(format!("last-user id {u} exceeds u32"))
            })?);
        }
        self.bht.restore(&histories)?;
        self.pht.restore(&counters)?;
        self.last_user = last_user;
        self.interference_events = events;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bwsa_trace::TraceBuilder;

    /// A 5-periodic loop branch: TTTT N repeating.
    fn loop_trace(pc: u64, n: u64) -> bwsa_trace::Trace {
        let mut b = TraceBuilder::new("loop5");
        for i in 0..n {
            b.record(pc, i % 5 != 4, i + 1);
        }
        b.finish()
    }

    #[test]
    fn pag_learns_loop_patterns_perfectly() {
        let trace = loop_trace(0x400, 5000);
        let r = simulate(&mut Pag::new(BhtIndexer::pc_modulo(64), 8), &trace);
        assert!(
            r.misprediction_rate() < 0.01,
            "rate {} should approach 0 after warmup",
            r.misprediction_rate()
        );
    }

    #[test]
    fn paper_configurations() {
        let base = Pag::paper_baseline();
        assert_eq!(base.name(), "PAg[pc-modulo/1024]h12");
        let inf = Pag::interference_free();
        assert_eq!(inf.name(), "PAg[per-branch]h12");
    }

    /// Interleaves a perfectly periodic branch A (period 4) with a
    /// pseudo-random branch B. Sharing one history register pollutes A's
    /// history with B's noise; a private (or allocated) register keeps A
    /// perfectly predictable.
    fn polluted_trace() -> bwsa_trace::Trace {
        let mut b = TraceBuilder::new("polluted");
        let mut lcg: u64 = 0x12345;
        for i in 0..6000u64 {
            if i % 2 == 0 {
                b.record(0x100, (i / 2) % 4 != 3, i + 1);
            } else {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b.record(0x104, (lcg >> 33) & 1 == 1, i + 1);
            }
        }
        b.finish()
    }

    /// Misprediction rate of branch id 0 (the periodic branch) only.
    fn periodic_rate(p: &mut Pag, trace: &bwsa_trace::Trace) -> f64 {
        let d = crate::simulate_detailed(p, trace);
        d.branch_rate(bwsa_trace::BranchId::new(0)).unwrap()
    }

    #[test]
    fn interference_free_beats_tiny_shared_table_under_aliasing() {
        let trace = polluted_trace();
        let shared = periodic_rate(&mut Pag::new(BhtIndexer::pc_modulo(1), 4), &trace);
        let private = periodic_rate(&mut Pag::new(BhtIndexer::PerBranch, 6), &trace);
        assert!(
            private + 0.05 < shared,
            "private {private} vs shared {shared}"
        );
        assert!(
            private < 0.02,
            "private branch A should be near-perfect: {private}"
        );
    }

    #[test]
    fn allocated_indexing_separates_colliding_branches() {
        use crate::AllocatedIndex;
        // Allocation sends the two ids to distinct entries of a 2-entry
        // table even though their pcs collide under pc-modulo-1.
        let trace = polluted_trace();
        let map = AllocatedIndex::new(2, vec![Some(0), Some(1)]).unwrap();
        let alloc = periodic_rate(&mut Pag::new(BhtIndexer::Allocated(map), 6), &trace);
        let shared = periodic_rate(&mut Pag::new(BhtIndexer::pc_modulo(1), 4), &trace);
        assert!(alloc + 0.05 < shared, "alloc {alloc} vs shared {shared}");
    }

    #[test]
    fn interference_events_count_entry_switches() {
        let trace = polluted_trace();
        // 1-entry table: every record after the first finds the other
        // branch's residue → n-1 events.
        let mut shared = Pag::new(BhtIndexer::pc_modulo(1), 4);
        let _ = simulate(&mut shared, &trace);
        assert_eq!(shared.interference_events(), trace.len() as u64 - 1);
        // Private entries: never any interference.
        let mut private = Pag::new(BhtIndexer::PerBranch, 4);
        let _ = simulate(&mut private, &trace);
        assert_eq!(private.interference_events(), 0);
    }

    #[test]
    fn interference_free_config_reports_zero_on_any_trace() {
        let trace = loop_trace(0x400, 500);
        let mut p = Pag::interference_free();
        let _ = simulate(&mut p, &trace);
        assert_eq!(p.interference_events(), 0);
    }

    #[test]
    fn growable_bht_only_allocates_touched_branches() {
        let trace = loop_trace(0x400, 100);
        let mut p = Pag::interference_free();
        let _ = simulate(&mut p, &trace);
        assert_eq!(p.bht.len(), 1, "one static branch, one history register");
    }
}
