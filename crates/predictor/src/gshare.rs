//! gshare: global history XOR pc indexes the pattern table.

use crate::{
    checkpoint, BranchPredictor, Checkpointable, HistoryRegister, PatternHistoryTable,
    PredictorError,
};
use bwsa_trace::codec::{self, Cursor};
use bwsa_trace::{BranchId, Direction, Pc};

/// gshare (McFarling): the global history is XORed with low pc bits to
/// index a table of two-bit counters, decorrelating branches that share
/// history patterns.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Gshare};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("two-loops");
/// for i in 0..3000u64 {
///     b.record(0x400 + (i % 3) * 4, i % 3 != 2, i + 1);
/// }
/// let r = simulate(&mut Gshare::new(10), &b.finish());
/// assert!(r.misprediction_rate() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    history: HistoryRegister,
    pht: PatternHistoryTable,
}

impl Gshare {
    /// Creates a gshare with `history_bits` of global history and a
    /// `2^history_bits`-entry counter table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=24`.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        let history = HistoryRegister::new(history_bits);
        let pht = PatternHistoryTable::new(history.pattern_count());
        Gshare { history, pht }
    }

    fn index(&self, pc: Pc) -> u64 {
        self.history.value() ^ (pc.word_index() & ((1 << self.history.width()) - 1))
    }
}

impl BranchPredictor for Gshare {
    fn name(&self) -> String {
        format!("gshare/{}", self.history.width())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        self.pht.predict(self.index(pc))
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        self.pht.update(self.index(pc), outcome);
        self.history.push(outcome);
    }

    fn observe(&mut self, pc: Pc, _id: BranchId, outcome: Direction) -> Direction {
        // The global history is untouched between predict and update, so
        // the xor index is the same for both — compute it once.
        let predicted = self.pht.observe(self.index(pc), outcome);
        self.history.push(outcome);
        predicted
    }
}

impl Checkpointable for Gshare {
    fn save_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        checkpoint::put_str(&mut buf, &self.name());
        codec::put_varint(&mut buf, self.history.value());
        checkpoint::put_bytes(&mut buf, &self.pht.snapshot());
        buf
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), PredictorError> {
        let mut cur = Cursor::new(bytes);
        checkpoint::check_name(&mut cur, &self.name())?;
        let history = cur.get_varint().map_err(checkpoint::malformed)?;
        let counters = checkpoint::get_bytes(&mut cur)?;
        self.pht.restore(&counters)?;
        self.history.set_value(history);
        checkpoint::ensure_empty(&cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_mixes_pc_and_history() {
        let mut p = Gshare::new(8);
        let before = p.index(Pc::new(0x400));
        p.update(Pc::new(0x400), BranchId::new(0), Direction::Taken);
        let after = p.index(Pc::new(0x400));
        assert_ne!(before, after, "history change moves the index");
        assert_ne!(p.index(Pc::new(0x400)), p.index(Pc::new(0x404)));
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = Gshare::new(6);
        let pc = Pc::new(0x80);
        for _ in 0..20 {
            p.update(pc, BranchId::new(0), Direction::Taken);
        }
        assert!(p.predict(pc, BranchId::new(0)).is_taken());
    }

    #[test]
    fn name_reports_width() {
        assert_eq!(Gshare::new(14).name(), "gshare/14");
    }
}
