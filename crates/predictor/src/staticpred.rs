//! Static (non-adaptive) predictors: the floor baselines.

use crate::BranchPredictor;
use bwsa_trace::{profile::BranchProfile, BranchId, Direction, Pc, Trace};

/// A static predictor: its predictions never change with execution.
///
/// * [`StaticPredictor::always_taken`] / [`StaticPredictor::always_not_taken`]
///   — the classic single-direction heuristics.
/// * [`StaticPredictor::from_profile`] — profile-guided static prediction:
///   each branch predicts its majority direction from a profiling run
///   (the compiler-support baseline of the paper's related work, e.g.
///   Ball & Larus style "branch prediction for free" upper bound).
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, StaticPredictor};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("biased");
/// for i in 0..100u64 {
///     b.record(0x400, i % 10 != 0, i + 1); // 90% taken
/// }
/// let trace = b.finish();
///
/// let mut profiled = StaticPredictor::from_profile(&trace);
/// let r = simulate(&mut profiled, &trace);
/// assert!((r.misprediction_rate() - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPredictor {
    label: &'static str,
    default: Direction,
    per_branch: Vec<Direction>,
}

impl StaticPredictor {
    /// Predicts taken for every branch.
    pub fn always_taken() -> Self {
        StaticPredictor {
            label: "static/always-taken",
            default: Direction::Taken,
            per_branch: Vec::new(),
        }
    }

    /// Predicts not-taken for every branch.
    pub fn always_not_taken() -> Self {
        StaticPredictor {
            label: "static/always-not-taken",
            default: Direction::NotTaken,
            per_branch: Vec::new(),
        }
    }

    /// Profile-guided: each branch predicts its majority direction in the
    /// profiling trace; unseen branches predict taken.
    pub fn from_profile(profile_trace: &Trace) -> Self {
        let profile = BranchProfile::from_trace(profile_trace);
        let per_branch = profile
            .iter()
            .map(|(_, s)| Direction::from_taken(s.taken_rate() >= 0.5))
            .collect();
        StaticPredictor {
            label: "static/profile",
            default: Direction::Taken,
            per_branch,
        }
    }
}

impl BranchPredictor for StaticPredictor {
    fn name(&self) -> String {
        self.label.to_owned()
    }

    fn predict(&mut self, _pc: Pc, id: BranchId) -> Direction {
        self.per_branch
            .get(id.index())
            .copied()
            .unwrap_or(self.default)
    }

    fn update(&mut self, _pc: Pc, _id: BranchId, _outcome: Direction) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_trace::TraceBuilder;

    #[test]
    fn fixed_direction_predictors() {
        let mut t = StaticPredictor::always_taken();
        let mut n = StaticPredictor::always_not_taken();
        for i in 0..4 {
            assert!(t
                .predict(Pc::new(i * 4), BranchId::new(i as u32))
                .is_taken());
            assert!(!n
                .predict(Pc::new(i * 4), BranchId::new(i as u32))
                .is_taken());
        }
    }

    #[test]
    fn profile_predictor_learns_majority() {
        let mut b = TraceBuilder::new("p");
        // Branch 0: mostly taken; branch 1: mostly not taken.
        let mut time = 0;
        for i in 0..10u64 {
            time += 1;
            b.record(0x100, i != 0, time);
            time += 1;
            b.record(0x104, i == 0, time);
        }
        let trace = b.finish();
        let mut p = StaticPredictor::from_profile(&trace);
        assert!(p.predict(Pc::new(0x100), BranchId::new(0)).is_taken());
        assert!(!p.predict(Pc::new(0x104), BranchId::new(1)).is_taken());
        // Unseen branch defaults to taken.
        assert!(p.predict(Pc::new(0x200), BranchId::new(99)).is_taken());
    }

    #[test]
    fn update_is_a_no_op() {
        let mut p = StaticPredictor::always_taken();
        p.update(Pc::new(0), BranchId::new(0), Direction::NotTaken);
        assert!(p.predict(Pc::new(0), BranchId::new(0)).is_taken());
    }
}
