//! gselect: concatenated pc and global-history index.

use crate::{BranchPredictor, HistoryRegister, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// gselect (McFarling): the counter-table index concatenates low pc bits
/// with global history bits — the precursor to gshare's XOR hashing.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Gselect};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("bias");
/// for i in 0..2000u64 {
///     b.record(0x100 + (i % 4) * 4, true, i + 1);
/// }
/// let r = simulate(&mut Gselect::new(4, 6), &b.finish());
/// assert!(r.misprediction_rate() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gselect {
    history: HistoryRegister,
    pht: PatternHistoryTable,
    pc_bits: u32,
}

impl Gselect {
    /// Creates a gselect using `pc_bits` of pc and `history_bits` of
    /// global history; the counter table has `2^(pc_bits+history_bits)`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero or the combined index exceeds 24
    /// bits.
    pub fn new(pc_bits: u32, history_bits: u32) -> Self {
        assert!(
            pc_bits >= 1 && history_bits >= 1,
            "widths must be at least 1"
        );
        assert!(
            pc_bits + history_bits <= 24,
            "combined index {} exceeds 24 bits",
            pc_bits + history_bits
        );
        Gselect {
            history: HistoryRegister::new(history_bits),
            pht: PatternHistoryTable::new(1 << (pc_bits + history_bits)),
            pc_bits,
        }
    }

    fn index(&self, pc: Pc) -> u64 {
        let pc_part = pc.word_index() & ((1 << self.pc_bits) - 1);
        (pc_part << self.history.width()) | self.history.value()
    }
}

impl BranchPredictor for Gselect {
    fn name(&self) -> String {
        format!("gselect/{}+{}", self.pc_bits, self.history.width())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        self.pht.predict(self.index(pc))
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        self.pht.update(self.index(pc), outcome);
        self.history.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_concatenates_pc_and_history() {
        let mut p = Gselect::new(2, 3);
        // history 0, pc word 0b01 → index 0b01_000.
        assert_eq!(p.index(Pc::new(0x4)), 0b01_000);
        p.update(Pc::new(0x4), BranchId::new(0), Direction::Taken);
        // history now 1 → index 0b01_001.
        assert_eq!(p.index(Pc::new(0x4)), 0b01_001);
    }

    #[test]
    fn distinct_pcs_never_collide_within_pc_bits() {
        let p = Gselect::new(3, 2);
        let idx: Vec<u64> = (0..8u64).map(|i| p.index(Pc::new(i * 4))).collect();
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(idx, dedup);
    }

    #[test]
    fn name_reports_split() {
        assert_eq!(Gselect::new(6, 6).name(), "gselect/6+6");
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn oversized_index_rejected() {
        Gselect::new(20, 20);
    }
}
