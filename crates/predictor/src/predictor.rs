//! The predictor interface shared by every scheme.

use bwsa_trace::{BranchId, Direction, Pc};

/// A dynamic branch predictor driven by a branch trace.
///
/// The simulator calls [`BranchPredictor::predict`] before each dynamic
/// branch and [`BranchPredictor::update`] with the resolved outcome
/// afterwards. The dense `id` is the trace's interned static-branch
/// identity; hardware-realistic schemes ignore it and hash `pc`, while the
/// interference-free and allocation-indexed schemes use it the way the
/// paper's augmented ISA would carry an index with the instruction.
///
/// The trait is object-safe: experiment harnesses hold
/// `Vec<Box<dyn BranchPredictor>>`.
pub trait BranchPredictor {
    /// A short, human-readable configuration label (e.g. `"PAg/1024"`).
    fn name(&self) -> String;

    /// Predicts the direction of the upcoming dynamic branch.
    fn predict(&mut self, pc: Pc, id: BranchId) -> Direction;

    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction);

    /// Predicts *and* trains in one step — the trace-driven simulation
    /// hot path, where the outcome is already known when the prediction
    /// is requested.
    ///
    /// Must be observably identical to [`BranchPredictor::predict`]
    /// followed by [`BranchPredictor::update`]; the default does exactly
    /// that. Schemes whose predict/update share table lookups (index
    /// computation, history reads) override it to do each lookup once.
    fn observe(&mut self, pc: Pc, id: BranchId, outcome: Direction) -> Direction {
        let predicted = self.predict(pc, id);
        self.update(pc, id, outcome);
        predicted
    }

    /// Number of interference events (history register switches between
    /// distinct branches sharing a table entry) observed so far, for
    /// schemes that track them. The default is `None`: most predictors
    /// have no notion of interference.
    fn interference_events(&self) -> Option<u64> {
        None
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn predict(&mut self, pc: Pc, id: BranchId) -> Direction {
        (**self).predict(pc, id)
    }

    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction) {
        (**self).update(pc, id, outcome)
    }

    fn observe(&mut self, pc: Pc, id: BranchId, outcome: Direction) -> Direction {
        (**self).observe(pc, id, outcome)
    }

    fn interference_events(&self) -> Option<u64> {
        (**self).interference_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticPredictor;

    #[test]
    fn boxed_predictors_delegate() {
        let mut boxed: Box<dyn BranchPredictor> = Box::new(StaticPredictor::always_taken());
        assert_eq!(boxed.name(), "static/always-taken");
        let d = boxed.predict(Pc::new(0), BranchId::new(0));
        assert!(d.is_taken());
        boxed.update(Pc::new(0), BranchId::new(0), Direction::NotTaken);
    }
}
