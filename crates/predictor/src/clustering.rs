//! Misprediction clustering analysis.
//!
//! The paper's future-work section asks: *"Are the clustered branch
//! mispredictions found in recent work on dynamic prediction caused by
//! changes in working set?"* This module supplies the misprediction side
//! of that question: per-record misprediction flags and burstiness
//! statistics (run lengths and the Fano factor of misses per window).
//! `bwsa-core`'s phase timeline supplies the working-set side; the
//! `future_work` bench binary correlates the two.

use crate::BranchPredictor;
use bwsa_trace::Trace;
use serde::{Deserialize, Serialize};

/// Simulates a predictor and returns one flag per dynamic branch:
/// `true` where the prediction was wrong.
pub fn misprediction_flags<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> Vec<bool> {
    trace
        .indexed_records()
        .map(|(id, rec)| {
            let wrong = predictor.predict(rec.pc, id) != rec.direction;
            predictor.update(rec.pc, id, rec.direction);
            wrong
        })
        .collect()
}

/// Burstiness statistics of a misprediction flag stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Dynamic branches observed.
    pub total: usize,
    /// Mispredicted branches.
    pub mispredictions: usize,
    /// Number of maximal runs of consecutive mispredictions.
    pub runs: usize,
    /// Mean misprediction-run length.
    pub mean_run_length: f64,
    /// Longest misprediction run.
    pub max_run_length: usize,
    /// Window size used for the Fano factor.
    pub window: usize,
    /// Fano factor (variance / mean) of misprediction counts per window:
    /// ≈1 for a memoryless miss process, >1 when misses cluster.
    pub fano_factor: f64,
}

/// Computes [`ClusteringStats`] over fixed windows of `window` dynamic
/// branches (the trailing partial window is dropped).
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Example
///
/// ```
/// use bwsa_predictor::clustering::clustering_stats;
///
/// // Misses arrive in one dense burst: strongly clustered.
/// let mut flags = vec![false; 1000];
/// for f in &mut flags[400..440] {
///     *f = true;
/// }
/// let s = clustering_stats(&flags, 100);
/// assert!(s.fano_factor > 1.0);
/// assert_eq!(s.max_run_length, 40);
/// ```
pub fn clustering_stats(flags: &[bool], window: usize) -> ClusteringStats {
    assert!(window > 0, "window must be positive");
    let total = flags.len();
    let mispredictions = flags.iter().filter(|&&f| f).count();

    // Run-length statistics.
    let mut runs = 0usize;
    let mut max_run = 0usize;
    let mut current = 0usize;
    for &f in flags {
        if f {
            current += 1;
            max_run = max_run.max(current);
        } else {
            if current > 0 {
                runs += 1;
            }
            current = 0;
        }
    }
    if current > 0 {
        runs += 1;
    }
    let mean_run_length = if runs == 0 {
        0.0
    } else {
        mispredictions as f64 / runs as f64
    };

    // Fano factor over complete windows.
    let counts: Vec<f64> = flags
        .chunks_exact(window)
        .map(|w| w.iter().filter(|&&f| f).count() as f64)
        .collect();
    let fano_factor = if counts.is_empty() {
        0.0
    } else {
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            var / mean
        }
    };

    ClusteringStats {
        total,
        mispredictions,
        runs,
        mean_run_length,
        max_run_length: max_run,
        window,
        fano_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticPredictor;
    use bwsa_trace::TraceBuilder;

    #[test]
    fn flags_match_simulation_counts() {
        let mut b = TraceBuilder::new("f");
        for i in 0..50u64 {
            b.record(0x40, i % 5 == 0, i + 1);
        }
        let trace = b.finish();
        let flags = misprediction_flags(&mut StaticPredictor::always_taken(), &trace);
        let expected = crate::simulate(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(
            flags.iter().filter(|&&f| f).count() as u64,
            expected.mispredictions
        );
        assert_eq!(flags.len() as u64, expected.total);
    }

    #[test]
    fn run_statistics() {
        // T F T T F F T (misses marked T)
        let flags = [true, false, true, true, false, false, true];
        let s = clustering_stats(&flags, 7);
        assert_eq!(s.mispredictions, 4);
        assert_eq!(s.runs, 3);
        assert_eq!(s.max_run_length, 2);
        assert!((s.mean_run_length - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_misses_have_low_fano() {
        // Exactly one miss per window: zero variance.
        let flags: Vec<bool> = (0..1000).map(|i| i % 100 == 0).collect();
        let s = clustering_stats(&flags, 100);
        assert_eq!(s.fano_factor, 0.0);
    }

    #[test]
    fn bursty_misses_have_high_fano() {
        let mut flags = vec![false; 1000];
        for f in &mut flags[0..50] {
            *f = true;
        }
        let s = clustering_stats(&flags, 100);
        assert!(s.fano_factor > 5.0, "fano {}", s.fano_factor);
    }

    #[test]
    fn no_misses_is_all_zero() {
        let s = clustering_stats(&[false; 64], 8);
        assert_eq!(s.mispredictions, 0);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_run_length, 0.0);
        assert_eq!(s.fano_factor, 0.0);
    }

    #[test]
    fn trailing_run_is_counted() {
        let s = clustering_stats(&[false, true, true], 3);
        assert_eq!(s.runs, 1);
        assert_eq!(s.max_run_length, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        clustering_stats(&[true], 0);
    }
}
