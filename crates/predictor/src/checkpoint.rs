//! Predictor state checkpointing: serialise a predictor's mutable tables
//! so a simulation can be killed and resumed bit-identically.
//!
//! [`Checkpointable`] is implemented by the predictors the paper's
//! evaluation actually runs long simulations on — [`crate::Pag`] (all
//! indexer variants), [`crate::Bimodal`], and [`crate::Gshare`]. The state
//! bytes start with the predictor's [`crate::BranchPredictor::name`],
//! which encodes its configuration (table sizes, history widths), so
//! loading state into a differently configured predictor fails with
//! [`PredictorError::Checkpoint`] instead of silently mispredicting.
//!
//! Encoding uses the workspace's shared [`bwsa_trace::codec`] primitives
//! (LEB128 varints); framing and corruption detection live one level up in
//! [`crate::SimCheckpoint`], which wraps these bytes with a magic, version,
//! and CRC32.
//!
//! # Example
//!
//! ```
//! use bwsa_predictor::{Bimodal, BranchPredictor, Checkpointable};
//! use bwsa_trace::{BranchId, Direction, Pc};
//!
//! let mut trained = Bimodal::new(64);
//! trained.update(Pc::new(0x400), BranchId::new(0), Direction::Taken);
//! trained.update(Pc::new(0x400), BranchId::new(0), Direction::Taken);
//!
//! let mut fresh = Bimodal::new(64);
//! fresh.load_state(&trained.save_state()).unwrap();
//! assert!(fresh.predict(Pc::new(0x400), BranchId::new(0)).is_taken());
//!
//! let mut other_size = Bimodal::new(128);
//! assert!(other_size.load_state(&trained.save_state()).is_err());
//! ```

use crate::{BranchPredictor, PredictorError};
use bwsa_trace::codec::{self, Cursor};
use bwsa_trace::TraceError;

/// A predictor whose mutable state can be saved and restored, enabling
/// kill-and-resume simulation via [`crate::simulate_resumable`].
///
/// Contract: for any predictor `p`, a fresh identically configured `q`
/// with `q.load_state(&p.save_state())` applied behaves exactly like `p`
/// on every future `predict`/`update` sequence.
pub trait Checkpointable: BranchPredictor {
    /// Serialises the predictor's mutable state (prefixed with its
    /// configuration-bearing name).
    fn save_state(&self) -> Vec<u8>;

    /// Restores state produced by [`Checkpointable::save_state`] on an
    /// identically configured predictor.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::Checkpoint`] when the bytes are malformed
    /// or were saved by a differently configured predictor.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), PredictorError>;
}

/// Maps a low-level decode error into a checkpoint error.
pub(crate) fn malformed(e: TraceError) -> PredictorError {
    PredictorError::checkpoint(format!("malformed state: {e}"))
}

/// Appends a length-prefixed UTF-8 string.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    codec::put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub(crate) fn get_str(cur: &mut Cursor<'_>) -> Result<String, PredictorError> {
    let len = cur.get_varint().map_err(malformed)? as usize;
    let raw = cur.take(len).map_err(malformed)?;
    String::from_utf8(raw.to_vec())
        .map_err(|e| PredictorError::checkpoint(format!("state name is not utf-8: {e}")))
}

/// Reads the leading name and requires it to match `expect` (the loading
/// predictor's own name, which encodes its configuration).
pub(crate) fn check_name(cur: &mut Cursor<'_>, expect: &str) -> Result<(), PredictorError> {
    let found = get_str(cur)?;
    if found != expect {
        return Err(PredictorError::checkpoint(format!(
            "state was saved by {found:?} but is being loaded into {expect:?}"
        )));
    }
    Ok(())
}

/// Appends a length-prefixed byte slice.
pub(crate) fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    codec::put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice.
pub(crate) fn get_bytes(cur: &mut Cursor<'_>) -> Result<Vec<u8>, PredictorError> {
    let len = cur.get_varint().map_err(malformed)? as usize;
    Ok(cur.take(len).map_err(malformed)?.to_vec())
}

/// Appends a length-prefixed list of varints.
pub(crate) fn put_u64_list(buf: &mut Vec<u8>, values: &[u64]) {
    codec::put_varint(buf, values.len() as u64);
    for &v in values {
        codec::put_varint(buf, v);
    }
}

/// Reads a length-prefixed list of varints.
pub(crate) fn get_u64_list(cur: &mut Cursor<'_>) -> Result<Vec<u64>, PredictorError> {
    let len = cur.get_varint().map_err(malformed)? as usize;
    // Guard against a corrupt length claiming more entries than bytes
    // remain (each entry is at least one byte).
    if len > cur.remaining() {
        return Err(PredictorError::checkpoint(format!(
            "state list claims {len} entries but only {} bytes remain",
            cur.remaining()
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(cur.get_varint().map_err(malformed)?);
    }
    Ok(out)
}

/// Requires the cursor to be fully consumed.
pub(crate) fn ensure_empty(cur: &Cursor<'_>) -> Result<(), PredictorError> {
    if !cur.is_empty() {
        return Err(PredictorError::checkpoint(format!(
            "{} trailing bytes after predictor state",
            cur.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, BhtIndexer, Bimodal, Gshare, Pag};
    use bwsa_trace::{Trace, TraceBuilder};

    fn mixed_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("mixed");
        let mut lcg: u64 = 0xDEAD_BEEF;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = 0x1000 + (lcg >> 40) % 37 * 4;
            b.record(pc, (i / 3) % 5 != 4, i + 1);
        }
        b.finish()
    }

    /// Trains a predictor on a warmup trace, round-trips its state into a
    /// fresh instance, and requires the two to agree exactly afterwards.
    fn assert_state_transfers<P: Checkpointable + Clone + PartialEq + std::fmt::Debug>(
        mut trained: P,
        mut fresh: P,
    ) {
        let warmup = mixed_trace(900);
        let rest = mixed_trace(2000);
        let _ = simulate(&mut trained, &warmup);
        fresh
            .load_state(&trained.save_state())
            .expect("state must load into an identical configuration");
        assert_eq!(fresh, trained, "restored state must be identical");
        let a = simulate(&mut trained, &rest);
        let b = simulate(&mut fresh, &rest);
        assert_eq!(a, b, "future behaviour must match");
    }

    #[test]
    fn bimodal_state_transfers() {
        assert_state_transfers(Bimodal::new(256), Bimodal::new(256));
    }

    #[test]
    fn gshare_state_transfers() {
        assert_state_transfers(Gshare::new(10), Gshare::new(10));
    }

    #[test]
    fn pag_state_transfers() {
        assert_state_transfers(
            Pag::new(BhtIndexer::pc_modulo(64), 8),
            Pag::new(BhtIndexer::pc_modulo(64), 8),
        );
    }

    #[test]
    fn growable_pag_state_transfers() {
        assert_state_transfers(
            Pag::new(BhtIndexer::PerBranch, 6),
            Pag::new(BhtIndexer::PerBranch, 6),
        );
    }

    #[test]
    fn pag_state_preserves_interference_count() {
        let trace = mixed_trace(500);
        let mut p = Pag::new(BhtIndexer::pc_modulo(1), 4);
        let _ = simulate(&mut p, &trace);
        assert!(p.interference_events() > 0);
        let mut q = Pag::new(BhtIndexer::pc_modulo(1), 4);
        q.load_state(&p.save_state()).unwrap();
        assert_eq!(q.interference_events(), p.interference_events());
    }

    #[test]
    fn mismatched_configuration_is_rejected() {
        let bimodal = Bimodal::new(64).save_state();
        assert!(Bimodal::new(32).load_state(&bimodal).is_err());
        assert!(Gshare::new(6).load_state(&bimodal).is_err());
        let pag = Pag::new(BhtIndexer::pc_modulo(8), 4).save_state();
        assert!(Pag::new(BhtIndexer::pc_modulo(16), 4)
            .load_state(&pag)
            .is_err());
        assert!(Pag::new(BhtIndexer::PerBranch, 4).load_state(&pag).is_err());
    }

    #[test]
    fn truncated_or_trailing_state_is_rejected() {
        let mut p = Bimodal::new(16);
        let state = p.save_state();
        for cut in 0..state.len() {
            assert!(p.load_state(&state[..cut]).is_err(), "prefix of {cut}");
        }
        let mut padded = state.clone();
        padded.push(0);
        assert!(p.load_state(&padded).is_err(), "trailing bytes");
        p.load_state(&state).expect("pristine state still loads");
    }

    #[test]
    fn huge_list_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        put_str(&mut buf, "PAg[pc-modulo/8]h4");
        codec::put_varint(&mut buf, u64::MAX); // absurd BHT entry count
        let err = Pag::new(BhtIndexer::pc_modulo(8), 4)
            .load_state(&buf)
            .unwrap_err();
        assert!(err.to_string().contains("entries"), "{err}");
    }
}
