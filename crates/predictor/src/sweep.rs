//! Parallel simulation sweeps: fan a predictor × configuration × workload
//! grid across a bounded worker pool with deterministic result ordering.
//!
//! The paper's evaluation (Figures 3–4, Tables 3–4) is a grid of
//! independent trace-driven simulations — each cell pairs one predictor
//! configuration with one workload trace. The cells share nothing, so
//! they parallelise trivially; what needs care is keeping the *output*
//! independent of scheduling. [`sweep`] pulls cells from a shared queue
//! (so slow cells don't serialise behind a fixed partition), tags every
//! result with its input index, and sorts before returning — the returned
//! `Vec` is always in cell order, and a failing sweep always reports the
//! lowest-index error, no matter which worker hit it first.
//!
//! [`SweepCell`] is a deferred simulation: a label plus a boxed `FnOnce`
//! producing a [`SimResult`]. The two constructors cover the workspace's
//! simulation entry points — [`SweepCell::plain`] wraps [`simulate`] for
//! any predictor, [`SweepCell::resumable`] wraps [`simulate_resumable`]
//! for [`Checkpointable`] predictors so checkpointed sweeps keep working
//! when fanned out.

use crate::checkpoint::Checkpointable;
use crate::error::PredictorError;
use crate::predictor::BranchPredictor;
use crate::sim::{simulate, simulate_resumable, SimCheckpoint, SimResult};
use bwsa_obs::Obs;
use bwsa_trace::Trace;
use crossbeam::queue::SegQueue;
use std::sync::Mutex;

/// One deferred cell of a simulation sweep.
pub struct SweepCell<'a> {
    label: String,
    run: Box<dyn FnOnce() -> Result<SimResult, PredictorError> + Send + 'a>,
}

impl std::fmt::Debug for SweepCell<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepCell")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<'a> SweepCell<'a> {
    /// Wraps an arbitrary deferred simulation.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<SimResult, PredictorError> + Send + 'a,
    ) -> Self {
        SweepCell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// A cell running [`simulate`] — any predictor, no checkpointing.
    pub fn plain<P>(predictor: P, trace: &'a Trace) -> Self
    where
        P: BranchPredictor + Send + 'a,
    {
        let label = format!("{}@{}", predictor.name(), trace.meta().name);
        let mut predictor = predictor;
        Self::new(label, move || Ok(simulate(&mut predictor, trace)))
    }

    /// A cell running [`simulate_resumable`] — resumes from an optional
    /// checkpoint and emits new checkpoints through `on_checkpoint`, so a
    /// fanned-out sweep keeps the same durability contract as a serial
    /// checkpointed run.
    pub fn resumable<P, F>(
        predictor: P,
        trace: &'a Trace,
        resume: Option<SimCheckpoint>,
        checkpoint_every: Option<u64>,
        on_checkpoint: F,
    ) -> Self
    where
        P: Checkpointable + Send + 'a,
        F: FnMut(&SimCheckpoint) -> Result<(), PredictorError> + Send + 'a,
    {
        let label = format!("{}@{}", predictor.name(), trace.meta().name);
        let mut predictor = predictor;
        let mut on_checkpoint = on_checkpoint;
        Self::new(label, move || {
            simulate_resumable(
                &mut predictor,
                trace,
                resume.as_ref(),
                checkpoint_every,
                &mut on_checkpoint,
            )
        })
    }

    /// The cell's display label, `predictor@trace` for the built-in
    /// constructors.
    pub fn label(&self) -> &str {
        &self.label
    }

    fn execute(self) -> Result<SimResult, PredictorError> {
        (self.run)()
    }
}

/// Runs every cell on `jobs` worker threads, returning results in cell
/// order.
///
/// Workers pull cells from a shared queue, so an expensive cell never
/// strands the rest behind it. Scheduling cannot leak into the output:
/// results come back ordered by input index, and if any cells fail the
/// error returned is always the one with the lowest index.
///
/// A cell that *unwinds* — a genuine panic or an injected fault — is
/// isolated at the cell boundary and reported as
/// [`PredictorError::CellFailed`] rather than tearing down the sweep.
///
/// # Errors
///
/// Returns the lowest-index cell's error; every cell still runs.
pub fn sweep(cells: Vec<SweepCell<'_>>, jobs: usize) -> Result<Vec<SimResult>, PredictorError> {
    sweep_observed(cells, jobs, &Obs::noop())
}

/// [`sweep`] with per-cell wall times (one `sweep:<label>` span each) and
/// aggregate `predictor.lookups` / `predictor.mispredicts` counters
/// reported into `obs`. Results are unchanged by observation.
///
/// # Errors
///
/// Exactly those of [`sweep`].
pub fn sweep_observed(
    cells: Vec<SweepCell<'_>>,
    jobs: usize,
    obs: &Obs,
) -> Result<Vec<SimResult>, PredictorError> {
    let execute_observed = |cell: SweepCell<'_>| {
        let span = obs.span(format!("sweep:{}", cell.label()));
        let label = cell.label().to_string();
        // Containment boundary: a cell that unwinds (a genuine panic or
        // an injected fault) fails only itself, as a typed error — the
        // other cells and the worker pool are unaffected.
        let outcome = bwsa_resilience::supervisor::catch(|| {
            bwsa_resilience::failpoint!("predictor.sweep_cell");
            cell.execute()
        })
        .unwrap_or_else(|fault| Err(PredictorError::cell_failed(label, fault.to_string())));
        span.finish();
        if let Ok(result) = &outcome {
            obs.add("predictor.lookups", result.total);
            obs.add("predictor.mispredicts", result.mispredictions);
        }
        outcome
    };
    let workers = jobs.clamp(1, cells.len().max(1));
    let outcomes: Vec<(usize, Result<SimResult, PredictorError>)> = if workers <= 1 {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| (i, execute_observed(cell)))
            .collect()
    } else {
        let queue: SegQueue<(usize, SweepCell<'_>)> = cells.into_iter().enumerate().collect();
        let collected = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    let mut local = Vec::new();
                    while let Some((i, cell)) = queue.pop() {
                        local.push((i, execute_observed(cell)));
                    }
                    collected.lock().expect("results poisoned").extend(local);
                });
            }
        })
        .expect("sweep worker panicked");
        collected.into_inner().expect("results poisoned")
    };
    let mut outcomes = outcomes;
    outcomes.sort_unstable_by_key(|&(i, _)| i);
    outcomes
        .into_iter()
        .map(|(_, outcome)| outcome)
        .collect::<Result<Vec<_>, _>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bimodal, Gshare, Pag};
    use bwsa_trace::TraceBuilder;

    fn looped_trace(name: &str, branches: u64, records: u64) -> Trace {
        let mut b = TraceBuilder::new(name);
        for i in 0..records {
            b.record(0x1000 + (i % branches) * 4, i % 3 != 0, i + 1);
        }
        b.finish()
    }

    #[test]
    fn sweep_results_are_in_cell_order_for_any_job_count() {
        let trace = looped_trace("t", 7, 4000);
        let serial: Vec<SimResult> = vec![
            simulate(&mut Pag::paper_baseline(), &trace),
            simulate(&mut Bimodal::new(64), &trace),
            simulate(&mut Gshare::new(10), &trace),
        ];
        for jobs in [1, 2, 5] {
            let cells = vec![
                SweepCell::plain(Pag::paper_baseline(), &trace),
                SweepCell::plain(Bimodal::new(64), &trace),
                SweepCell::plain(Gshare::new(10), &trace),
            ];
            assert_eq!(sweep(cells, jobs).unwrap(), serial, "jobs {jobs}");
        }
    }

    #[test]
    fn resumable_cells_match_plain_simulation() {
        let trace = looped_trace("t", 5, 2000);
        let expected = simulate(&mut Bimodal::new(64), &trace);
        let cells = vec![SweepCell::resumable(
            Bimodal::new(64),
            &trace,
            None,
            Some(500),
            |_| Ok(()),
        )];
        assert_eq!(sweep(cells, 2).unwrap(), vec![expected]);
    }

    #[test]
    fn lowest_index_error_wins_deterministically() {
        let trace = looped_trace("t", 3, 100);
        for jobs in [1, 4] {
            let cells = vec![
                SweepCell::plain(Bimodal::new(64), &trace),
                SweepCell::new("boom-1", || {
                    Err(PredictorError::checkpoint("cell 1 failed"))
                }),
                SweepCell::new("boom-2", || {
                    Err(PredictorError::checkpoint("cell 2 failed"))
                }),
            ];
            let err = sweep(cells, jobs).unwrap_err();
            assert!(
                err.to_string().contains("cell 1 failed"),
                "jobs {jobs}: {err}"
            );
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert_eq!(sweep(Vec::new(), 4).unwrap(), Vec::new());
    }

    #[test]
    fn a_panicking_cell_fails_typed_without_tearing_down_the_sweep() {
        let trace = looped_trace("t", 3, 100);
        for jobs in [1, 3] {
            let cells = vec![
                SweepCell::plain(Bimodal::new(64), &trace),
                SweepCell::new("explodes@t", || panic!("cell blew up")),
                SweepCell::plain(Gshare::new(10), &trace),
            ];
            let err = sweep(cells, jobs).unwrap_err();
            match err {
                PredictorError::CellFailed { label, reason } => {
                    assert_eq!(label, "explodes@t", "jobs {jobs}");
                    assert!(reason.contains("cell blew up"), "jobs {jobs}: {reason}");
                }
                other => panic!("jobs {jobs}: expected CellFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn observed_sweep_matches_plain_and_reports_per_cell_spans() {
        let trace = looped_trace("t", 7, 4000);
        let plain = sweep(
            vec![
                SweepCell::plain(Pag::paper_baseline(), &trace),
                SweepCell::plain(Bimodal::new(64), &trace),
            ],
            2,
        )
        .unwrap();
        let obs = Obs::recording();
        let observed = sweep_observed(
            vec![
                SweepCell::plain(Pag::paper_baseline(), &trace),
                SweepCell::plain(Bimodal::new(64), &trace),
            ],
            2,
            &obs,
        )
        .unwrap();
        assert_eq!(observed, plain);
        let metrics = obs.snapshot().expect("recording observer");
        assert_eq!(metrics.stages.len(), 2, "one span per cell");
        assert!(metrics
            .stages
            .iter()
            .all(|s| s.name.starts_with("sweep:") && s.name.contains('@')));
        let total: u64 = observed.iter().map(|r| r.total).sum();
        let misses: u64 = observed.iter().map(|r| r.mispredictions).sum();
        assert_eq!(metrics.counter("predictor.lookups"), total);
        assert_eq!(metrics.counter("predictor.mispredicts"), misses);
    }

    #[test]
    fn labels_identify_predictor_and_trace() {
        let trace = looped_trace("compress", 3, 10);
        let cell = SweepCell::plain(Bimodal::new(64), &trace);
        assert!(cell.label().contains("compress"), "{}", cell.label());
        assert!(cell.label().contains("bimodal"), "{}", cell.label());
    }
}
