//! First-level-table indexing schemes — the heart of the paper.
//!
//! A conventional two-level predictor indexes its BHT with low-order pc
//! bits, colliding branches that share them (§5: "This leads to
//! contention among branches that share the same low order bits"). The
//! paper's *branch allocation* replaces that hash with a compiler-assigned
//! index carried by the (augmented) branch instruction. In this simulator
//! the assignment travels as an [`AllocatedIndex`] side table, which is
//! exactly how the paper's modified `sim-bpred` consumed it.

use crate::PredictorError;
use bwsa_trace::{BranchId, Pc};
use serde::{Deserialize, Serialize};

/// A compiler-produced static branch → BHT entry assignment.
///
/// Entries are indexed by the dense [`BranchId`] of the analysed trace.
/// Branches outside the map (e.g. filtered-out cold branches) fall back to
/// conventional pc-modulo indexing, mirroring the paper's note that
/// un-annotated branches (library code) keep the old scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatedIndex {
    table_size: usize,
    entries: Vec<Option<u32>>,
}

impl AllocatedIndex {
    /// Creates an assignment into a table of `table_size` entries.
    ///
    /// `entries[id] = Some(e)` sends branch `id` to entry `e`; `None`
    /// falls back to pc-modulo.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError`] if `table_size` is zero or any entry is
    /// out of range.
    pub fn new(table_size: usize, entries: Vec<Option<u32>>) -> Result<Self, PredictorError> {
        if table_size == 0 {
            return Err(PredictorError::InvalidTableSize {
                table: "BHT",
                size: 0,
            });
        }
        for e in entries.iter().flatten() {
            if *e as usize >= table_size {
                return Err(PredictorError::EntryOutOfRange {
                    entry: *e,
                    size: table_size,
                });
            }
        }
        Ok(AllocatedIndex {
            table_size,
            entries,
        })
    }

    /// The BHT size this assignment targets.
    pub fn table_size(&self) -> usize {
        self.table_size
    }

    /// The assigned entry for a branch, if any.
    pub fn entry(&self, id: BranchId) -> Option<u32> {
        self.entries.get(id.index()).copied().flatten()
    }

    /// Number of branches with explicit assignments.
    pub fn assigned_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Iterates `(branch id, entry)` over explicitly assigned branches.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (BranchId::new(i as u32), e)))
    }
}

/// How a branch chooses its first-level-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BhtIndexer {
    /// Conventional hashing: `(pc >> 2) mod size`.
    PcModulo {
        /// Table size.
        size: usize,
    },
    /// The paper's branch allocation: compiler-assigned entries with
    /// pc-modulo fallback for unassigned branches.
    Allocated(AllocatedIndex),
    /// Interference-free: every static branch gets a private entry (the
    /// paper approximates this with a 2M-entry BHT).
    PerBranch,
}

impl BhtIndexer {
    /// Conventional pc-modulo indexing into `size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn pc_modulo(size: usize) -> Self {
        assert!(size > 0, "BHT size must be positive");
        BhtIndexer::PcModulo { size }
    }

    /// The table entry for a branch.
    pub fn index(&self, pc: Pc, id: BranchId) -> usize {
        match self {
            BhtIndexer::PcModulo { size } => pc.table_index(*size),
            BhtIndexer::Allocated(map) => match map.entry(id) {
                Some(e) => e as usize,
                None => pc.table_index(map.table_size()),
            },
            BhtIndexer::PerBranch => id.index(),
        }
    }

    /// The fixed table size, or `None` for the growable per-branch table.
    pub fn table_size(&self) -> Option<usize> {
        match self {
            BhtIndexer::PcModulo { size } => Some(*size),
            BhtIndexer::Allocated(map) => Some(map.table_size()),
            BhtIndexer::PerBranch => None,
        }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            BhtIndexer::PcModulo { size } => format!("pc-modulo/{size}"),
            BhtIndexer::Allocated(map) => format!("allocated/{}", map.table_size()),
            BhtIndexer::PerBranch => "per-branch".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_modulo_uses_word_address() {
        let ix = BhtIndexer::pc_modulo(16);
        assert_eq!(ix.index(Pc::new(0x40), BranchId::new(0)), (0x40 >> 2) % 16);
        assert_eq!(ix.index(Pc::new(0x44), BranchId::new(1)), (0x44 >> 2) % 16);
        assert_eq!(ix.table_size(), Some(16));
    }

    #[test]
    fn allocated_uses_map_with_fallback() {
        let map = AllocatedIndex::new(8, vec![Some(3), None]).unwrap();
        let ix = BhtIndexer::Allocated(map);
        assert_eq!(ix.index(Pc::new(0x1000), BranchId::new(0)), 3);
        // Unassigned branch falls back to (0x1004 >> 2) % 8 = 0x401 % 8.
        assert_eq!(ix.index(Pc::new(0x1004), BranchId::new(1)), 0x401 % 8);
        // Branch beyond the map also falls back.
        assert_eq!(ix.index(Pc::new(0x1008), BranchId::new(9)), 0x402 % 8);
    }

    #[test]
    fn per_branch_is_identity_on_ids() {
        let ix = BhtIndexer::PerBranch;
        assert_eq!(ix.index(Pc::new(0xdead), BranchId::new(7)), 7);
        assert_eq!(ix.table_size(), None);
    }

    #[test]
    fn allocated_rejects_bad_entries() {
        assert_eq!(
            AllocatedIndex::new(4, vec![Some(4)]),
            Err(PredictorError::EntryOutOfRange { entry: 4, size: 4 })
        );
        assert!(AllocatedIndex::new(0, vec![]).is_err());
    }

    #[test]
    fn assigned_count_ignores_fallbacks() {
        let map = AllocatedIndex::new(8, vec![Some(1), None, Some(2)]).unwrap();
        assert_eq!(map.assigned_count(), 2);
    }

    #[test]
    fn labels_are_distinct() {
        let a = BhtIndexer::pc_modulo(1024).label();
        let b = BhtIndexer::Allocated(AllocatedIndex::new(1024, vec![]).unwrap()).label();
        let c = BhtIndexer::PerBranch.label();
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_pc_modulo_panics() {
        BhtIndexer::pc_modulo(0);
    }
}
