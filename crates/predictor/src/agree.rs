//! The agree predictor: counters vote on agreement with a per-branch
//! bias bit, converting destructive aliasing into constructive aliasing.

use crate::{BranchPredictor, HistoryRegister, SaturatingCounter};
use bwsa_trace::{BranchId, Direction, Pc};

/// Agree predictor (Sprangle et al., ISCA 1997 — reference [18] of the
/// paper): each branch carries a *bias bit* (set to its first observed
/// outcome); a gshare-indexed counter table predicts whether the branch
/// will **agree** with its bias. Two aliased branches that are both
/// usually right about their own bias now push the shared counter the
/// same way, neutralising negative interference — the hardware
/// counterpart of what branch allocation achieves by construction.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Agree};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("biased");
/// for i in 0..2000u64 {
///     b.record(0x100 + (i % 8) * 4, i % 8 != 7, i + 1);
/// }
/// let r = simulate(&mut Agree::new(10, 1024), &b.finish());
/// assert!(r.misprediction_rate() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agree {
    history: HistoryRegister,
    counters: Vec<SaturatingCounter>,
    /// Bias bit per pc-hash bucket; `None` until first encounter.
    bias: Vec<Option<Direction>>,
}

impl Agree {
    /// Creates an agree predictor with `history_bits` of global history
    /// (a `2^history_bits` agreement-counter table) and a
    /// `bias_entries`-entry bias-bit table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=24` or `bias_entries` is
    /// zero.
    pub fn new(history_bits: u32, bias_entries: usize) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        assert!(bias_entries > 0, "bias table must be non-empty");
        let history = HistoryRegister::new(history_bits);
        Agree {
            counters: vec![SaturatingCounter::two_bit(); history.pattern_count()],
            bias: vec![None; bias_entries],
            history,
        }
    }

    fn counter_index(&self, pc: Pc) -> usize {
        let mask = (1u64 << self.history.width()) - 1;
        ((self.history.value() ^ (pc.word_index() & mask)) % self.counters.len() as u64) as usize
    }

    fn bias_index(&self, pc: Pc) -> usize {
        (pc.word_index() % self.bias.len() as u64) as usize
    }

    fn bias_of(&mut self, pc: Pc, fallback: Direction) -> Direction {
        self.bias[self.bias_index(pc)].unwrap_or(fallback)
    }
}

impl BranchPredictor for Agree {
    fn name(&self) -> String {
        format!("agree/{}", self.history.width())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        let agree = self.counters[self.counter_index(pc)].predict().is_taken();
        let bias = self.bias_of(pc, Direction::Taken);
        if agree {
            bias
        } else {
            bias.flipped()
        }
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        let bias_idx = self.bias_index(pc);
        let bias = *self.bias[bias_idx].get_or_insert(outcome);
        let idx = self.counter_index(pc);
        self.counters[idx].update(Direction::from_taken(outcome == bias));
        self.history.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Gshare};
    use bwsa_trace::TraceBuilder;

    #[test]
    fn bias_bit_is_set_on_first_outcome() {
        let mut p = Agree::new(4, 8);
        let pc = Pc::new(0x40);
        p.update(pc, BranchId::new(0), Direction::NotTaken);
        assert_eq!(p.bias[p.bias_index(pc)], Some(Direction::NotTaken));
        // Counters start weakly "disagree"... prediction should flip the
        // not-taken bias only if the counter says disagree.
        let d = p.predict(pc, BranchId::new(0));
        assert!(d.is_taken() || !d.is_taken()); // total: just exercises the path
    }

    #[test]
    fn aliased_opposite_bias_branches_coexist() {
        // Two branches alias in the counter table but have opposite fixed
        // directions; agree converts both into "agree" updates.
        let mut b = TraceBuilder::new("alias");
        for i in 0..4000u64 {
            if i % 2 == 0 {
                b.record(0x100, true, i + 1);
            } else {
                b.record(0x104, false, i + 1);
            }
        }
        let trace = b.finish();
        let agree = simulate(&mut Agree::new(2, 1024), &trace);
        let gshare = simulate(&mut Gshare::new(2), &trace);
        assert!(
            agree.misprediction_rate() <= gshare.misprediction_rate(),
            "agree {} vs gshare {}",
            agree.misprediction_rate(),
            gshare.misprediction_rate()
        );
        assert!(agree.misprediction_rate() < 0.01);
    }

    #[test]
    fn name_reports_width() {
        assert_eq!(Agree::new(10, 64).name(), "agree/10");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bias_table_rejected() {
        Agree::new(4, 0);
    }
}
