//! PAp: per-address histories *and* per-entry pattern tables.

use crate::{BhtIndexer, BranchHistoryTable, BranchPredictor, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// PAp two-level predictor (Yeh & Patt): like [`crate::Pag`], but each
/// first-level entry owns a private pattern table, eliminating
/// second-level interference at a steep area cost.
///
/// Supports the same [`BhtIndexer`] family as PAg; per-branch indexing
/// grows both levels on demand.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, BhtIndexer, Pap};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("loop");
/// for i in 0..3000u64 {
///     b.record(0x400, i % 7 != 6, i + 1);
/// }
/// let r = simulate(&mut Pap::new(BhtIndexer::pc_modulo(64), 8), &b.finish());
/// assert!(r.misprediction_rate() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pap {
    indexer: BhtIndexer,
    bht: BranchHistoryTable,
    phts: Vec<PatternHistoryTable>,
    history_bits: u32,
}

impl Pap {
    /// Creates a PAp with the given indexing scheme and history width.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=16` (each entry owns a
    /// `2^history_bits` counter table, so widths are kept modest).
    pub fn new(indexer: BhtIndexer, history_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&history_bits),
            "history bits {history_bits} outside 1..=16"
        );
        let (bht, phts) = match indexer.table_size() {
            Some(size) => (
                BranchHistoryTable::new(size, history_bits),
                vec![PatternHistoryTable::new(1 << history_bits); size],
            ),
            None => (BranchHistoryTable::growable(history_bits), Vec::new()),
        };
        Pap {
            indexer,
            bht,
            phts,
            history_bits,
        }
    }

    fn pht_mut(&mut self, entry: usize) -> &mut PatternHistoryTable {
        if entry >= self.phts.len() {
            self.phts
                .resize(entry + 1, PatternHistoryTable::new(1 << self.history_bits));
        }
        &mut self.phts[entry]
    }
}

impl BranchPredictor for Pap {
    fn name(&self) -> String {
        format!("PAp[{}]h{}", self.indexer.label(), self.history_bits)
    }

    fn predict(&mut self, pc: Pc, id: BranchId) -> Direction {
        let entry = self.indexer.index(pc, id);
        let history = self.bht.history(entry);
        self.pht_mut(entry).predict(history)
    }

    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction) {
        let entry = self.indexer.index(pc, id);
        let history = self.bht.history(entry);
        self.pht_mut(entry).update(history, outcome);
        self.bht.record(entry, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bwsa_trace::TraceBuilder;

    #[test]
    fn private_pattern_tables_avoid_second_level_interference() {
        // Branch A repeats T,T,N; branch B repeats T,N,N. With 2-bit
        // histories the windows TN and NT demand *different* successors
        // for A and B, so PAg's shared PHT thrashes on them while PAp's
        // private tables learn both periods exactly.
        let pat_a = [true, true, false];
        let pat_b = [true, false, false];
        let mut b = TraceBuilder::new("anti");
        for i in 0..6000u64 {
            if i % 2 == 0 {
                b.record(0x100, pat_a[(i as usize / 2) % 3], i + 1);
            } else {
                b.record(0x104, pat_b[(i as usize / 2) % 3], i + 1);
            }
        }
        let trace = b.finish();
        let pap = simulate(&mut Pap::new(BhtIndexer::PerBranch, 2), &trace);
        let pag = simulate(&mut crate::Pag::new(BhtIndexer::PerBranch, 2), &trace);
        assert!(
            pap.misprediction_rate() + 0.05 < pag.misprediction_rate(),
            "pap {} vs pag {}",
            pap.misprediction_rate(),
            pag.misprediction_rate()
        );
        assert!(
            pap.misprediction_rate() < 0.01,
            "rate {}",
            pap.misprediction_rate()
        );
    }

    #[test]
    fn growable_variant_expands_both_levels() {
        let mut b = TraceBuilder::new("two");
        for i in 0..100u64 {
            b.record(0x100 + (i % 2) * 4, true, i + 1);
        }
        let trace = b.finish();
        let mut p = Pap::new(BhtIndexer::PerBranch, 4);
        let _ = simulate(&mut p, &trace);
        assert_eq!(p.bht.len(), 2);
        assert_eq!(p.phts.len(), 2);
    }

    #[test]
    fn name_mentions_scheme() {
        assert_eq!(
            Pap::new(BhtIndexer::pc_modulo(32), 6).name(),
            "PAp[pc-modulo/32]h6"
        );
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn oversized_history_rejected() {
        Pap::new(BhtIndexer::pc_modulo(4), 17);
    }
}
