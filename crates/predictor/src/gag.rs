//! GAg: global history, global pattern table.

use crate::{BranchPredictor, HistoryRegister, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// GAg (Yeh & Patt): one global history register indexes one global
/// pattern history table of two-bit counters.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Gag};
/// use bwsa_trace::TraceBuilder;
///
/// // A strict global alternation is perfectly capturable by GAg.
/// let mut b = TraceBuilder::new("alt");
/// for i in 0..2000u64 {
///     b.record(0x400 + (i % 2) * 4, i % 2 == 0, i + 1);
/// }
/// let r = simulate(&mut Gag::new(8), &b.finish());
/// assert!(r.misprediction_rate() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gag {
    history: HistoryRegister,
    pht: PatternHistoryTable,
}

impl Gag {
    /// Creates a GAg with `history_bits` of global history and a
    /// `2^history_bits`-entry PHT.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=24` (a 16M-entry PHT is
    /// the sane ceiling for this simulator).
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        let history = HistoryRegister::new(history_bits);
        let pht = PatternHistoryTable::new(history.pattern_count());
        Gag { history, pht }
    }
}

impl BranchPredictor for Gag {
    fn name(&self) -> String {
        format!("GAg/{}", self.history.width())
    }

    fn predict(&mut self, _pc: Pc, _id: BranchId) -> Direction {
        self.pht.predict(self.history.value())
    }

    fn update(&mut self, _pc: Pc, _id: BranchId, outcome: Direction) {
        self.pht.update(self.history.value(), outcome);
        self.history.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_global_periodicity() {
        let mut p = Gag::new(4);
        let pc = Pc::new(0x100);
        let id = BranchId::new(0);
        // Train T,N,T,N...: after warmup predictions should track it.
        for i in 0..64 {
            p.update(pc, id, Direction::from_taken(i % 2 == 0));
        }
        let mut correct = 0;
        for i in 64..96 {
            let actual = Direction::from_taken(i % 2 == 0);
            if p.predict(pc, id) == actual {
                correct += 1;
            }
            p.update(pc, id, actual);
        }
        assert!(correct >= 30, "correct = {correct}/32");
    }

    #[test]
    fn name_reports_history_width() {
        assert_eq!(Gag::new(12).name(), "GAg/12");
    }

    #[test]
    #[should_panic(expected = "outside 1..=24")]
    fn oversized_history_rejected() {
        Gag::new(25);
    }
}
