//! GAp: global history, per-address pattern tables.

use crate::{BranchPredictor, HistoryRegister, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// GAp (Yeh & Patt): one global history register, but each pc-hash bucket
/// owns a private pattern table — the second level is immune to
/// cross-branch interference while the first level stays global.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Gap};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("loops");
/// for i in 0..4000u64 {
///     b.record(0x100 + (i % 2) * 4, i % 6 < 4, i + 1);
/// }
/// let r = simulate(&mut Gap::new(8, 64), &b.finish());
/// assert!(r.misprediction_rate() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gap {
    history: HistoryRegister,
    tables: Vec<PatternHistoryTable>,
}

impl Gap {
    /// Creates a GAp with `history_bits` of global history and
    /// `address_tables` per-address pattern tables (each
    /// `2^history_bits` two-bit counters).
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=16` or `address_tables`
    /// is zero.
    pub fn new(history_bits: u32, address_tables: usize) -> Self {
        assert!(
            (1..=16).contains(&history_bits),
            "history bits {history_bits} outside 1..=16"
        );
        assert!(address_tables > 0, "need at least one address table");
        let history = HistoryRegister::new(history_bits);
        Gap {
            tables: vec![PatternHistoryTable::new(history.pattern_count()); address_tables],
            history,
        }
    }

    fn table_index(&self, pc: Pc) -> usize {
        (pc.word_index() % self.tables.len() as u64) as usize
    }
}

impl BranchPredictor for Gap {
    fn name(&self) -> String {
        format!("GAp/{}x{}", self.history.width(), self.tables.len())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        self.tables[self.table_index(pc)].predict(self.history.value())
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        let t = self.table_index(pc);
        self.tables[t].update(self.history.value(), outcome);
        self.history.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_address_tables_are_independent() {
        let mut p = Gap::new(4, 4);
        let a = Pc::new(0x100); // table 0 (word 0x40 % 4 = 0)
        let b = Pc::new(0x104); // table 1
                                // Same (zero) history, opposite outcomes: both learnable.
        for _ in 0..4 {
            // Reset history to 0 by pushing not-taken 4 times via branch b
            // after each training round would complicate things; instead
            // train alternately and just check the tables differ.
            p.update(a, BranchId::new(0), Direction::Taken);
        }
        let t0 = p.tables[p.table_index(a)].clone();
        let t1 = p.tables[p.table_index(b)].clone();
        assert_ne!(t0, t1, "only a's table was trained");
    }

    #[test]
    fn name_reports_geometry() {
        assert_eq!(Gap::new(8, 16).name(), "GAp/8x16");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_tables_rejected() {
        Gap::new(4, 0);
    }
}
