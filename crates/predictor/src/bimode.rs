//! The bi-mode predictor: banked pattern tables selected by per-branch
//! bias.
//!
//! Lee, Chen & Mudge's bi-mode predictor (1997) is the hardware
//! contemporary of the paper's software approach to the same problem —
//! destructive aliasing in prediction tables. It splits the second level
//! into a *taken-leaning* and a *not-taken-leaning* bank, both
//! gshare-indexed, with a pc-indexed **choice** table steering each
//! branch to the bank matching its bias. Branches of opposite bias that
//! alias in the banks no longer fight, because they train different
//! banks.
//!
//! Comparing [`BiMode`] against an allocation-indexed
//! [`crate::Pag`] shows how far pure hardware gets versus
//! compiler-directed table management.

use crate::{BranchPredictor, HistoryRegister, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// Bi-mode predictor: choice PHT + two direction banks.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, BiMode};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("biased-mix");
/// for i in 0..4000u64 {
///     // Opposite-bias branches that would destructively alias.
///     b.record(0x100 + (i % 2) * 4, i % 2 == 0, i + 1);
/// }
/// let r = simulate(&mut BiMode::new(10, 1024), &b.finish());
/// assert!(r.misprediction_rate() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiMode {
    history: HistoryRegister,
    taken_bank: PatternHistoryTable,
    not_taken_bank: PatternHistoryTable,
    choice: PatternHistoryTable,
}

impl BiMode {
    /// Creates a bi-mode predictor: each direction bank has
    /// `2^history_bits` counters (gshare-indexed), the choice table has
    /// `choice_entries` pc-indexed counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is outside `1..=24` or `choice_entries`
    /// is zero.
    pub fn new(history_bits: u32, choice_entries: usize) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        let history = HistoryRegister::new(history_bits);
        BiMode {
            taken_bank: PatternHistoryTable::new(history.pattern_count()),
            not_taken_bank: PatternHistoryTable::new(history.pattern_count()),
            choice: PatternHistoryTable::new(choice_entries),
            history,
        }
    }

    fn bank_index(&self, pc: Pc) -> u64 {
        let mask = (1u64 << self.history.width()) - 1;
        self.history.value() ^ (pc.word_index() & mask)
    }

    /// The per-branch bank choice (taken bank iff the choice counter
    /// leans taken).
    fn chooses_taken_bank(&self, pc: Pc) -> bool {
        self.choice.predict(pc.word_index()).is_taken()
    }
}

impl BranchPredictor for BiMode {
    fn name(&self) -> String {
        format!("bi-mode/{}", self.history.width())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        let idx = self.bank_index(pc);
        if self.chooses_taken_bank(pc) {
            self.taken_bank.predict(idx)
        } else {
            self.not_taken_bank.predict(idx)
        }
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        let idx = self.bank_index(pc);
        let use_taken_bank = self.chooses_taken_bank(pc);
        let bank_prediction = if use_taken_bank {
            self.taken_bank.predict(idx)
        } else {
            self.not_taken_bank.predict(idx)
        };
        // Only the chosen bank trains — the other bank's state for this
        // index is preserved for branches of the opposite bias.
        if use_taken_bank {
            self.taken_bank.update(idx, outcome);
        } else {
            self.not_taken_bank.update(idx, outcome);
        }
        // Choice trains toward the outcome, except when the choice was
        // "wrong" but the chosen bank still predicted correctly (the
        // classic bi-mode partial-update rule).
        let choice_direction = Direction::from_taken(use_taken_bank);
        let keep_choice = choice_direction != outcome && bank_prediction == outcome;
        if !keep_choice {
            self.choice.update(pc.word_index(), outcome);
        }
        self.history.push(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Gshare};
    use bwsa_trace::TraceBuilder;

    /// Two branches with opposite fixed directions whose gshare indices
    /// collide constantly.
    fn anti_aliased_trace(n: u64) -> bwsa_trace::Trace {
        let mut b = TraceBuilder::new("anti");
        for i in 0..n {
            if i % 2 == 0 {
                b.record(0x100, true, i + 1);
            } else {
                b.record(0x104, false, i + 1);
            }
        }
        b.finish()
    }

    #[test]
    fn banks_separate_opposite_bias_aliases() {
        let trace = anti_aliased_trace(4000);
        // Tiny history → heavy aliasing. Bi-mode should shrug it off;
        // plain gshare thrashes.
        let bimode = simulate(&mut BiMode::new(2, 64), &trace);
        let gshare = simulate(&mut Gshare::new(2), &trace);
        assert!(
            bimode.misprediction_rate() < 0.05,
            "bi-mode rate {}",
            bimode.misprediction_rate()
        );
        assert!(bimode.misprediction_rate() <= gshare.misprediction_rate());
    }

    #[test]
    fn learns_simple_bias() {
        let mut p = BiMode::new(4, 16);
        let pc = Pc::new(0x40);
        for _ in 0..8 {
            p.update(pc, BranchId::new(0), Direction::Taken);
        }
        assert!(p.predict(pc, BranchId::new(0)).is_taken());
    }

    #[test]
    fn partial_update_preserves_choice_on_correct_bank() {
        let mut p = BiMode::new(4, 16);
        let pc = Pc::new(0x40);
        // Drive the choice strongly not-taken.
        for _ in 0..4 {
            p.update(pc, BranchId::new(0), Direction::NotTaken);
        }
        assert!(!p.chooses_taken_bank(pc));
        // A taken outcome that the not-taken bank happens to predict
        // correctly (after training it) must not flip the choice.
        // First, train the not-taken bank at the current index to predict
        // taken by repeated taken outcomes — but those also move the
        // choice unless the bank is already correct. Verify the rule
        // directly instead: one taken outcome with an untrained bank
        // moves the choice (bank was wrong), i.e. the counter changed.
        let before = p.choice.counter(pc.word_index()).value();
        p.update(pc, BranchId::new(0), Direction::Taken);
        let after = p.choice.counter(pc.word_index()).value();
        assert_ne!(before, after, "bank wrong → choice trains");
    }

    #[test]
    fn name_reports_width() {
        assert_eq!(BiMode::new(12, 1024).name(), "bi-mode/12");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_choice_entries_rejected() {
        BiMode::new(4, 0);
    }
}
