//! Trace-driven simulation of predictors — the `sim-bpred` loop.

use crate::{checkpoint, BranchPredictor, Checkpointable, PredictorError};
use bwsa_trace::codec::{self, Cursor};
use bwsa_trace::{BranchId, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate result of simulating one predictor over one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Predictor label.
    pub predictor: String,
    /// Trace label.
    pub trace: String,
    /// Dynamic branches simulated.
    pub total: u64,
    /// Mispredicted dynamic branches.
    pub mispredictions: u64,
}

impl SimResult {
    /// Fraction of dynamic branches mispredicted, in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.total as f64
        }
    }

    /// Fraction predicted correctly, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.misprediction_rate()
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {}/{} mispredicted ({:.2}%)",
            self.predictor,
            self.trace,
            self.mispredictions,
            self.total,
            100.0 * self.misprediction_rate()
        )
    }
}

/// [`SimResult`] plus per-static-branch misprediction counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailedSimResult {
    /// The aggregate result.
    pub summary: SimResult,
    /// `misses[id]` / `executions[id]` per static branch.
    pub misses: Vec<u64>,
    /// Dynamic executions per static branch.
    pub executions: Vec<u64>,
}

impl DetailedSimResult {
    /// Per-branch misprediction rate, or `None` if the branch never ran.
    pub fn branch_rate(&self, id: BranchId) -> Option<f64> {
        let e = *self.executions.get(id.index())?;
        if e == 0 {
            None
        } else {
            Some(self.misses[id.index()] as f64 / e as f64)
        }
    }
}

/// A simple pipeline cost model translating misprediction counts into
/// cycles — the paper's motivation ("a wide issue and deeply pipelined
/// processor demands a highly accurate branch prediction mechanism")
/// made quantitative.
///
/// The model charges one cycle per `issue_width` instructions plus a
/// fixed `mispredict_penalty` flush per mispredicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Instructions issued per cycle when not stalled.
    pub issue_width: u32,
    /// Flush penalty in cycles per misprediction.
    pub mispredict_penalty: u32,
}

impl Default for PipelineModel {
    /// A late-90s wide core: 4-wide issue, 7-cycle flush.
    fn default() -> Self {
        PipelineModel {
            issue_width: 4,
            mispredict_penalty: 7,
        }
    }
}

impl PipelineModel {
    /// Estimated cycles to run `instructions` with `mispredictions`
    /// branch flushes.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn cycles(&self, instructions: u64, mispredictions: u64) -> u64 {
        assert!(self.issue_width > 0, "issue width must be positive");
        instructions.div_ceil(u64::from(self.issue_width))
            + mispredictions * u64::from(self.mispredict_penalty)
    }

    /// Speedup of predictor `better` over `worse` on the same run
    /// (`> 1.0` means `better` is faster).
    ///
    /// # Panics
    ///
    /// Panics if the two results cover different instruction streams
    /// (different trace names or totals).
    pub fn speedup(&self, instructions: u64, better: &SimResult, worse: &SimResult) -> f64 {
        assert_eq!(
            better.trace, worse.trace,
            "results must come from the same trace"
        );
        assert_eq!(
            better.total, worse.total,
            "results must cover the same branches"
        );
        self.cycles(instructions, worse.mispredictions) as f64
            / self.cycles(instructions, better.mispredictions) as f64
    }
}

/// Runs a predictor over a trace: predict, compare, train — once per
/// dynamic branch, in order.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, StaticPredictor};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("t");
/// b.record(0x40, true, 1).record(0x40, false, 2);
/// let r = simulate(&mut StaticPredictor::always_taken(), &b.finish());
/// assert_eq!(r.total, 2);
/// assert_eq!(r.mispredictions, 1);
/// ```
pub fn simulate<P: BranchPredictor + ?Sized>(predictor: &mut P, trace: &Trace) -> SimResult {
    bwsa_resilience::failpoint!("predictor.simulate");
    let mut mispredictions = 0u64;
    for (id, rec) in trace.indexed_records() {
        let predicted = predictor.observe(rec.pc, id, rec.direction);
        if predicted != rec.direction {
            mispredictions += 1;
        }
    }
    SimResult {
        predictor: predictor.name(),
        trace: trace.meta().name.clone(),
        total: trace.len() as u64,
        mispredictions,
    }
}

/// [`simulate`] with a `simulate` span and `predictor.lookups`,
/// `predictor.mispredicts`, and (for schemes that track it)
/// `predictor.interference_events` counters reported into `obs`.
///
/// The counters are read off the finished result, never threaded through
/// the hot loop, so the simulation is bit-identical with or without a
/// recording observer.
pub fn simulate_observed<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    obs: &bwsa_obs::Obs,
) -> SimResult {
    let events_before = predictor.interference_events();
    let span = obs.span("simulate");
    let result = simulate(predictor, trace);
    span.finish();
    obs.add("predictor.lookups", result.total);
    obs.add("predictor.mispredicts", result.mispredictions);
    if let (Some(before), Some(after)) = (events_before, predictor.interference_events()) {
        obs.add("predictor.interference_events", after - before);
    }
    result
}

/// Like [`simulate`] but also accumulates per-static-branch counts.
pub fn simulate_detailed<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> DetailedSimResult {
    let mut misses = Vec::new();
    let mut executions = Vec::new();
    let summary = simulate_detailed_into(predictor, trace, &mut misses, &mut executions);
    DetailedSimResult {
        summary,
        misses,
        executions,
    }
}

/// [`simulate_detailed`] writing its per-branch counts into caller-owned
/// buffers, so a sweep running many cells can reuse the same two
/// allocations instead of paying a pair of fresh `Vec`s per cell.
///
/// The buffers are cleared and resized to the trace's static branch
/// count; on return `misses[id]` / `executions[id]` hold exactly what
/// [`simulate_detailed`] would have produced.
pub fn simulate_detailed_into<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
    misses: &mut Vec<u64>,
    executions: &mut Vec<u64>,
) -> SimResult {
    let n = trace.static_branch_count();
    misses.clear();
    misses.resize(n, 0);
    executions.clear();
    executions.resize(n, 0);
    let mut mispredictions = 0u64;
    for (id, rec) in trace.indexed_records() {
        let predicted = predictor.observe(rec.pc, id, rec.direction);
        executions[id.index()] += 1;
        if predicted != rec.direction {
            mispredictions += 1;
            misses[id.index()] += 1;
        }
    }
    SimResult {
        predictor: predictor.name(),
        trace: trace.meta().name.clone(),
        total: trace.len() as u64,
        mispredictions,
    }
}

/// A point-in-time snapshot of a running simulation: which predictor on
/// which trace, how far it got, the miss count so far, and the predictor's
/// serialised tables.
///
/// Produced by [`simulate_resumable`] every `checkpoint_every` records and
/// consumed by a later [`simulate_resumable`] call to continue from that
/// point. The byte encoding is self-validating: magic `BWCK`, a format
/// version, a kind byte distinguishing simulation checkpoints from the
/// analysis checkpoints in the core crate, and a trailing CRC32 so a
/// checkpoint truncated by the very crash it guards against is rejected
/// rather than trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCheckpoint {
    /// Name of the predictor that produced the state (encodes its
    /// configuration).
    pub predictor: String,
    /// Name of the trace being simulated.
    pub trace: String,
    /// Dynamic branches already consumed.
    pub records_consumed: u64,
    /// Mispredictions among the consumed records.
    pub mispredictions: u64,
    /// Opaque predictor state from [`Checkpointable::save_state`].
    pub predictor_state: Vec<u8>,
}

/// Magic prefix shared by all checkpoint files in the workspace.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"BWCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;
/// Kind byte for simulation checkpoints (analysis checkpoints use 2).
pub const CHECKPOINT_KIND_SIM: u8 = 1;

impl SimCheckpoint {
    /// Serialises the checkpoint, appending a CRC32 of everything before
    /// it.
    pub fn to_bytes(&self) -> Vec<u8> {
        bwsa_resilience::failpoint!("predictor.checkpoint_save");
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.push(CHECKPOINT_VERSION);
        buf.push(CHECKPOINT_KIND_SIM);
        checkpoint::put_str(&mut buf, &self.predictor);
        checkpoint::put_str(&mut buf, &self.trace);
        codec::put_varint(&mut buf, self.records_consumed);
        codec::put_varint(&mut buf, self.mispredictions);
        checkpoint::put_bytes(&mut buf, &self.predictor_state);
        let crc = codec::crc32(&buf);
        codec::put_u32_le(&mut buf, crc);
        buf
    }

    /// Parses and validates bytes produced by [`SimCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::Checkpoint`] on a bad magic, unsupported
    /// version, wrong kind, CRC mismatch, or malformed payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PredictorError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 2 + 4 {
            return Err(PredictorError::checkpoint(
                "checkpoint too short to be valid",
            ));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split_at(len-4)"));
        if codec::crc32(body) != stored {
            return Err(PredictorError::checkpoint(
                "checkpoint CRC mismatch — file is corrupt or truncated",
            ));
        }
        let mut cur = Cursor::new(body);
        let magic = cur.take(4).map_err(checkpoint::malformed)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(PredictorError::checkpoint(
                "not a checkpoint file (bad magic)",
            ));
        }
        let version = cur.get_u8().map_err(checkpoint::malformed)?;
        if version != CHECKPOINT_VERSION {
            return Err(PredictorError::checkpoint(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let kind = cur.get_u8().map_err(checkpoint::malformed)?;
        if kind != CHECKPOINT_KIND_SIM {
            return Err(PredictorError::checkpoint(format!(
                "checkpoint kind {kind} is not a simulation checkpoint"
            )));
        }
        let predictor = checkpoint::get_str(&mut cur)?;
        let trace = checkpoint::get_str(&mut cur)?;
        let records_consumed = cur.get_varint().map_err(checkpoint::malformed)?;
        let mispredictions = cur.get_varint().map_err(checkpoint::malformed)?;
        let predictor_state = checkpoint::get_bytes(&mut cur)?;
        checkpoint::ensure_empty(&cur)?;
        Ok(SimCheckpoint {
            predictor,
            trace,
            records_consumed,
            mispredictions,
            predictor_state,
        })
    }
}

/// [`simulate`] with kill-and-resume support.
///
/// When `resume` is given, the predictor's state is restored from it and
/// simulation continues at record `records_consumed`; the final result is
/// bit-identical to an uninterrupted run. When `checkpoint_every` is
/// `Some(n)`, `on_checkpoint` is invoked with a fresh [`SimCheckpoint`]
/// after every `n` consumed records (skipping the end of the trace, where
/// a checkpoint would be useless).
///
/// # Errors
///
/// Returns [`PredictorError::Checkpoint`] when `resume` was produced by a
/// different predictor configuration or trace, or lies beyond the end of
/// the trace; also propagates any error from `on_checkpoint`.
pub fn simulate_resumable<P, F>(
    predictor: &mut P,
    trace: &Trace,
    resume: Option<&SimCheckpoint>,
    checkpoint_every: Option<u64>,
    mut on_checkpoint: F,
) -> Result<SimResult, PredictorError>
where
    P: Checkpointable + ?Sized,
    F: FnMut(&SimCheckpoint) -> Result<(), PredictorError>,
{
    let name = predictor.name();
    let trace_name = trace.meta().name.clone();
    let total = trace.len() as u64;
    let mut consumed = 0u64;
    let mut mispredictions = 0u64;
    if let Some(ck) = resume {
        if ck.predictor != name {
            return Err(PredictorError::checkpoint(format!(
                "checkpoint is for predictor {:?}, not {name:?}",
                ck.predictor
            )));
        }
        if ck.trace != trace_name {
            return Err(PredictorError::checkpoint(format!(
                "checkpoint is for trace {:?}, not {trace_name:?}",
                ck.trace
            )));
        }
        if ck.records_consumed > total {
            return Err(PredictorError::checkpoint(format!(
                "checkpoint consumed {} records but the trace has only {total}",
                ck.records_consumed
            )));
        }
        predictor.load_state(&ck.predictor_state)?;
        consumed = ck.records_consumed;
        mispredictions = ck.mispredictions;
    }
    let every = checkpoint_every.filter(|&n| n > 0);
    for (id, rec) in trace.indexed_records().skip(consumed as usize) {
        let predicted = predictor.observe(rec.pc, id, rec.direction);
        if predicted != rec.direction {
            mispredictions += 1;
        }
        consumed += 1;
        if let Some(n) = every {
            if consumed.is_multiple_of(n) && consumed < total {
                on_checkpoint(&SimCheckpoint {
                    predictor: name.clone(),
                    trace: trace_name.clone(),
                    records_consumed: consumed,
                    mispredictions,
                    predictor_state: predictor.save_state(),
                })?;
            }
        }
    }
    Ok(SimResult {
        predictor: name,
        trace: trace_name,
        total,
        mispredictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticPredictor;
    use bwsa_trace::TraceBuilder;

    fn half_taken_trace() -> Trace {
        let mut b = TraceBuilder::new("half");
        for i in 0..10u64 {
            b.record(0x100 + (i % 2) * 4, i % 2 == 0, i + 1);
        }
        b.finish()
    }

    #[test]
    fn counts_are_exact() {
        let trace = half_taken_trace();
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(r.total, 10);
        assert_eq!(r.mispredictions, 5);
        assert_eq!(r.misprediction_rate(), 0.5);
        assert_eq!(r.accuracy(), 0.5);
    }

    #[test]
    fn detailed_splits_by_branch() {
        let trace = half_taken_trace();
        let d = simulate_detailed(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(d.summary.mispredictions, 5);
        assert_eq!(d.executions, vec![5, 5]);
        assert_eq!(d.misses, vec![0, 5]);
        assert_eq!(d.branch_rate(BranchId::new(0)), Some(0.0));
        assert_eq!(d.branch_rate(BranchId::new(1)), Some(1.0));
        assert_eq!(d.branch_rate(BranchId::new(9)), None);
    }

    #[test]
    fn empty_trace_is_zero_rate() {
        let trace = Trace::new("empty");
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(r.total, 0);
        assert_eq!(r.misprediction_rate(), 0.0);
    }

    #[test]
    fn pipeline_model_charges_issue_and_flushes() {
        let m = PipelineModel {
            issue_width: 4,
            mispredict_penalty: 10,
        };
        assert_eq!(m.cycles(100, 0), 25);
        assert_eq!(m.cycles(100, 3), 55);
        assert_eq!(m.cycles(101, 0), 26, "partial issue group rounds up");
    }

    #[test]
    fn speedup_compares_same_run() {
        let trace = half_taken_trace();
        let better = simulate(&mut crate::Bimodal::new(16), &trace);
        let worse = simulate(&mut StaticPredictor::always_not_taken(), &trace);
        let m = PipelineModel::default();
        let s = m.speedup(1000, &better, &worse);
        assert!(s >= 1.0, "fewer mispredictions must not slow down: {s}");
    }

    #[test]
    #[should_panic(expected = "same trace")]
    fn speedup_rejects_mismatched_traces() {
        let a = simulate(&mut StaticPredictor::always_taken(), &half_taken_trace());
        let mut other = Trace::new("different");
        other
            .push(bwsa_trace::BranchRecord::from_raw(0x4, true, 1))
            .unwrap();
        let b = simulate(&mut StaticPredictor::always_taken(), &other);
        PipelineModel::default().speedup(10, &a, &b);
    }

    #[test]
    fn display_shows_percentages() {
        let trace = half_taken_trace();
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert!(r.to_string().contains("50.00%"));
    }

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 7;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x2000 + (lcg >> 45) % 23 * 4, (lcg >> 13) & 3 != 0, i + 1);
        }
        b.finish()
    }

    #[test]
    fn resumable_without_checkpointing_matches_simulate() {
        let trace = busy_trace(3000);
        let plain = simulate(&mut crate::Pag::paper_baseline(), &trace);
        let resumable = simulate_resumable(
            &mut crate::Pag::paper_baseline(),
            &trace,
            None,
            None,
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(plain, resumable);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let trace = busy_trace(3000);
        let uninterrupted = simulate(&mut crate::Gshare::new(10), &trace);

        // First run: capture every checkpoint, as if we crashed later.
        let mut checkpoints = Vec::new();
        let _ = simulate_resumable(&mut crate::Gshare::new(10), &trace, None, Some(700), |ck| {
            checkpoints.push(ck.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(checkpoints.len(), 4, "3000/700 interior checkpoints");

        // Resume from each checkpoint with a *fresh* predictor.
        for ck in &checkpoints {
            let bytes = ck.to_bytes();
            let restored = SimCheckpoint::from_bytes(&bytes).unwrap();
            assert_eq!(&restored, ck, "serialisation round-trips");
            let mut fresh = crate::Gshare::new(10);
            let resumed =
                simulate_resumable(&mut fresh, &trace, Some(&restored), None, |_| Ok(())).unwrap();
            assert_eq!(
                resumed, uninterrupted,
                "resume from record {}",
                ck.records_consumed
            );
        }
    }

    #[test]
    fn checkpoints_skip_the_end_of_trace() {
        let trace = busy_trace(1000);
        let mut count = 0;
        let _ = simulate_resumable(
            &mut crate::Bimodal::new(64),
            &trace,
            None,
            Some(500),
            |_| {
                count += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(count, 1, "the checkpoint at record 1000 is elided");
    }

    #[test]
    fn resume_rejects_mismatches() {
        let trace = busy_trace(200);
        let mut checkpoints = Vec::new();
        let _ = simulate_resumable(
            &mut crate::Bimodal::new(64),
            &trace,
            None,
            Some(100),
            |ck| {
                checkpoints.push(ck.clone());
                Ok(())
            },
        )
        .unwrap();
        let ck = &checkpoints[0];
        // Wrong predictor configuration.
        let err = simulate_resumable(&mut crate::Bimodal::new(32), &trace, Some(ck), None, |_| {
            Ok(())
        })
        .unwrap_err();
        assert!(err.to_string().contains("predictor"), "{err}");
        // Wrong trace.
        let mut renamed = busy_trace(200);
        renamed.meta_mut().name = "other".into();
        let err = simulate_resumable(
            &mut crate::Bimodal::new(64),
            &renamed,
            Some(ck),
            None,
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("trace"), "{err}");
        // Checkpoint beyond the end of the trace.
        let mut ahead = ck.clone();
        ahead.records_consumed = 9999;
        let err = simulate_resumable(
            &mut crate::Bimodal::new(64),
            &trace,
            Some(&ahead),
            None,
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("records"), "{err}");
    }

    #[test]
    fn observed_simulation_is_identical_and_counts_its_work() {
        let mut b = TraceBuilder::new("obs");
        for i in 0..3000u64 {
            let pc = if i % 2 == 0 { 0x100 } else { 0x104 };
            b.record(pc, i % 3 != 0, i + 1);
        }
        let trace = b.finish();
        let plain = simulate(
            &mut crate::Pag::new(crate::BhtIndexer::pc_modulo(1), 4),
            &trace,
        );
        let obs = bwsa_obs::Obs::recording();
        let mut pag = crate::Pag::new(crate::BhtIndexer::pc_modulo(1), 4);
        let observed = simulate_observed(&mut pag, &trace, &obs);
        assert_eq!(observed, plain);
        let metrics = obs.snapshot().expect("recording observer");
        assert_eq!(metrics.counter("predictor.lookups"), observed.total);
        assert_eq!(
            metrics.counter("predictor.mispredicts"),
            observed.mispredictions
        );
        assert_eq!(
            metrics.counter("predictor.interference_events"),
            pag.interference_events()
        );
        assert!(
            metrics.stage("simulate").is_some(),
            "simulate span recorded"
        );
    }

    #[test]
    fn predictors_without_interference_tracking_report_no_counter() {
        let trace = {
            let mut b = TraceBuilder::new("t");
            for i in 0..100u64 {
                b.record(0x100, i % 2 == 0, i + 1);
            }
            b.finish()
        };
        let obs = bwsa_obs::Obs::recording();
        simulate_observed(&mut crate::Bimodal::new(16), &trace, &obs);
        let metrics = obs.snapshot().expect("recording observer");
        assert!(!metrics
            .counters
            .contains_key("predictor.interference_events"));
    }

    /// The fused `observe` loop must be observably identical to the
    /// split predict-then-update loop for every scheme that overrides it.
    #[test]
    fn fused_observe_matches_split_predict_update() {
        let trace = busy_trace(5000);
        let mut schemes: Vec<(Box<dyn BranchPredictor>, Box<dyn BranchPredictor>)> = vec![
            (
                Box::new(crate::Pag::paper_baseline()),
                Box::new(crate::Pag::paper_baseline()),
            ),
            (
                Box::new(crate::Pag::interference_free()),
                Box::new(crate::Pag::interference_free()),
            ),
            (
                Box::new(crate::Gshare::new(10)),
                Box::new(crate::Gshare::new(10)),
            ),
            (
                Box::new(crate::Bimodal::new(64)),
                Box::new(crate::Bimodal::new(64)),
            ),
        ];
        for (split, fused) in &mut schemes {
            let mut split_misses = 0u64;
            for (id, rec) in trace.indexed_records() {
                if split.predict(rec.pc, id) != rec.direction {
                    split_misses += 1;
                }
                split.update(rec.pc, id, rec.direction);
            }
            let r = simulate(&mut *fused, &trace);
            assert_eq!(r.mispredictions, split_misses, "{}", r.predictor);
            assert_eq!(
                split.interference_events(),
                fused.interference_events(),
                "{}",
                r.predictor
            );
        }
    }

    #[test]
    fn detailed_into_reuses_dirty_buffers() {
        let trace = busy_trace(2000);
        let fresh = simulate_detailed(&mut crate::Pag::paper_baseline(), &trace);
        // Deliberately dirty, wrong-sized buffers from a previous "cell".
        let mut misses = vec![u64::MAX; 3];
        let mut executions = vec![7u64; 99];
        let summary = simulate_detailed_into(
            &mut crate::Pag::paper_baseline(),
            &trace,
            &mut misses,
            &mut executions,
        );
        assert_eq!(summary, fresh.summary);
        assert_eq!(misses, fresh.misses);
        assert_eq!(executions, fresh.executions);
    }

    #[test]
    fn corrupt_checkpoint_bytes_are_rejected() {
        let ck = SimCheckpoint {
            predictor: "bimodal/64".into(),
            trace: "busy".into(),
            records_consumed: 100,
            mispredictions: 17,
            predictor_state: vec![1, 2, 3],
        };
        let bytes = ck.to_bytes();
        assert_eq!(SimCheckpoint::from_bytes(&bytes).unwrap(), ck);
        // Every single-bit flip must be caught by the CRC (or the parser).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(SimCheckpoint::from_bytes(&bad).is_err(), "flip at byte {i}");
        }
        // Truncations too.
        for cut in 0..bytes.len() {
            assert!(
                SimCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncated to {cut}"
            );
        }
    }
}
