//! Trace-driven simulation of predictors — the `sim-bpred` loop.

use crate::BranchPredictor;
use bwsa_trace::{BranchId, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate result of simulating one predictor over one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Predictor label.
    pub predictor: String,
    /// Trace label.
    pub trace: String,
    /// Dynamic branches simulated.
    pub total: u64,
    /// Mispredicted dynamic branches.
    pub mispredictions: u64,
}

impl SimResult {
    /// Fraction of dynamic branches mispredicted, in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.total as f64
        }
    }

    /// Fraction predicted correctly, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.misprediction_rate()
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {}/{} mispredicted ({:.2}%)",
            self.predictor,
            self.trace,
            self.mispredictions,
            self.total,
            100.0 * self.misprediction_rate()
        )
    }
}

/// [`SimResult`] plus per-static-branch misprediction counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailedSimResult {
    /// The aggregate result.
    pub summary: SimResult,
    /// `misses[id]` / `executions[id]` per static branch.
    pub misses: Vec<u64>,
    /// Dynamic executions per static branch.
    pub executions: Vec<u64>,
}

impl DetailedSimResult {
    /// Per-branch misprediction rate, or `None` if the branch never ran.
    pub fn branch_rate(&self, id: BranchId) -> Option<f64> {
        let e = *self.executions.get(id.index())?;
        if e == 0 {
            None
        } else {
            Some(self.misses[id.index()] as f64 / e as f64)
        }
    }
}

/// A simple pipeline cost model translating misprediction counts into
/// cycles — the paper's motivation ("a wide issue and deeply pipelined
/// processor demands a highly accurate branch prediction mechanism")
/// made quantitative.
///
/// The model charges one cycle per `issue_width` instructions plus a
/// fixed `mispredict_penalty` flush per mispredicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Instructions issued per cycle when not stalled.
    pub issue_width: u32,
    /// Flush penalty in cycles per misprediction.
    pub mispredict_penalty: u32,
}

impl Default for PipelineModel {
    /// A late-90s wide core: 4-wide issue, 7-cycle flush.
    fn default() -> Self {
        PipelineModel {
            issue_width: 4,
            mispredict_penalty: 7,
        }
    }
}

impl PipelineModel {
    /// Estimated cycles to run `instructions` with `mispredictions`
    /// branch flushes.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn cycles(&self, instructions: u64, mispredictions: u64) -> u64 {
        assert!(self.issue_width > 0, "issue width must be positive");
        instructions.div_ceil(u64::from(self.issue_width))
            + mispredictions * u64::from(self.mispredict_penalty)
    }

    /// Speedup of predictor `better` over `worse` on the same run
    /// (`> 1.0` means `better` is faster).
    ///
    /// # Panics
    ///
    /// Panics if the two results cover different instruction streams
    /// (different trace names or totals).
    pub fn speedup(&self, instructions: u64, better: &SimResult, worse: &SimResult) -> f64 {
        assert_eq!(
            better.trace, worse.trace,
            "results must come from the same trace"
        );
        assert_eq!(
            better.total, worse.total,
            "results must cover the same branches"
        );
        self.cycles(instructions, worse.mispredictions) as f64
            / self.cycles(instructions, better.mispredictions) as f64
    }
}

/// Runs a predictor over a trace: predict, compare, train — once per
/// dynamic branch, in order.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, StaticPredictor};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("t");
/// b.record(0x40, true, 1).record(0x40, false, 2);
/// let r = simulate(&mut StaticPredictor::always_taken(), &b.finish());
/// assert_eq!(r.total, 2);
/// assert_eq!(r.mispredictions, 1);
/// ```
pub fn simulate<P: BranchPredictor + ?Sized>(predictor: &mut P, trace: &Trace) -> SimResult {
    let mut mispredictions = 0u64;
    for (id, rec) in trace.indexed_records() {
        let predicted = predictor.predict(rec.pc, id);
        if predicted != rec.direction {
            mispredictions += 1;
        }
        predictor.update(rec.pc, id, rec.direction);
    }
    SimResult {
        predictor: predictor.name(),
        trace: trace.meta().name.clone(),
        total: trace.len() as u64,
        mispredictions,
    }
}

/// Like [`simulate`] but also accumulates per-static-branch counts.
pub fn simulate_detailed<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &Trace,
) -> DetailedSimResult {
    let n = trace.static_branch_count();
    let mut misses = vec![0u64; n];
    let mut executions = vec![0u64; n];
    let mut mispredictions = 0u64;
    for (id, rec) in trace.indexed_records() {
        let predicted = predictor.predict(rec.pc, id);
        executions[id.index()] += 1;
        if predicted != rec.direction {
            mispredictions += 1;
            misses[id.index()] += 1;
        }
        predictor.update(rec.pc, id, rec.direction);
    }
    DetailedSimResult {
        summary: SimResult {
            predictor: predictor.name(),
            trace: trace.meta().name.clone(),
            total: trace.len() as u64,
            mispredictions,
        },
        misses,
        executions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticPredictor;
    use bwsa_trace::TraceBuilder;

    fn half_taken_trace() -> Trace {
        let mut b = TraceBuilder::new("half");
        for i in 0..10u64 {
            b.record(0x100 + (i % 2) * 4, i % 2 == 0, i + 1);
        }
        b.finish()
    }

    #[test]
    fn counts_are_exact() {
        let trace = half_taken_trace();
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(r.total, 10);
        assert_eq!(r.mispredictions, 5);
        assert_eq!(r.misprediction_rate(), 0.5);
        assert_eq!(r.accuracy(), 0.5);
    }

    #[test]
    fn detailed_splits_by_branch() {
        let trace = half_taken_trace();
        let d = simulate_detailed(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(d.summary.mispredictions, 5);
        assert_eq!(d.executions, vec![5, 5]);
        assert_eq!(d.misses, vec![0, 5]);
        assert_eq!(d.branch_rate(BranchId::new(0)), Some(0.0));
        assert_eq!(d.branch_rate(BranchId::new(1)), Some(1.0));
        assert_eq!(d.branch_rate(BranchId::new(9)), None);
    }

    #[test]
    fn empty_trace_is_zero_rate() {
        let trace = Trace::new("empty");
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert_eq!(r.total, 0);
        assert_eq!(r.misprediction_rate(), 0.0);
    }

    #[test]
    fn pipeline_model_charges_issue_and_flushes() {
        let m = PipelineModel {
            issue_width: 4,
            mispredict_penalty: 10,
        };
        assert_eq!(m.cycles(100, 0), 25);
        assert_eq!(m.cycles(100, 3), 55);
        assert_eq!(m.cycles(101, 0), 26, "partial issue group rounds up");
    }

    #[test]
    fn speedup_compares_same_run() {
        let trace = half_taken_trace();
        let better = simulate(&mut crate::Bimodal::new(16), &trace);
        let worse = simulate(&mut StaticPredictor::always_not_taken(), &trace);
        let m = PipelineModel::default();
        let s = m.speedup(1000, &better, &worse);
        assert!(s >= 1.0, "fewer mispredictions must not slow down: {s}");
    }

    #[test]
    #[should_panic(expected = "same trace")]
    fn speedup_rejects_mismatched_traces() {
        let a = simulate(&mut StaticPredictor::always_taken(), &half_taken_trace());
        let mut other = Trace::new("different");
        other
            .push(bwsa_trace::BranchRecord::from_raw(0x4, true, 1))
            .unwrap();
        let b = simulate(&mut StaticPredictor::always_taken(), &other);
        PipelineModel::default().speedup(10, &a, &b);
    }

    #[test]
    fn display_shows_percentages() {
        let trace = half_taken_trace();
        let r = simulate(&mut StaticPredictor::always_taken(), &trace);
        assert!(r.to_string().contains("50.00%"));
    }
}
