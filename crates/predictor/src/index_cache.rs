//! A hardware index cache for branch allocation — the paper's footnote 1.
//!
//! Branch allocation assumes the fetch stage knows a branch's
//! compiler-assigned BHT index. Without an ISA change the paper suggests
//! "hardware support to cache the index values", warning that "the
//! parameters of a cache of indices would have to be carefully managed to
//! avoid the original problem of contention, only this time in the cache
//! instead of the BHT."
//!
//! [`CachedIndexPag`] models exactly that: a direct-mapped, pc-tagged
//! cache of allocated indices sits in front of a PAg. A hit uses the
//! allocated entry; a miss falls back to conventional pc-modulo indexing
//! for this prediction and installs the mapping (as decode would, once the
//! instruction's annotation is seen). The `ablation_index_cache` binary
//! sweeps the cache size to reproduce the footnote's warning.

use crate::{AllocatedIndex, BranchHistoryTable, BranchPredictor, PatternHistoryTable};
use bwsa_trace::{BranchId, Direction, Pc};

/// A direct-mapped cache of `(pc tag → allocated BHT entry)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexCache {
    slots: Vec<Option<(u64, u32)>>,
    hits: u64,
    lookups: u64,
}

impl IndexCache {
    /// Creates a cache with `slots` direct-mapped entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "index cache needs at least one slot");
        IndexCache {
            slots: vec![None; slots],
            hits: 0,
            lookups: 0,
        }
    }

    fn slot_of(&self, pc: Pc) -> usize {
        (pc.word_index() % self.slots.len() as u64) as usize
    }

    /// Looks up the cached index for `pc`, counting hit statistics.
    pub fn lookup(&mut self, pc: Pc) -> Option<u32> {
        self.lookups += 1;
        let slot = self.slot_of(pc);
        match self.slots[slot] {
            Some((tag, entry)) if tag == pc.addr() => {
                self.hits += 1;
                Some(entry)
            }
            _ => None,
        }
    }

    /// Installs (or replaces) the mapping for `pc`.
    pub fn install(&mut self, pc: Pc, entry: u32) {
        let slot = self.slot_of(pc);
        self.slots[slot] = Some((pc.addr(), entry));
    }

    /// Fraction of lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A PAg whose allocated BHT index arrives through an [`IndexCache`]
/// instead of an augmented ISA.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, AllocatedIndex, CachedIndexPag};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("t");
/// for i in 0..1000u64 {
///     b.record(0x400 + (i % 2) * 4, i % 3 == 0, i + 1);
/// }
/// let map = AllocatedIndex::new(8, vec![Some(0), Some(1)]).unwrap();
/// let mut p = CachedIndexPag::new(map, 64, 8);
/// let r = simulate(&mut p, &b.finish());
/// assert!(r.total > 0);
/// assert!(p.cache().hit_rate() > 0.9, "two hot branches fit any cache");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedIndexPag {
    map: AllocatedIndex,
    cache: IndexCache,
    bht: BranchHistoryTable,
    pht: PatternHistoryTable,
}

impl CachedIndexPag {
    /// Creates the predictor: `map` is the compiler's allocation,
    /// `cache_slots` the index-cache size, and `history_bits` the PAg
    /// geometry (PHT = `2^history_bits` counters).
    ///
    /// # Panics
    ///
    /// Panics if `cache_slots` is zero or `history_bits` outside `1..=24`.
    pub fn new(map: AllocatedIndex, cache_slots: usize, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits {history_bits} outside 1..=24"
        );
        let bht = BranchHistoryTable::new(map.table_size(), history_bits);
        let pht = PatternHistoryTable::new(1 << history_bits);
        CachedIndexPag {
            map,
            cache: IndexCache::new(cache_slots),
            bht,
            pht,
        }
    }

    /// The paper-geometry variant: 12 history bits, 4096-entry PHT.
    pub fn paper(map: AllocatedIndex, cache_slots: usize) -> Self {
        CachedIndexPag::new(map, cache_slots, 12)
    }

    /// The index cache (for hit-rate inspection).
    pub fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// The effective BHT entry for this dynamic instance: the cached
    /// allocated index on a hit, pc-modulo fallback on a miss.
    fn entry(&mut self, pc: Pc) -> usize {
        match self.cache.lookup(pc) {
            Some(e) => e as usize,
            None => pc.table_index(self.map.table_size()),
        }
    }
}

impl BranchPredictor for CachedIndexPag {
    fn name(&self) -> String {
        format!(
            "PAg[alloc/{}+icache/{}]h{}",
            self.map.table_size(),
            self.cache.slots.len(),
            self.bht.width()
        )
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        // Peek without perturbing hit statistics: prediction and update
        // see the same cache state because update runs immediately after.
        let slot = self.cache.slot_of(pc);
        let entry = match self.cache.slots[slot] {
            Some((tag, e)) if tag == pc.addr() => e as usize,
            _ => pc.table_index(self.map.table_size()),
        };
        self.pht.predict(self.bht.history(entry))
    }

    fn update(&mut self, pc: Pc, id: BranchId, outcome: Direction) {
        let entry = self.entry(pc);
        let history = self.bht.history(entry);
        self.pht.update(history, outcome);
        self.bht.record(entry, outcome);
        // Decode has now seen the annotation: install the true index.
        if let Some(e) = self.map.entry(id) {
            self.cache.install(pc, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, BhtIndexer, Pag};
    use bwsa_trace::TraceBuilder;

    fn two_branch_trace(n: u64) -> bwsa_trace::Trace {
        let mut b = TraceBuilder::new("t");
        let mut lcg: u64 = 99;
        for i in 0..n {
            if i % 2 == 0 {
                b.record(0x100, (i / 2) % 4 != 3, i + 1);
            } else {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                b.record(0x104, (lcg >> 33) & 1 == 1, i + 1);
            }
        }
        b.finish()
    }

    #[test]
    fn big_cache_matches_pure_allocated_pag_after_warmup() {
        let trace = two_branch_trace(6000);
        let map = AllocatedIndex::new(4, vec![Some(0), Some(1)]).unwrap();
        let mut cached = CachedIndexPag::new(map.clone(), 1024, 6);
        let cached_result = simulate(&mut cached, &trace);
        let mut pure = Pag::new(BhtIndexer::Allocated(map), 6);
        let pure_result = simulate(&mut pure, &trace);
        // First encounters miss the cache; everything after matches.
        assert!(
            cached_result.mispredictions <= pure_result.mispredictions + 2,
            "cached {} vs pure {}",
            cached_result.mispredictions,
            pure_result.mispredictions
        );
        assert!(cached.cache().hit_rate() > 0.999);
    }

    #[test]
    fn one_slot_cache_thrashes_on_conflicting_pcs() {
        // Two pcs that alias in a 1-slot cache: every lookup misses.
        let trace = two_branch_trace(2000);
        let map = AllocatedIndex::new(4, vec![Some(0), Some(1)]).unwrap();
        let mut p = CachedIndexPag::new(map, 1, 6);
        let _ = simulate(&mut p, &trace);
        assert!(
            p.cache().hit_rate() < 0.01,
            "hit rate {} should collapse",
            p.cache().hit_rate()
        );
    }

    #[test]
    fn cache_misses_fall_back_to_pc_indexing() {
        // No assignments at all: behaves exactly like conventional PAg.
        let trace = two_branch_trace(4000);
        let map = AllocatedIndex::new(8, vec![None, None]).unwrap();
        let mut cached = CachedIndexPag::new(map, 64, 6);
        let cached_result = simulate(&mut cached, &trace);
        let conventional = simulate(&mut Pag::new(BhtIndexer::pc_modulo(8), 6), &trace);
        assert_eq!(cached_result.mispredictions, conventional.mispredictions);
        assert_eq!(cached.cache().hit_rate(), 0.0);
    }

    #[test]
    fn name_reports_geometry() {
        let map = AllocatedIndex::new(128, vec![]).unwrap();
        assert_eq!(
            CachedIndexPag::paper(map, 256).name(),
            "PAg[alloc/128+icache/256]h12"
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_cache_rejected() {
        IndexCache::new(0);
    }
}
