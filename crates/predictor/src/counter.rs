//! Saturating up/down counters — the basic prediction state element.

use bwsa_trace::Direction;
use serde::{Deserialize, Serialize};

/// An n-bit saturating counter (n in `1..=8`).
///
/// Values `0..2^n` count confidence: the top half predicts taken, the
/// bottom half not taken. Taken outcomes increment (saturating at the
/// maximum), not-taken outcomes decrement (saturating at zero). The
/// classic two-bit counter of Smith predictors and 2-level PHTs is
/// [`SaturatingCounter::two_bit`].
///
/// # Example
///
/// ```
/// use bwsa_predictor::SaturatingCounter;
/// use bwsa_trace::Direction;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(!c.predict().is_taken(), "starts weakly not-taken");
/// c.update(Direction::Taken);
/// c.update(Direction::Taken);
/// assert!(c.predict().is_taken());
/// c.update(Direction::NotTaken);
/// assert!(c.predict().is_taken(), "hysteresis survives one miss");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an n-bit counter initialised to the weakly-not-taken value
    /// just below the decision threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "counter width {bits} outside 1..=8"
        );
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        SaturatingCounter {
            value: max / 2,
            max,
        }
    }

    /// The standard two-bit counter, initialised weakly not-taken.
    pub fn two_bit() -> Self {
        SaturatingCounter::new(2)
    }

    /// The current raw value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// The saturation maximum (`2^bits − 1`).
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Overwrites the counter value, clamping to the saturation maximum —
    /// the restore half of checkpointing.
    pub fn set_value(&mut self, value: u8) {
        self.value = value.min(self.max);
    }

    /// The predicted direction: taken iff the value is in the top half.
    pub fn predict(&self) -> Direction {
        Direction::from_taken(u16::from(self.value) * 2 > u16::from(self.max))
    }

    /// Trains the counter with an outcome.
    pub fn update(&mut self, outcome: Direction) {
        if outcome.is_taken() {
            if self.value < self.max {
                self.value += 1;
            }
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }

    /// Returns `true` when the counter is saturated in either direction —
    /// a confidence signal used by chooser/agreement predictors.
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SaturatingCounter::two_bit();
        assert_eq!(c.value(), 1);
        assert!(!c.predict().is_taken());
        c.update(Direction::Taken); // 2: weakly taken
        assert!(c.predict().is_taken());
        c.update(Direction::Taken); // 3: strongly taken
        c.update(Direction::Taken); // saturates at 3
        assert_eq!(c.value(), 3);
        c.update(Direction::NotTaken); // 2
        assert!(c.predict().is_taken(), "hysteresis");
        c.update(Direction::NotTaken); // 1
        assert!(!c.predict().is_taken());
        c.update(Direction::NotTaken); // 0
        c.update(Direction::NotTaken); // saturates at 0
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SaturatingCounter::new(1);
        assert!(!c.predict().is_taken());
        c.update(Direction::Taken);
        assert!(c.predict().is_taken());
        c.update(Direction::NotTaken);
        assert!(!c.predict().is_taken());
    }

    #[test]
    fn eight_bit_counter_has_full_range() {
        let mut c = SaturatingCounter::new(8);
        for _ in 0..300 {
            c.update(Direction::Taken);
        }
        assert_eq!(c.value(), 255);
        assert!(c.is_saturated());
    }

    #[test]
    fn saturation_detection() {
        let mut c = SaturatingCounter::two_bit();
        assert!(!c.is_saturated());
        c.update(Direction::NotTaken);
        assert!(c.is_saturated());
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn zero_bits_rejected() {
        SaturatingCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn nine_bits_rejected() {
        SaturatingCounter::new(9);
    }

    #[test]
    fn three_bit_threshold_is_majority() {
        // 3-bit: max 7, predicts taken for value >= 4.
        let mut c = SaturatingCounter::new(3);
        assert_eq!(c.value(), 3);
        assert!(!c.predict().is_taken());
        c.update(Direction::Taken);
        assert!(c.predict().is_taken());
    }
}
