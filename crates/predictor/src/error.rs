//! Error type for predictor configuration.

use std::error::Error;
use std::fmt;

/// Error produced while configuring a predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PredictorError {
    /// A table size was zero or not a power of two where one is required.
    InvalidTableSize {
        /// Which table was misconfigured.
        table: &'static str,
        /// The offending size.
        size: usize,
    },
    /// A history width was outside the supported `1..=63` range.
    InvalidHistoryWidth {
        /// The offending width.
        width: u32,
    },
    /// An allocation map entry pointed outside the table.
    EntryOutOfRange {
        /// The offending entry.
        entry: u32,
        /// The table size.
        size: usize,
    },
    /// A predictor checkpoint could not be saved, parsed, or applied —
    /// corrupt bytes, or state from a differently configured predictor.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// A sweep cell's simulation unwound (a panic or an injected fault);
    /// the sweep's containment boundary isolated it from the other cells.
    CellFailed {
        /// The failed cell's label (`predictor@trace`).
        label: String,
        /// Why it failed.
        reason: String,
    },
}

impl PredictorError {
    pub(crate) fn checkpoint(reason: impl Into<String>) -> Self {
        PredictorError::Checkpoint {
            reason: reason.into(),
        }
    }

    pub(crate) fn cell_failed(label: impl Into<String>, reason: impl Into<String>) -> Self {
        PredictorError::CellFailed {
            label: label.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorError::InvalidTableSize { table, size } => {
                write!(f, "invalid {table} size {size}")
            }
            PredictorError::InvalidHistoryWidth { width } => {
                write!(f, "history width {width} outside 1..=63")
            }
            PredictorError::EntryOutOfRange { entry, size } => {
                write!(f, "allocated entry {entry} outside table of size {size}")
            }
            PredictorError::Checkpoint { reason } => {
                write!(f, "predictor checkpoint error: {reason}")
            }
            PredictorError::CellFailed { label, reason } => {
                write!(f, "sweep cell '{label}' failed: {reason}")
            }
        }
    }
}

impl Error for PredictorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(PredictorError::InvalidTableSize {
            table: "BHT",
            size: 0
        }
        .to_string()
        .contains("BHT"));
        assert!(PredictorError::InvalidHistoryWidth { width: 99 }
            .to_string()
            .contains("99"));
        assert!(PredictorError::EntryOutOfRange { entry: 5, size: 4 }
            .to_string()
            .contains('5'));
        assert!(PredictorError::checkpoint("size mismatch")
            .to_string()
            .contains("size mismatch"));
    }
}
