//! Trace-driven branch predictor simulation — the workspace's equivalent
//! of SimpleScalar's `sim-bpred`, built from scratch.
//!
//! The paper's §5.3 evaluation compares three first-level-table indexing
//! schemes on a PAg two-level predictor (1024-entry BHT, 4096-entry PHT):
//! conventional PC-modulo indexing, the paper's compiler-assigned *branch
//! allocation* indexing, and an interference-free table with a private
//! history per static branch. All three are [`BhtIndexer`] variants
//! plugged into the same [`Pag`] predictor here.
//!
//! Beyond PAg, the crate implements the classic predictors the paper's
//! related-work section is built on, so baselines and ablations have real
//! comparators: [`StaticPredictor`] (always-taken / profile-based),
//! [`Bimodal`] (Smith), [`Gag`] and [`Gshare`] (global two-level),
//! [`Pap`] (per-branch histories *and* per-entry pattern tables),
//! [`Hybrid`] (McFarling chooser), and [`Agree`] (bias-agreement).
//!
//! # Example
//!
//! ```
//! use bwsa_predictor::{simulate, BhtIndexer, Pag};
//! use bwsa_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new("alternating");
//! for i in 0..2000u64 {
//!     b.record(0x400, i % 2 == 0, 5 * (i + 1));
//! }
//! let trace = b.finish();
//!
//! // A PAg predictor learns the alternating pattern almost perfectly.
//! let mut pag = Pag::new(BhtIndexer::pc_modulo(1024), 8);
//! let result = simulate(&mut pag, &trace);
//! assert!(result.misprediction_rate() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod agree;
mod bimodal;
mod bimode;
mod checkpoint;
pub mod clustering;
mod counter;
mod error;
mod gag;
mod gap;
mod gselect;
mod gshare;
mod history;
mod hybrid;
mod index_cache;
mod indexer;
mod pag;
mod pap;
mod predictor;
mod sim;
mod staticpred;
pub mod sweep;
mod tables;

/// Failpoint sites this crate hosts (see [`bwsa_resilience::failpoint`]).
pub mod failpoints {
    /// Fires when a trace-driven simulation starts ([`crate::simulate`]).
    pub const SIMULATE: &str = "predictor.simulate";
    /// Fires inside each sweep cell's containment boundary.
    pub const SWEEP_CELL: &str = "predictor.sweep_cell";
    /// Fires when a [`crate::SimCheckpoint`] is serialised.
    pub const CHECKPOINT_SAVE: &str = "predictor.checkpoint_save";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[SIMULATE, SWEEP_CELL, CHECKPOINT_SAVE];
}

pub use agree::Agree;
pub use bimodal::Bimodal;
pub use bimode::BiMode;
pub use checkpoint::Checkpointable;
pub use counter::SaturatingCounter;
pub use error::PredictorError;
pub use gag::Gag;
pub use gap::Gap;
pub use gselect::Gselect;
pub use gshare::Gshare;
pub use history::HistoryRegister;
pub use hybrid::Hybrid;
pub use index_cache::{CachedIndexPag, IndexCache};
pub use indexer::{AllocatedIndex, BhtIndexer};
pub use pag::Pag;
pub use pap::Pap;
pub use predictor::BranchPredictor;
pub use sim::{
    simulate, simulate_detailed, simulate_detailed_into, simulate_observed, simulate_resumable,
    DetailedSimResult, PipelineModel, SimCheckpoint, SimResult, CHECKPOINT_KIND_SIM,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use staticpred::StaticPredictor;
pub use sweep::{sweep, sweep_observed, SweepCell};
pub use tables::{BranchHistoryTable, PatternHistoryTable};
