//! The Smith bimodal predictor: a pc-indexed table of two-bit counters.

use crate::{checkpoint, BranchPredictor, Checkpointable, PatternHistoryTable, PredictorError};
use bwsa_trace::codec::Cursor;
use bwsa_trace::{BranchId, Direction, Pc};

/// Bimodal (Smith 1981) predictor: `(pc >> 2) mod size` indexes a table of
/// saturating two-bit counters.
///
/// # Example
///
/// ```
/// use bwsa_predictor::{simulate, Bimodal};
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("loop");
/// for i in 1..=1000u64 {
///     b.record(0x400, i % 10 != 0, i); // 10-trip loop back-edge
/// }
/// let trace = b.finish();
/// let r = simulate(&mut Bimodal::new(512), &trace);
/// // Bimodal mispredicts about once per loop exit.
/// assert!(r.misprediction_rate() < 0.15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    table: PatternHistoryTable,
}

impl Bimodal {
    /// Creates a bimodal predictor with `size` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        Bimodal {
            table: PatternHistoryTable::new(size),
        }
    }

    /// The counter table size.
    pub fn size(&self) -> usize {
        self.table.len()
    }
}

impl BranchPredictor for Bimodal {
    fn name(&self) -> String {
        format!("bimodal/{}", self.table.len())
    }

    fn predict(&mut self, pc: Pc, _id: BranchId) -> Direction {
        self.table.predict(pc.word_index())
    }

    fn update(&mut self, pc: Pc, _id: BranchId, outcome: Direction) {
        self.table.update(pc.word_index(), outcome);
    }

    fn observe(&mut self, pc: Pc, _id: BranchId, outcome: Direction) -> Direction {
        self.table.observe(pc.word_index(), outcome)
    }
}

impl Checkpointable for Bimodal {
    fn save_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        checkpoint::put_str(&mut buf, &self.name());
        checkpoint::put_bytes(&mut buf, &self.table.snapshot());
        buf
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), PredictorError> {
        let mut cur = Cursor::new(bytes);
        checkpoint::check_name(&mut cur, &self.name())?;
        let counters = checkpoint::get_bytes(&mut cur)?;
        self.table.restore(&counters)?;
        checkpoint::ensure_empty(&cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias_quickly() {
        let mut p = Bimodal::new(16);
        let pc = Pc::new(0x400);
        let id = BranchId::new(0);
        p.update(pc, id, Direction::Taken);
        p.update(pc, id, Direction::Taken);
        assert!(p.predict(pc, id).is_taken());
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(16);
        let a = Pc::new(0x400);
        let b = Pc::new(0x404);
        for _ in 0..3 {
            p.update(a, BranchId::new(0), Direction::Taken);
            p.update(b, BranchId::new(1), Direction::NotTaken);
        }
        assert!(p.predict(a, BranchId::new(0)).is_taken());
        assert!(!p.predict(b, BranchId::new(1)).is_taken());
    }

    #[test]
    fn aliased_pcs_interfere() {
        let mut p = Bimodal::new(4);
        let a = Pc::new(0x0);
        let b = Pc::new(4 * 4); // same index mod 4
        for _ in 0..3 {
            p.update(a, BranchId::new(0), Direction::Taken);
        }
        for _ in 0..3 {
            p.update(b, BranchId::new(1), Direction::NotTaken);
        }
        assert!(
            !p.predict(a, BranchId::new(0)).is_taken(),
            "b overwrote a's counter"
        );
    }

    #[test]
    fn name_includes_size() {
        assert_eq!(Bimodal::new(512).name(), "bimodal/512");
    }
}
