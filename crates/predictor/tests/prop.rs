//! Property-based tests for the predictor crate.

use bwsa_predictor::{
    simulate, simulate_detailed, Agree, AllocatedIndex, BhtIndexer, BiMode, Bimodal,
    BranchPredictor, CachedIndexPag, Gag, Gap, Gselect, Gshare, HistoryRegister, Hybrid, Pag, Pap,
    SaturatingCounter, StaticPredictor,
};
use bwsa_trace::{Direction, Trace, TraceBuilder};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u8..16, any::<bool>()), 1..400).prop_map(|steps| {
        let mut b = TraceBuilder::new("prop");
        for (i, (slot, taken)) in steps.into_iter().enumerate() {
            b.record(0x1000 + u64::from(slot) * 4, taken, (i as u64 + 1) * 3);
        }
        b.finish()
    })
}

fn all_predictors() -> Vec<Box<dyn BranchPredictor>> {
    vec![
        Box::new(StaticPredictor::always_taken()),
        Box::new(StaticPredictor::always_not_taken()),
        Box::new(Bimodal::new(16)),
        Box::new(Gag::new(6)),
        Box::new(Gshare::new(6)),
        Box::new(Pag::new(BhtIndexer::pc_modulo(8), 6)),
        Box::new(Pag::new(BhtIndexer::PerBranch, 6)),
        Box::new(Pap::new(BhtIndexer::pc_modulo(8), 4)),
        Box::new(Hybrid::new(Gshare::new(6), Bimodal::new(16), 16)),
        Box::new(Agree::new(6, 16)),
        Box::new(Gap::new(5, 8)),
        Box::new(Gselect::new(3, 3)),
        Box::new(BiMode::new(6, 16)),
        Box::new(CachedIndexPag::new(
            AllocatedIndex::new(8, (0..16).map(|i| Some(i % 8)).collect()).unwrap(),
            16,
            6,
        )),
    ]
}

proptest! {
    #[test]
    fn mispredictions_never_exceed_total(trace in arb_trace()) {
        for mut p in all_predictors() {
            let r = simulate(&mut *p, &trace);
            prop_assert!(r.mispredictions <= r.total);
            prop_assert_eq!(r.total, trace.len() as u64);
            let rate = r.misprediction_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn complementary_statics_sum_to_total(trace in arb_trace()) {
        let t = simulate(&mut StaticPredictor::always_taken(), &trace);
        let n = simulate(&mut StaticPredictor::always_not_taken(), &trace);
        prop_assert_eq!(t.mispredictions + n.mispredictions, trace.len() as u64);
    }

    #[test]
    fn detailed_counts_sum_to_summary(trace in arb_trace()) {
        for mut p in all_predictors() {
            let d = simulate_detailed(&mut *p, &trace);
            let total_misses: u64 = d.misses.iter().sum();
            let total_execs: u64 = d.executions.iter().sum();
            prop_assert_eq!(total_misses, d.summary.mispredictions);
            prop_assert_eq!(total_execs, d.summary.total);
        }
    }

    #[test]
    fn simulation_is_deterministic(trace in arb_trace()) {
        let a = simulate(&mut Pag::new(BhtIndexer::pc_modulo(8), 6), &trace);
        let b = simulate(&mut Pag::new(BhtIndexer::pc_modulo(8), 6), &trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn profile_static_is_optimal_among_statics(trace in arb_trace()) {
        // The profile-trained static predictor cannot lose to either
        // fixed-direction static predictor on its own training trace.
        let p = simulate(&mut StaticPredictor::from_profile(&trace), &trace);
        let t = simulate(&mut StaticPredictor::always_taken(), &trace);
        let n = simulate(&mut StaticPredictor::always_not_taken(), &trace);
        prop_assert!(p.mispredictions <= t.mispredictions.min(n.mispredictions));
    }

    #[test]
    fn counter_stays_in_range(bits in 1u32..=8, flips in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits);
        for f in flips {
            c.update(Direction::from_taken(f));
            prop_assert!(c.value() <= c.max());
        }
    }

    #[test]
    fn counter_converges_after_max_plus_one_same_updates(bits in 1u32..=8) {
        let mut c = SaturatingCounter::new(bits);
        for _ in 0..=c.max() {
            c.update(Direction::Taken);
        }
        prop_assert!(c.predict().is_taken());
        prop_assert!(c.is_saturated());
    }

    #[test]
    fn history_value_bounded_by_width(width in 1u32..=63, pushes in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut h = HistoryRegister::new(width);
        for p in pushes {
            h.push(Direction::from_taken(p));
            if width < 63 {
                prop_assert!(h.value() < (1u64 << width));
            }
        }
    }

    #[test]
    fn per_branch_pag_matches_pc_modulo_when_no_aliasing(trace in arb_trace()) {
        // With a BHT big enough that the 16 possible pcs never collide,
        // pc-modulo indexing equals per-branch indexing behaviourally.
        let a = simulate(&mut Pag::new(BhtIndexer::pc_modulo(1 << 12), 6), &trace);
        let b = simulate(&mut Pag::new(BhtIndexer::PerBranch, 6), &trace);
        prop_assert_eq!(a.mispredictions, b.mispredictions);
    }
}
