//! A single dynamic branch instance.

use crate::{InstrCount, Pc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resolved direction of a conditional branch.
///
/// # Example
///
/// ```
/// use bwsa_trace::Direction;
///
/// assert!(Direction::Taken.is_taken());
/// assert_eq!(Direction::from_taken(false), Direction::NotTaken);
/// assert_eq!(Direction::Taken.flipped(), Direction::NotTaken);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The branch was not taken (fall-through).
    NotTaken,
    /// The branch was taken.
    Taken,
}

impl Direction {
    /// Creates a direction from a boolean taken flag.
    pub const fn from_taken(taken: bool) -> Self {
        if taken {
            Direction::Taken
        } else {
            Direction::NotTaken
        }
    }

    /// Returns `true` for [`Direction::Taken`].
    pub const fn is_taken(self) -> bool {
        matches!(self, Direction::Taken)
    }

    /// Returns the opposite direction.
    pub const fn flipped(self) -> Self {
        match self {
            Direction::Taken => Direction::NotTaken,
            Direction::NotTaken => Direction::Taken,
        }
    }

    /// Returns 1 for taken, 0 for not taken — the bit shifted into branch
    /// history registers.
    pub const fn as_bit(self) -> u64 {
        self.is_taken() as u64
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Taken => "T",
            Direction::NotTaken => "N",
        })
    }
}

impl From<bool> for Direction {
    fn from(taken: bool) -> Self {
        Direction::from_taken(taken)
    }
}

/// One dynamic instance of a conditional branch.
///
/// `time` is the number of instructions executed *before* this branch, the
/// timestamp domain of the paper's §4.1 interleaving analysis. Within a
/// trace, records appear in non-decreasing `time` order.
///
/// # Example
///
/// ```
/// use bwsa_trace::{BranchRecord, Direction, InstrCount, Pc};
///
/// let r = BranchRecord::new(Pc::new(0x400), Direction::Taken, InstrCount::new(5));
/// assert!(r.direction.is_taken());
/// assert_eq!(r.time.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the static branch instruction.
    pub pc: Pc,
    /// Resolved direction of this dynamic instance.
    pub direction: Direction,
    /// Instructions executed prior to this dynamic instance.
    pub time: InstrCount,
}

impl BranchRecord {
    /// Creates a record.
    pub const fn new(pc: Pc, direction: Direction, time: InstrCount) -> Self {
        BranchRecord {
            pc,
            direction,
            time,
        }
    }

    /// Convenience constructor from raw integers.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_trace::BranchRecord;
    ///
    /// let r = BranchRecord::from_raw(0x400, true, 12);
    /// assert_eq!(r.pc.addr(), 0x400);
    /// assert!(r.direction.is_taken());
    /// ```
    pub const fn from_raw(pc: u64, taken: bool, time: u64) -> Self {
        BranchRecord {
            pc: Pc::new(pc),
            direction: Direction::from_taken(taken),
            time: InstrCount::new(time),
        }
    }

    /// Returns `true` if this instance was taken.
    pub const fn is_taken(&self) -> bool {
        self.direction.is_taken()
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @{}", self.pc, self.direction, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_roundtrip() {
        for taken in [true, false] {
            let d = Direction::from_taken(taken);
            assert_eq!(d.is_taken(), taken);
            assert_eq!(d.flipped().is_taken(), !taken);
            assert_eq!(d.as_bit(), taken as u64);
            assert_eq!(Direction::from(taken), d);
        }
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Taken.to_string(), "T");
        assert_eq!(Direction::NotTaken.to_string(), "N");
    }

    #[test]
    fn record_constructors_agree() {
        let a = BranchRecord::new(Pc::new(8), Direction::NotTaken, InstrCount::new(3));
        let b = BranchRecord::from_raw(8, false, 3);
        assert_eq!(a, b);
        assert!(!a.is_taken());
    }

    #[test]
    fn record_display_is_nonempty() {
        let r = BranchRecord::from_raw(0x10, true, 7);
        assert_eq!(r.to_string(), "0x10 T @7");
    }
}
