//! Streaming trace IO: write and read traces of unbounded length with
//! bounded memory, durably.
//!
//! The whole-buffer format in [`crate::io`] needs the record count up
//! front. The streaming formats instead frame delta-encoded records into
//! chunks ending with an end marker plus trailer, so a producer can emit
//! records as they happen (e.g. an interpreter profiling a long run) and a
//! consumer can iterate without materialising the trace.
//!
//! # `BWSS2` wire format (current)
//!
//! ```text
//! header : magic "BWSS", version u16 LE (2), name (u32 LE len + UTF-8)
//! chunk  : sync        4 bytes  5A B5 1E C7
//!          count       u32 LE   record count (>0 for data chunks)
//!          payload_len u32 LE   payload byte length
//!          anchor_pc   u64 LE   absolute pc of the chunk's first record
//!          anchor_time u64 LE   absolute time of the chunk's first record
//!          crc32       u32 LE   IEEE CRC32 over count ‖ payload_len ‖
//!                               anchor_pc ‖ anchor_time ‖ payload
//!          payload     delta-encoded records (see below)
//! end    : a chunk with count == 0 whose 8-byte payload is
//!          total_instructions u64 LE
//! ```
//!
//! Payload records are the `BWST1` pair of LEB128 varints,
//! `zigzag(pc - prev_pc) << 1 | taken` then `time - prev_time`, **with the
//! delta state reset to the chunk's anchors at every chunk boundary**: the
//! first record of a chunk always encodes as deltas of zero from
//! `(anchor_pc, anchor_time)`. Each chunk is therefore self-contained —
//! decoding needs nothing from earlier chunks.
//!
//! ## Corruption detection and recovery
//!
//! Three properties make a damaged stream salvageable:
//!
//! 1. the CRC32 rejects chunks whose header or payload bytes changed;
//! 2. the sync marker gives a resynchronisation point — a reader that
//!    loses framing scans forward byte-by-byte for the next marker that
//!    heads a chunk with a valid CRC;
//! 3. the per-chunk anchors re-absolutise the delta state, so a dropped
//!    chunk corrupts nothing after it.
//!
//! A [`StreamReader`] opened with [`StreamReader::with_recovery`] and
//! [`RecoveryPolicy::Salvage`] skips damaged regions instead of failing,
//! drops duplicated or out-of-order chunks (replay of stale data), treats
//! truncation as end-of-stream, and tallies what happened in a
//! [`SalvageReport`]. The default [`RecoveryPolicy::Strict`] reader fails
//! fast with [`TraceError::Corrupt`] on the first inconsistency.
//!
//! # `BWSS1` (legacy, read-only)
//!
//! ```text
//! magic "BWSS", version u16 LE (1), name (u32 LE len + UTF-8)
//! repeat: chunk = u32 LE record_count (>0), records (varint deltas as BWST1)
//! end:    u32 LE 0, u64 LE total_instructions
//! ```
//!
//! `BWSS1` has no checksums, no sync markers, and continuous delta state,
//! so salvage degrades to recovering the valid prefix. [`StreamWriter`]
//! always writes `BWSS2`; [`StreamReader`] reads both.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::stream::{StreamReader, StreamWriter};
//! use bwsa_trace::BranchRecord;
//!
//! # fn main() -> Result<(), bwsa_trace::TraceError> {
//! let mut buf = Vec::new();
//! let mut w = StreamWriter::new(&mut buf, "live")?;
//! for i in 0..10_000u64 {
//!     w.push(BranchRecord::from_raw(0x400 + (i % 7) * 4, i % 3 == 0, i + 1))?;
//! }
//! w.finish(123_456)?;
//!
//! let mut r = StreamReader::new(&buf[..])?;
//! assert_eq!(r.name(), "live");
//! let n = r.by_ref().count();
//! assert_eq!(n, 10_000);
//! assert_eq!(r.total_instructions(), Some(123_456));
//! assert!(r.salvage_report().clean());
//! # Ok(())
//! # }
//! ```

use crate::codec::{self, Crc32, Cursor};
use crate::{BranchRecord, TraceError};
use bwsa_obs::Obs;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"BWSS";
/// Legacy stream version.
const VERSION_1: u16 = 1;
/// Current stream version.
const VERSION_2: u16 = 2;
/// Chunk sync marker; chosen to be unlikely in varint payload runs.
const SYNC: [u8; 4] = [0x5A, 0xB5, 0x1E, 0xC7];
/// Bytes in a v2 frame header: sync + count + payload_len + anchors + crc.
const FRAME_HEADER: usize = 4 + 4 + 4 + 8 + 8 + 4;
/// Records per chunk by default. Public so downstream tooling (e.g. the
/// CLI's `--checkpoint-every <chunks>` flag) can convert between chunk and
/// record counts.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;
/// A writer flushes early rather than exceed this payload size.
const MAX_WRITER_PAYLOAD: usize = 1 << 22;
/// A reader rejects frames claiming a payload above this (corrupt length
/// fields must not trigger huge allocations).
const MAX_READER_PAYLOAD: u32 = 1 << 24;

/// How a [`StreamReader`] responds to corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Fail with [`TraceError::Corrupt`] at the first inconsistency.
    #[default]
    Strict,
    /// Skip damaged chunks, resynchronise on the next valid one, treat
    /// truncation as end-of-stream, and record the damage in a
    /// [`SalvageReport`]. Only genuine I/O failures surface as errors.
    Salvage,
}

/// Tally of what a salvage (or strict) read encountered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Data chunks that passed validation and were decoded.
    pub chunks_ok: u64,
    /// Chunks (or damaged regions resolving to one resync) discarded.
    pub chunks_dropped: u64,
    /// Records yielded to the consumer.
    pub records_recovered: u64,
    /// Description of the first inconsistency, if any.
    pub first_error: Option<String>,
}

impl SalvageReport {
    /// `true` when the stream read back with no damage at all.
    pub fn clean(&self) -> bool {
        self.chunks_dropped == 0 && self.first_error.is_none()
    }

    fn note(&mut self, error: impl FnOnce() -> String) {
        if self.first_error.is_none() {
            self.first_error = Some(error());
        }
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chunks ok, {} dropped, {} records recovered",
            self.chunks_ok, self.chunks_dropped, self.records_recovered
        )?;
        if let Some(e) = &self.first_error {
            write!(f, "; first error: {e}")?;
        }
        Ok(())
    }
}

/// Location of one frame inside an in-memory `BWSS2` stream, as reported
/// by [`frame_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Byte offset of the frame's sync marker.
    pub offset: usize,
    /// Total frame length (header + payload).
    pub len: usize,
    /// Record count (0 for the end frame).
    pub records: u32,
}

/// Byte length of the stream header (magic, version, name) of an
/// in-memory `BWSS` stream — the offset at which the chunked body starts.
///
/// # Errors
///
/// Returns [`TraceError::Format`] when the header is malformed.
pub fn body_offset(buf: &[u8]) -> Result<usize, TraceError> {
    let mut cur = Cursor::new(buf);
    if cur.take(4)? != MAGIC {
        return Err(TraceError::format_at("bad magic (expected \"BWSS\")", 0));
    }
    cur.get_u16_le()?;
    let name_len = cur.get_u32_le()? as usize;
    cur.take(name_len)?;
    Ok(buf.len() - cur.remaining())
}

/// Walks an intact in-memory `BWSS2` stream and reports where each frame
/// sits. Useful for tooling and targeted fault injection; fails on the
/// first framing inconsistency rather than resynchronising.
///
/// # Errors
///
/// Returns [`TraceError::Format`] when the walk lands off a frame.
pub fn frame_spans(buf: &[u8]) -> Result<Vec<FrameSpan>, TraceError> {
    let mut offset = body_offset(buf)?;
    let mut spans = Vec::new();
    while offset < buf.len() {
        if buf.len() - offset < FRAME_HEADER {
            return Err(TraceError::format_at(
                "truncated frame header",
                offset as u64,
            ));
        }
        if buf[offset..offset + 4] != SYNC {
            return Err(TraceError::format_at("missing sync marker", offset as u64));
        }
        let mut cur = Cursor::new(&buf[offset + 4..]);
        let records = cur.get_u32_le()?;
        let payload_len = cur.get_u32_le()? as usize;
        let len = FRAME_HEADER + payload_len;
        if buf.len() - offset < len {
            return Err(TraceError::format_at(
                "truncated frame payload",
                offset as u64,
            ));
        }
        spans.push(FrameSpan {
            offset,
            len,
            records,
        });
        offset += len;
        if records == 0 {
            break;
        }
    }
    Ok(spans)
}

/// Incremental writer of the `BWSS2` streaming format.
///
/// Call [`StreamWriter::finish`] to emit the end marker and trailer;
/// dropping the writer without finishing produces a truncated stream
/// (which a [`RecoveryPolicy::Salvage`] reader still recovers records
/// from).
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    sink: W,
    version: u16,
    chunk_records: usize,
    buf: Vec<u8>,
    pending: u32,
    anchor_pc: u64,
    anchor_time: u64,
    prev_pc: i64,
    prev_time: u64,
    last_time: u64,
}

impl<W: Write> StreamWriter<W> {
    /// Writes a `BWSS2` stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn new(sink: W, name: &str) -> Result<Self, TraceError> {
        Self::with_version(sink, name, VERSION_2)
    }

    /// Writes a legacy `BWSS1` stream header (no checksums); exists so
    /// back-compat reading stays testable against a real producer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn new_v1(sink: W, name: &str) -> Result<Self, TraceError> {
        Self::with_version(sink, name, VERSION_1)
    }

    fn with_version(mut sink: W, name: &str, version: u16) -> Result<Self, TraceError> {
        let mut header = Vec::with_capacity(10 + name.len());
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&version.to_le_bytes());
        codec::put_u32_le(&mut header, name.len() as u32);
        header.extend_from_slice(name.as_bytes());
        sink.write_all(&header)?;
        Ok(StreamWriter {
            sink,
            version,
            chunk_records: DEFAULT_CHUNK_RECORDS,
            buf: Vec::with_capacity(DEFAULT_CHUNK_RECORDS * 4),
            pending: 0,
            anchor_pc: 0,
            anchor_time: 0,
            prev_pc: 0,
            prev_time: 0,
            last_time: 0,
        })
    }

    /// Overrides the records-per-chunk threshold (minimum 1). Mostly for
    /// tests that want many small chunks.
    #[must_use]
    pub fn with_chunk_records(mut self, n: usize) -> Self {
        self.chunk_records = n.max(1);
        self
    }

    /// Appends a record, flushing a chunk when the threshold is reached.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] if the record's timestamp
    /// precedes the previous one's, or [`TraceError::Io`] on write
    /// failure.
    pub fn push(&mut self, record: BranchRecord) -> Result<(), TraceError> {
        let time = record.time.get();
        if time < self.last_time {
            return Err(TraceError::OutOfOrder {
                previous: self.last_time,
                found: time,
            });
        }
        let pc_raw = record.pc.addr();
        let pc = pc_raw as i64;
        if self.version == VERSION_2 && self.pending == 0 {
            // Chunk start: re-anchor the delta state so the chunk is
            // self-contained (its first record encodes as zero deltas).
            self.anchor_pc = pc_raw;
            self.anchor_time = time;
            self.prev_pc = pc;
            self.prev_time = time;
        }
        let delta = codec::zigzag_encode(pc - self.prev_pc);
        codec::put_varint(&mut self.buf, (delta << 1) | record.direction.as_bit());
        codec::put_varint(&mut self.buf, time - self.prev_time);
        self.prev_pc = pc;
        self.prev_time = time;
        self.last_time = time;
        self.pending += 1;
        if self.pending as usize >= self.chunk_records || self.buf.len() >= MAX_WRITER_PAYLOAD {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.pending == 0 {
            return Ok(());
        }
        if self.version == VERSION_1 {
            self.sink.write_all(&self.pending.to_le_bytes())?;
            self.sink.write_all(&self.buf)?;
        } else {
            self.write_frame(self.pending, self.anchor_pc, self.anchor_time)?;
        }
        self.buf.clear();
        self.pending = 0;
        Ok(())
    }

    fn write_frame(
        &mut self,
        count: u32,
        anchor_pc: u64,
        anchor_time: u64,
    ) -> Result<(), TraceError> {
        let mut hashed = Vec::with_capacity(24);
        codec::put_u32_le(&mut hashed, count);
        codec::put_u32_le(&mut hashed, self.buf.len() as u32);
        codec::put_u64_le(&mut hashed, anchor_pc);
        codec::put_u64_le(&mut hashed, anchor_time);
        let crc = Crc32::new().update(&hashed).update(&self.buf).finish();
        self.sink.write_all(&SYNC)?;
        self.sink.write_all(&hashed)?;
        self.sink.write_all(&crc.to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        Ok(())
    }

    /// Flushes the final chunk and writes the end marker and trailer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn finish(mut self, total_instructions: u64) -> Result<(), TraceError> {
        self.flush_chunk()?;
        if self.version == VERSION_1 {
            self.sink.write_all(&0u32.to_le_bytes())?;
            self.sink.write_all(&total_instructions.to_le_bytes())?;
        } else {
            codec::put_u64_le(&mut self.buf, total_instructions);
            self.write_frame(0, 0, 0)?;
            self.buf.clear();
        }
        self.sink.flush()?;
        Ok(())
    }
}

/// Iterating reader of the `BWSS2` (and legacy `BWSS1`) streaming formats.
///
/// Yields `Result<BranchRecord, TraceError>`; after the iterator returns
/// `None`, [`StreamReader::total_instructions`] reports the trailer if the
/// stream ended cleanly and [`StreamReader::salvage_report`] tallies any
/// damage encountered.
#[derive(Debug)]
pub struct StreamReader<R: Read> {
    source: R,
    name: String,
    version: u16,
    policy: RecoveryPolicy,
    report: SalvageReport,
    total_instructions: Option<u64>,
    failed: bool,
    done: bool,
    /// Buffered bytes from `source`; `start` indexes the unconsumed head.
    buf: Vec<u8>,
    start: usize,
    eof: bool,
    /// Current chunk's decode state.
    payload: Vec<u8>,
    pay_off: usize,
    remaining_in_chunk: u32,
    prev_pc: i64,
    prev_time: u64,
    /// v2 bookkeeping: chunk counter, newest yielded timestamp, and the
    /// previous accepted frame's identity (duplicate detection).
    chunk_index: u64,
    last_time_seen: u64,
    last_sig: Option<(u32, u32, u64, u64, u32)>,
    /// CRC mismatches encountered (distinct from other corruption).
    crc_failures: u64,
    /// Observability: counter sink plus the last values already synced to
    /// it, so each `next()` reports only deltas.
    obs: Obs,
    obs_chunks_ok: u64,
    obs_chunks_dropped: u64,
    obs_crc_failures: u64,
}

impl<R: Read> StreamReader<R> {
    /// Reads and validates the stream header with the default
    /// [`RecoveryPolicy::Strict`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when the header is malformed.
    pub fn new(source: R) -> Result<Self, TraceError> {
        Self::with_recovery(source, RecoveryPolicy::Strict)
    }

    /// Reads and validates the stream header, reading the body under
    /// `policy`.
    ///
    /// The header itself (magic, version, name) is always strict: without
    /// it there is no format to salvage against.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when the header is malformed.
    pub fn with_recovery(mut source: R, policy: RecoveryPolicy) -> Result<Self, TraceError> {
        let mut header = [0u8; 6];
        source.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(TraceError::format_at("bad magic (expected \"BWSS\")", 0));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION_1 && version != VERSION_2 {
            return Err(TraceError::format(format!(
                "unsupported stream version {version} (expected {VERSION_1} or {VERSION_2})"
            )));
        }
        let mut len = [0u8; 4];
        source.read_exact(&mut len)?;
        let name_len = u32::from_le_bytes(len) as usize;
        let mut name = vec![0u8; name_len];
        source.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| TraceError::format(format!("name is not utf-8: {e}")))?;
        Ok(StreamReader {
            source,
            name,
            version,
            policy,
            report: SalvageReport::default(),
            total_instructions: None,
            failed: false,
            done: false,
            buf: Vec::new(),
            start: 0,
            eof: false,
            payload: Vec::new(),
            pay_off: 0,
            remaining_in_chunk: 0,
            prev_pc: 0,
            prev_time: 0,
            chunk_index: 0,
            last_time_seen: 0,
            last_sig: None,
            crc_failures: 0,
            obs: Obs::noop(),
            obs_chunks_ok: 0,
            obs_chunks_dropped: 0,
            obs_crc_failures: 0,
        })
    }

    /// The stream's trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The format version being read (1 or 2).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The trailer value, available once the stream has been fully
    /// iterated and ended cleanly. `None` after truncation.
    pub fn total_instructions(&self) -> Option<u64> {
        self.total_instructions
    }

    /// What validation and salvage encountered so far. Complete once the
    /// iterator has returned `None`.
    pub fn salvage_report(&self) -> &SalvageReport {
        &self.report
    }

    /// Number of data chunks accepted so far — advances as iteration
    /// crosses chunk boundaries, so callers can align periodic work (e.g.
    /// checkpoints) to chunk granularity.
    pub fn chunks_read(&self) -> u64 {
        self.report.chunks_ok
    }

    /// Attaches an observer. The reader reports `trace.records_read`,
    /// `trace.chunks_ok`, `trace.chunks_dropped`, and
    /// `trace.crc_failures` counters as iteration progresses; decoding is
    /// unaffected.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Chunk checksum mismatches encountered so far (a subset of the
    /// damage in [`StreamReader::salvage_report`]).
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Pushes counter deltas since the last sync into the observer.
    fn sync_obs(&mut self) {
        if !self.obs.is_recording() {
            return;
        }
        self.obs.add(
            "trace.chunks_ok",
            self.report.chunks_ok - self.obs_chunks_ok,
        );
        self.obs.add(
            "trace.chunks_dropped",
            self.report.chunks_dropped - self.obs_chunks_dropped,
        );
        self.obs.add(
            "trace.crc_failures",
            self.crc_failures - self.obs_crc_failures,
        );
        self.obs_chunks_ok = self.report.chunks_ok;
        self.obs_chunks_dropped = self.report.chunks_dropped;
        self.obs_crc_failures = self.crc_failures;
    }

    fn salvaging(&self) -> bool {
        self.policy == RecoveryPolicy::Salvage
    }

    /// Unconsumed buffered bytes.
    fn available(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to buffer at least `n` unconsumed bytes; `Ok(false)` means
    /// EOF arrived first.
    fn ensure(&mut self, n: usize) -> Result<bool, TraceError> {
        while self.available() < n {
            if self.eof {
                return Ok(false);
            }
            let mut tmp = [0u8; 8192];
            let got = self.source.read(&mut tmp)?;
            if got == 0 {
                self.eof = true;
            } else {
                self.buf.extend_from_slice(&tmp[..got]);
            }
        }
        Ok(true)
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start >= 1 << 16 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Strict: fail. Salvage: note the damage (one drop per contiguous
    /// damaged region) and slide forward one byte to keep scanning.
    fn corrupt_or_scan(&mut self, scanning: &mut bool, reason: &str) -> Result<(), TraceError> {
        if !self.salvaging() {
            self.failed = true;
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: reason.to_owned(),
            });
        }
        if !*scanning {
            *scanning = true;
            self.report.chunks_dropped += 1;
            let chunk = self.chunk_index;
            self.report.note(|| format!("chunk {chunk}: {reason}"));
        }
        self.consume(1);
        Ok(())
    }

    /// EOF arrived before a complete frame. `scanning` says whether the
    /// leftover bytes were already charged as a dropped region.
    fn handle_truncation(&mut self, reason: &str, scanning: bool) -> Result<bool, TraceError> {
        if !self.salvaging() {
            self.failed = true;
            return Err(TraceError::Corrupt {
                chunk: self.chunk_index,
                reason: reason.to_owned(),
            });
        }
        let chunk = self.chunk_index;
        self.report.note(|| format!("chunk {chunk}: {reason}"));
        if self.available() > 0 && !scanning {
            self.report.chunks_dropped += 1;
        }
        let leftover = self.available();
        self.consume(leftover);
        self.done = true;
        Ok(false)
    }

    /// Advances to the next valid v2 data chunk. `Ok(true)` loaded one;
    /// `Ok(false)` means the stream is over (clean end marker, or salvaged
    /// truncation).
    fn next_frame_v2(&mut self) -> Result<bool, TraceError> {
        let mut scanning = false;
        loop {
            if !self.ensure(4)? {
                if self.available() == 0 && !scanning {
                    return self.handle_truncation("stream ends without end marker", scanning);
                }
                return self
                    .handle_truncation("truncated or unrecognisable trailing bytes", scanning);
            }
            if self.buf[self.start..self.start + 4] != SYNC {
                self.corrupt_or_scan(&mut scanning, "bad sync marker")?;
                continue;
            }
            if !self.ensure(FRAME_HEADER)? {
                if !self.salvaging() {
                    return self.handle_truncation("truncated chunk header", scanning);
                }
                // EOF, but the remaining bytes are all buffered — keep
                // scanning them; a later (shorter) frame may still parse.
                self.corrupt_or_scan(&mut scanning, "truncated chunk header")?;
                continue;
            }
            let mut header = [0u8; FRAME_HEADER];
            header.copy_from_slice(&self.buf[self.start..self.start + FRAME_HEADER]);
            let mut cur = Cursor::new(&header[4..]);
            let count = cur.get_u32_le()?;
            let payload_len = cur.get_u32_le()?;
            let anchor_pc = cur.get_u64_le()?;
            let anchor_time = cur.get_u64_le()?;
            let crc = cur.get_u32_le()?;
            let plausible = payload_len <= MAX_READER_PAYLOAD
                && if count == 0 {
                    payload_len == 8
                } else {
                    u64::from(count) * 2 <= u64::from(payload_len)
                };
            if !plausible {
                self.corrupt_or_scan(&mut scanning, "implausible chunk header")?;
                continue;
            }
            if !self.ensure(FRAME_HEADER + payload_len as usize)? {
                if !self.salvaging() {
                    return self.handle_truncation("truncated chunk payload", scanning);
                }
                // A corrupted length can claim more than remains; don't
                // mistake that for truncation — scan for the next frame.
                self.corrupt_or_scan(&mut scanning, "truncated chunk payload")?;
                continue;
            }
            let pstart = self.start + FRAME_HEADER;
            let pend = pstart + payload_len as usize;
            let actual = Crc32::new()
                .update(&header[4..FRAME_HEADER - 4])
                .update(&self.buf[pstart..pend])
                .finish();
            if actual != crc {
                self.crc_failures += 1;
                self.corrupt_or_scan(&mut scanning, "chunk checksum mismatch")?;
                continue;
            }
            // The frame is internally consistent. Reject replays: an exact
            // duplicate of the previous chunk, or a chunk anchored before
            // data we already yielded.
            let sig = (count, payload_len, anchor_pc, anchor_time, crc);
            if self.last_sig == Some(sig) {
                if !self.salvaging() {
                    self.failed = true;
                    return Err(TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason: "duplicated chunk".to_owned(),
                    });
                }
                self.report.chunks_dropped += 1;
                let chunk = self.chunk_index;
                self.report
                    .note(|| format!("chunk {chunk}: duplicated chunk"));
                self.consume(FRAME_HEADER + payload_len as usize);
                scanning = false;
                continue;
            }
            if count > 0 && anchor_time < self.last_time_seen {
                if !self.salvaging() {
                    self.failed = true;
                    return Err(TraceError::Corrupt {
                        chunk: self.chunk_index,
                        reason: "chunk anchored before already-read records".to_owned(),
                    });
                }
                self.report.chunks_dropped += 1;
                let chunk = self.chunk_index;
                self.report
                    .note(|| format!("chunk {chunk}: chunk anchored before already-read records"));
                self.consume(FRAME_HEADER + payload_len as usize);
                scanning = false;
                continue;
            }
            if count == 0 {
                let mut trailer = Cursor::new(&self.buf[pstart..pend]);
                self.total_instructions = Some(trailer.get_u64_le()?);
                self.consume(FRAME_HEADER + payload_len as usize);
                self.done = true;
                return Ok(false);
            }
            self.payload.clear();
            self.payload.extend_from_slice(&self.buf[pstart..pend]);
            self.pay_off = 0;
            self.remaining_in_chunk = count;
            self.prev_pc = anchor_pc as i64;
            self.prev_time = anchor_time;
            self.last_sig = Some(sig);
            self.chunk_index += 1;
            self.report.chunks_ok += 1;
            self.consume(FRAME_HEADER + payload_len as usize);
            return Ok(true);
        }
    }

    /// Decodes one record from the current v2 chunk payload.
    fn decode_record_v2(&mut self) -> Result<BranchRecord, TraceError> {
        let mut cur = Cursor::new(&self.payload[self.pay_off..]);
        let before = cur.remaining();
        let tagged = cur.get_varint()?;
        let dt = cur.get_varint()?;
        let consumed = before - cur.remaining();
        let taken = tagged & 1 == 1;
        let pc = self
            .prev_pc
            .checked_add(codec::zigzag_decode(tagged >> 1))
            .ok_or_else(|| TraceError::format("pc delta overflow"))?;
        if pc < 0 {
            return Err(TraceError::format("negative pc"));
        }
        let time = self
            .prev_time
            .checked_add(dt)
            .ok_or_else(|| TraceError::format("time overflow"))?;
        self.pay_off += consumed;
        self.prev_pc = pc;
        self.prev_time = time;
        self.remaining_in_chunk -= 1;
        if self.remaining_in_chunk == 0 && self.pay_off != self.payload.len() {
            return Err(TraceError::format("chunk payload length mismatch"));
        }
        Ok(BranchRecord::from_raw(pc as u64, taken, time))
    }

    fn next_record_v2(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        loop {
            if self.remaining_in_chunk == 0 && (self.done || !self.next_frame_v2()?) {
                return Ok(None);
            }
            match self.decode_record_v2() {
                Ok(rec) => {
                    self.last_time_seen = rec.time.get();
                    self.report.records_recovered += 1;
                    return Ok(Some(rec));
                }
                Err(e) if self.salvaging() => {
                    // A CRC-valid chunk that does not decode (writer bug or
                    // an astronomically unlikely collision): drop the rest
                    // of it and move on.
                    self.report.chunks_dropped += 1;
                    self.report.note(|| format!("undecodable chunk: {e}"));
                    self.remaining_in_chunk = 0;
                }
                Err(e) => {
                    self.failed = true;
                    return Err(e);
                }
            }
        }
    }

    /// Pulls one varint for the v1 path, buffering source bytes on demand.
    fn read_varint_v1(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.ensure(1)? {
                return Err(TraceError::format("truncated varint"));
            }
            let byte = self.buf[self.start];
            self.consume(1);
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceError::format("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn next_record_v1_inner(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        if self.remaining_in_chunk == 0 {
            if self.done {
                return Ok(None);
            }
            if !self.ensure(4)? {
                return Err(TraceError::format("truncated chunk header"));
            }
            let head = &self.buf[self.start..];
            let count = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
            self.consume(4);
            if count == 0 {
                if !self.ensure(8)? {
                    return Err(TraceError::format("truncated trailer"));
                }
                let head = &self.buf[self.start..];
                let total = u64::from_le_bytes([
                    head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
                ]);
                self.consume(8);
                self.total_instructions = Some(total);
                self.done = true;
                return Ok(None);
            }
            self.remaining_in_chunk = count;
        }
        let tagged = self.read_varint_v1()?;
        let taken = tagged & 1 == 1;
        let pc = self
            .prev_pc
            .checked_add(codec::zigzag_decode(tagged >> 1))
            .ok_or_else(|| TraceError::format("pc delta overflow"))?;
        if pc < 0 {
            return Err(TraceError::format("negative pc"));
        }
        let dt = self.read_varint_v1()?;
        let time = self
            .prev_time
            .checked_add(dt)
            .ok_or_else(|| TraceError::format("time overflow"))?;
        self.prev_pc = pc;
        self.prev_time = time;
        self.remaining_in_chunk -= 1;
        Ok(Some(BranchRecord::from_raw(pc as u64, taken, time)))
    }

    fn next_record_v1(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        match self.next_record_v1_inner() {
            Ok(Some(rec)) => {
                self.report.records_recovered += 1;
                self.report.chunks_ok = self.chunk_index;
                Ok(Some(rec))
            }
            Ok(None) => Ok(None),
            Err(e) if self.salvaging() => {
                // v1 has no checksums or sync markers: salvage degrades to
                // keeping the valid prefix.
                self.report.note(|| format!("unsalvageable v1 damage: {e}"));
                self.report.chunks_dropped += 1;
                self.done = true;
                self.remaining_in_chunk = 0;
                Ok(None)
            }
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        bwsa_resilience::failpoint!("trace.decode_record");
        if self.version == VERSION_1 {
            let out = self.next_record_v1();
            if matches!(out, Ok(Some(_))) && self.remaining_in_chunk == 0 {
                self.chunk_index += 1;
                self.report.chunks_ok = self.chunk_index;
            }
            out
        } else {
            self.next_record_v2()
        }
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let out = match self.next_record() {
            Ok(Some(rec)) => {
                self.obs.add("trace.records_read", 1);
                Some(Ok(rec))
            }
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        };
        self.sync_obs();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| BranchRecord::from_raw(0x1000 + (i % 11) * 4, i % 3 == 0, (i + 1) * 2))
            .collect()
    }

    fn encode(recs: &[BranchRecord], chunk_records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "stream-test")
            .unwrap()
            .with_chunk_records(chunk_records);
        for r in recs {
            w.push(*r).unwrap();
        }
        w.finish(999).unwrap();
        buf
    }

    fn roundtrip(recs: &[BranchRecord]) -> (Vec<BranchRecord>, Option<u64>, String) {
        let buf = encode(recs, DEFAULT_CHUNK_RECORDS);
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        let total = reader.total_instructions();
        let name = reader.name().to_owned();
        assert!(reader.salvage_report().clean());
        (out, total, name)
    }

    #[test]
    fn empty_stream_roundtrips() {
        let (out, total, name) = roundtrip(&[]);
        assert!(out.is_empty());
        assert_eq!(total, Some(999));
        assert_eq!(name, "stream-test");
    }

    #[test]
    fn small_stream_roundtrips() {
        let recs = records(100);
        let (out, total, _) = roundtrip(&recs);
        assert_eq!(out, recs);
        assert_eq!(total, Some(999));
    }

    #[test]
    fn multi_chunk_stream_roundtrips() {
        let recs = records(3 * DEFAULT_CHUNK_RECORDS as u64 + 17);
        let (out, total, _) = roundtrip(&recs);
        assert_eq!(out.len(), recs.len());
        assert_eq!(out, recs);
        assert_eq!(total, Some(999));
    }

    #[test]
    fn encoding_is_deterministic() {
        let recs = records(1000);
        assert_eq!(encode(&recs, 64), encode(&recs, 64));
    }

    #[test]
    fn legacy_v1_streams_still_read() {
        let recs = records(2 * DEFAULT_CHUNK_RECORDS as u64 + 5);
        let mut buf = Vec::new();
        let mut w = StreamWriter::new_v1(&mut buf, "old").unwrap();
        for r in &recs {
            w.push(*r).unwrap();
        }
        w.finish(42).unwrap();
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        assert_eq!(reader.version(), 1);
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(out, recs);
        assert_eq!(reader.total_instructions(), Some(42));
    }

    #[test]
    fn writer_rejects_time_travel() {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "t").unwrap();
        w.push(BranchRecord::from_raw(0x4, true, 10)).unwrap();
        let err = w.push(BranchRecord::from_raw(0x8, true, 5)).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { .. }));
    }

    #[test]
    fn strict_truncation_is_an_error() {
        let recs = records(100);
        let mut buf = encode(&recs, DEFAULT_CHUNK_RECORDS);
        buf.truncate(buf.len() - 4);
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        let results: Vec<_> = reader.by_ref().collect();
        assert!(results.last().unwrap().is_err());
        assert!(reader.total_instructions().is_none());
    }

    #[test]
    fn salvage_truncation_keeps_whole_chunks() {
        let recs = records(256);
        let mut buf = encode(&recs, 64);
        // Cut into the trailer frame: every record chunk stays intact.
        buf.truncate(buf.len() - 4);
        let mut reader = StreamReader::with_recovery(&buf[..], RecoveryPolicy::Salvage).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(out, recs);
        assert_eq!(reader.total_instructions(), None);
        let report = reader.salvage_report();
        assert_eq!(report.chunks_ok, 4);
        assert!(report.first_error.is_some());
    }

    #[test]
    fn strict_detects_payload_bit_flip() {
        let recs = records(300);
        let mut buf = encode(&recs, 64);
        // Flip a bit comfortably inside the second chunk's payload.
        let pos = buf.len() / 2;
        buf[pos] ^= 0x10;
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        let err = reader
            .by_ref()
            .find_map(|r| r.err())
            .expect("corruption must surface");
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn salvage_drops_only_the_damaged_chunk() {
        let recs = records(64 * 5);
        let buf = encode(&recs, 64);
        // Find the third chunk's frame and flip a payload bit.
        let mut corrupt = buf.clone();
        let chunk_starts: Vec<usize> = sync_positions(&buf);
        assert!(chunk_starts.len() >= 4);
        corrupt[chunk_starts[2] + FRAME_HEADER + 3] ^= 0x04;
        let mut reader =
            StreamReader::with_recovery(&corrupt[..], RecoveryPolicy::Salvage).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        // Chunks 0,1,3,4 survive: 4 * 64 records.
        let mut expected: Vec<BranchRecord> = recs[..128].to_vec();
        expected.extend_from_slice(&recs[192..]);
        assert_eq!(out, expected);
        assert_eq!(reader.total_instructions(), Some(999));
        let report = reader.salvage_report();
        assert_eq!(report.chunks_ok, 4);
        assert_eq!(report.chunks_dropped, 1);
        assert_eq!(report.records_recovered, 256);
        assert!(report.first_error.as_deref().unwrap().contains("checksum"));
    }

    #[test]
    fn observer_counts_records_chunks_and_crc_failures() {
        let recs = records(64 * 5);
        let buf = encode(&recs, 64);
        let mut corrupt = buf.clone();
        let chunk_starts: Vec<usize> = sync_positions(&buf);
        corrupt[chunk_starts[2] + FRAME_HEADER + 3] ^= 0x04;
        let obs = Obs::recording();
        let mut reader = StreamReader::with_recovery(&corrupt[..], RecoveryPolicy::Salvage)
            .unwrap()
            .with_observer(obs.clone());
        let observed: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();

        // Observation does not change what is decoded.
        let mut plain = StreamReader::with_recovery(&corrupt[..], RecoveryPolicy::Salvage).unwrap();
        let expected: Vec<BranchRecord> = plain.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(observed, expected);

        let m = obs.snapshot().unwrap();
        assert_eq!(m.counter("trace.records_read"), 256);
        assert_eq!(m.counter("trace.chunks_ok"), 4);
        assert_eq!(m.counter("trace.chunks_dropped"), 1);
        assert_eq!(m.counter("trace.crc_failures"), 1);
        assert_eq!(reader.crc_failures(), 1);
    }

    #[test]
    fn salvage_drops_duplicated_chunk() {
        let recs = records(64 * 3);
        let buf = encode(&recs, 64);
        let starts = sync_positions(&buf);
        assert!(starts.len() >= 3);
        // Duplicate the second chunk in place.
        let second = buf[starts[1]..starts[2]].to_vec();
        let mut dup = buf[..starts[2]].to_vec();
        dup.extend_from_slice(&second);
        dup.extend_from_slice(&buf[starts[2]..]);
        let mut reader = StreamReader::with_recovery(&dup[..], RecoveryPolicy::Salvage).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(out, recs, "duplicate chunk must not duplicate records");
        let report = reader.salvage_report();
        assert_eq!(report.chunks_dropped, 1);
        assert!(report
            .first_error
            .as_deref()
            .unwrap()
            .contains("duplicated"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(StreamReader::new(&b"NOPE\x02\x00"[..]).is_err());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut buf = Vec::new();
        StreamWriter::new(&mut buf, "v").unwrap().finish(0).unwrap();
        buf[4] = 9;
        assert!(StreamReader::new(&buf[..])
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut buf = Vec::new();
        let w = StreamWriter::new(&mut buf, "t").unwrap();
        w.finish(0).unwrap();
        // Corrupt the end frame's checksum.
        let pos = buf.len() - 9;
        buf[pos] ^= 0xff;
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn matches_whole_buffer_format_content() {
        use crate::TraceBuilder;
        let recs = records(500);
        let mut builder = TraceBuilder::new("x");
        for r in &recs {
            builder.push(*r);
        }
        let trace = builder.finish();
        let (out, _, _) = roundtrip(&recs);
        assert_eq!(out, trace.records());
    }

    #[test]
    fn v1_salvage_recovers_valid_prefix() {
        let recs = records(2000);
        let mut buf = Vec::new();
        let mut w = StreamWriter::new_v1(&mut buf, "old").unwrap();
        for r in &recs {
            w.push(*r).unwrap();
        }
        w.finish(1).unwrap();
        buf.truncate(buf.len() - 40);
        let mut reader = StreamReader::with_recovery(&buf[..], RecoveryPolicy::Salvage).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert!(!out.is_empty() && out.len() < recs.len());
        assert_eq!(out[..], recs[..out.len()], "prefix only, in order");
        assert!(reader.total_instructions().is_none());
        assert!(!reader.salvage_report().clean());
    }

    /// Byte offsets of every frame sync marker in a v2 stream body.
    fn sync_positions(buf: &[u8]) -> Vec<usize> {
        frame_spans(buf).unwrap().iter().map(|s| s.offset).collect()
    }

    #[test]
    fn frame_spans_tile_the_body() {
        let buf = encode(&records(200), 64);
        let spans = frame_spans(&buf).unwrap();
        assert_eq!(spans.len(), 5, "four data frames plus the end frame");
        assert_eq!(spans[0].offset, body_offset(&buf).unwrap());
        for pair in spans.windows(2) {
            assert_eq!(pair[0].offset + pair[0].len, pair[1].offset);
        }
        let last = spans.last().unwrap();
        assert_eq!(last.records, 0);
        assert_eq!(last.offset + last.len, buf.len());
        assert_eq!(spans.iter().map(|s| u64::from(s.records)).sum::<u64>(), 200);
    }
}
