//! Streaming trace IO: write and read traces of unbounded length with
//! bounded memory.
//!
//! The whole-buffer format in [`crate::io`] needs the record count up
//! front. The streaming format (`BWSS1`) instead frames delta-encoded
//! records into length-prefixed chunks and ends with a zero-length chunk
//! plus a trailer, so a producer can emit records as they happen (e.g.
//! an interpreter profiling a long run) and a consumer can iterate
//! without materialising the trace.
//!
//! ```text
//! magic "BWSS", version u16 LE, name (u32 LE len + UTF-8)
//! repeat: chunk = u32 LE record_count (>0), records (varint deltas as BWST1)
//! end:    u32 LE 0, u64 LE total_instructions
//! ```
//!
//! # Example
//!
//! ```
//! use bwsa_trace::stream::{StreamReader, StreamWriter};
//! use bwsa_trace::BranchRecord;
//!
//! # fn main() -> Result<(), bwsa_trace::TraceError> {
//! let mut buf = Vec::new();
//! let mut w = StreamWriter::new(&mut buf, "live")?;
//! for i in 0..10_000u64 {
//!     w.push(BranchRecord::from_raw(0x400 + (i % 7) * 4, i % 3 == 0, i + 1))?;
//! }
//! w.finish(123_456)?;
//!
//! let mut r = StreamReader::new(&buf[..])?;
//! assert_eq!(r.name(), "live");
//! let n = r.by_ref().count();
//! assert_eq!(n, 10_000);
//! assert_eq!(r.total_instructions(), Some(123_456));
//! # Ok(())
//! # }
//! ```

use crate::{BranchRecord, TraceError};
use bytes::{BufMut, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"BWSS";
const VERSION: u16 = 1;
const CHUNK_RECORDS: usize = 4096;

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Incremental writer of the `BWSS1` streaming format.
///
/// Call [`StreamWriter::finish`] to emit the end marker and trailer;
/// dropping the writer without finishing produces a truncated stream the
/// reader will reject.
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    sink: W,
    buf: BytesMut,
    pending: usize,
    prev_pc: i64,
    prev_time: u64,
    last_time: u64,
}

impl<W: Write> StreamWriter<W> {
    /// Writes the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn new(mut sink: W, name: &str) -> Result<Self, TraceError> {
        let mut header = BytesMut::with_capacity(16 + name.len());
        header.put_slice(MAGIC);
        header.put_u16_le(VERSION);
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
        sink.write_all(&header)?;
        Ok(StreamWriter {
            sink,
            buf: BytesMut::with_capacity(CHUNK_RECORDS * 4),
            pending: 0,
            prev_pc: 0,
            prev_time: 0,
            last_time: 0,
        })
    }

    /// Appends a record, flushing a chunk when the internal buffer fills.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] if the record's timestamp
    /// precedes the previous one's, or [`TraceError::Io`] on write
    /// failure.
    pub fn push(&mut self, record: BranchRecord) -> Result<(), TraceError> {
        let time = record.time.get();
        if time < self.last_time {
            return Err(TraceError::OutOfOrder {
                previous: self.last_time,
                found: time,
            });
        }
        let pc = record.pc.addr() as i64;
        let delta = zigzag_encode(pc - self.prev_pc);
        put_varint(&mut self.buf, (delta << 1) | record.direction.as_bit());
        put_varint(&mut self.buf, time - self.prev_time);
        self.prev_pc = pc;
        self.prev_time = time;
        self.last_time = time;
        self.pending += 1;
        if self.pending >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.pending == 0 {
            return Ok(());
        }
        let mut frame = [0u8; 4];
        frame.copy_from_slice(&(self.pending as u32).to_le_bytes());
        self.sink.write_all(&frame)?;
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        self.pending = 0;
        Ok(())
    }

    /// Flushes the final chunk and writes the end marker and trailer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn finish(mut self, total_instructions: u64) -> Result<(), TraceError> {
        self.flush_chunk()?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(&total_instructions.to_le_bytes())?;
        self.sink.flush()?;
        Ok(())
    }
}

/// Iterating reader of the `BWSS1` streaming format.
///
/// Yields `Result<BranchRecord, TraceError>`; after the iterator returns
/// `None`, [`StreamReader::total_instructions`] reports the trailer if
/// the stream ended cleanly.
#[derive(Debug)]
pub struct StreamReader<R: Read> {
    source: R,
    name: String,
    chunk: Vec<u8>,
    offset: usize,
    remaining_in_chunk: u32,
    prev_pc: i64,
    prev_time: u64,
    total_instructions: Option<u64>,
    failed: bool,
}

impl<R: Read> StreamReader<R> {
    /// Reads and validates the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when the header is malformed.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut header = [0u8; 6];
        source.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(TraceError::format_at("bad magic (expected \"BWSS\")", 0));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(TraceError::format(format!(
                "unsupported stream version {version} (expected {VERSION})"
            )));
        }
        let mut len = [0u8; 4];
        source.read_exact(&mut len)?;
        let name_len = u32::from_le_bytes(len) as usize;
        let mut name = vec![0u8; name_len];
        source.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| TraceError::format(format!("name is not utf-8: {e}")))?;
        Ok(StreamReader {
            source,
            name,
            chunk: Vec::new(),
            offset: 0,
            remaining_in_chunk: 0,
            prev_pc: 0,
            prev_time: 0,
            total_instructions: None,
            failed: false,
        })
    }

    /// The stream's trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trailer value, available once the stream has been fully
    /// iterated and ended cleanly.
    pub fn total_instructions(&self) -> Option<u64> {
        self.total_instructions
    }

    fn get_varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            if self.offset >= self.chunk.len() {
                return Err(TraceError::format("varint crosses chunk boundary"));
            }
            let byte = self.chunk[self.offset];
            self.offset += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceError::format("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn load_chunk(&mut self) -> Result<bool, TraceError> {
        let mut frame = [0u8; 4];
        self.source.read_exact(&mut frame)?;
        let count = u32::from_le_bytes(frame);
        if count == 0 {
            let mut trailer = [0u8; 8];
            self.source.read_exact(&mut trailer)?;
            self.total_instructions = Some(u64::from_le_bytes(trailer));
            return Ok(false);
        }
        // A chunk's byte length is not framed; read records lazily by
        // buffering generously: read up to count * 20 bytes (max record
        // size) into memory is wasteful, so instead read byte-by-byte via
        // a BufReader-style approach. Simpler: chunks are written
        // contiguously, so pull bytes on demand into `chunk`.
        // We read exactly the bytes the varints consume: to do that
        // without lookahead, read one byte at a time from the source into
        // the chunk buffer. To keep syscalls sane the caller should hand
        // us a BufReader.
        self.remaining_in_chunk = count;
        self.chunk.clear();
        self.offset = 0;
        Ok(true)
    }

    fn read_byte_into_chunk(&mut self) -> Result<(), TraceError> {
        let mut b = [0u8; 1];
        self.source.read_exact(&mut b)?;
        self.chunk.push(b[0]);
        Ok(())
    }

    fn get_varint_streaming(&mut self) -> Result<u64, TraceError> {
        // Ensure the chunk buffer holds a complete varint starting at
        // `offset`, pulling bytes from the source as needed.
        let start = self.offset;
        loop {
            if self.offset >= self.chunk.len() {
                self.read_byte_into_chunk()?;
            }
            let byte = self.chunk[self.offset];
            self.offset += 1;
            if byte & 0x80 == 0 {
                break;
            }
        }
        self.offset = start;
        self.get_varint()
    }

    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        if self.remaining_in_chunk == 0
            && (self.total_instructions.is_some() || !self.load_chunk()?)
        {
            return Ok(None);
        }
        let tagged = self.get_varint_streaming()?;
        let taken = tagged & 1 == 1;
        let pc = self
            .prev_pc
            .checked_add(zigzag_decode(tagged >> 1))
            .ok_or_else(|| TraceError::format("pc delta overflow"))?;
        if pc < 0 {
            return Err(TraceError::format("negative pc"));
        }
        let dt = self.get_varint_streaming()?;
        let time = self
            .prev_time
            .checked_add(dt)
            .ok_or_else(|| TraceError::format("time overflow"))?;
        self.prev_pc = pc;
        self.prev_time = time;
        self.remaining_in_chunk -= 1;
        Ok(Some(BranchRecord::from_raw(pc as u64, taken, time)))
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| BranchRecord::from_raw(0x1000 + (i % 11) * 4, i % 3 == 0, (i + 1) * 2))
            .collect()
    }

    fn roundtrip(recs: &[BranchRecord]) -> (Vec<BranchRecord>, Option<u64>, String) {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "stream-test").unwrap();
        for r in recs {
            w.push(*r).unwrap();
        }
        w.finish(999).unwrap();
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        let total = reader.total_instructions();
        let name = reader.name().to_owned();
        (out, total, name)
    }

    #[test]
    fn empty_stream_roundtrips() {
        let (out, total, name) = roundtrip(&[]);
        assert!(out.is_empty());
        assert_eq!(total, Some(999));
        assert_eq!(name, "stream-test");
    }

    #[test]
    fn small_stream_roundtrips() {
        let recs = records(100);
        let (out, total, _) = roundtrip(&recs);
        assert_eq!(out, recs);
        assert_eq!(total, Some(999));
    }

    #[test]
    fn multi_chunk_stream_roundtrips() {
        let recs = records(3 * CHUNK_RECORDS as u64 + 17);
        let (out, total, _) = roundtrip(&recs);
        assert_eq!(out.len(), recs.len());
        assert_eq!(out, recs);
        assert_eq!(total, Some(999));
    }

    #[test]
    fn writer_rejects_time_travel() {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "t").unwrap();
        w.push(BranchRecord::from_raw(0x4, true, 10)).unwrap();
        let err = w.push(BranchRecord::from_raw(0x8, true, 5)).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { .. }));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let recs = records(100);
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "t").unwrap();
        for r in &recs {
            w.push(*r).unwrap();
        }
        w.finish(1).unwrap();
        // Cut the trailer off.
        buf.truncate(buf.len() - 4);
        let mut reader = StreamReader::new(&buf[..]).unwrap();
        let results: Vec<_> = reader.by_ref().collect();
        assert!(results.last().unwrap().is_err() || reader.total_instructions().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(StreamReader::new(&b"NOPE\x01\x00"[..]).is_err());
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut buf = Vec::new();
        let w = StreamWriter::new(&mut buf, "t").unwrap();
        w.finish(0).unwrap();
        // Corrupt: claim a chunk of 5 records with no bytes behind it.
        let mut bad = buf.clone();
        let trailer_start = bad.len() - 12;
        bad.truncate(trailer_start);
        bad.extend_from_slice(&5u32.to_le_bytes());
        let mut reader = StreamReader::new(&bad[..]).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn matches_whole_buffer_format_content() {
        use crate::TraceBuilder;
        let recs = records(500);
        let mut builder = TraceBuilder::new("x");
        for r in &recs {
            builder.push(*r);
        }
        let trace = builder.finish();
        let (out, _, _) = roundtrip(&recs);
        assert_eq!(out, trace.records());
    }
}
