//! Zero-copy trace ingest: memory-mapped file bytes with a buffered-read
//! fallback.
//!
//! [`TraceBytes::open`] memory-maps a regular file read-only on Unix so
//! the columnar decoder scans pages straight out of the page cache — no
//! copy into a heap buffer and no read-ahead of blocks a range decode
//! never touches. Pipes, empty files, non-Unix targets, and any mmap
//! failure fall back to an ordinary whole-file read; callers only ever
//! see a byte slice.
//!
//! This is the one module in the crate allowed to use `unsafe` (the raw
//! `mmap`/`munmap` calls); everything else remains `deny(unsafe_code)`.
//!
//! # Example
//!
//! ```no_run
//! use bwsa_trace::mmap::TraceBytes;
//!
//! let bytes = TraceBytes::open("trace.bws3".as_ref())?;
//! assert!(bytes.len() > 0);
//! # Ok::<(), bwsa_trace::TraceError>(())
//! ```

use crate::TraceError;
use std::fs::File;
use std::ops::Deref;
use std::path::Path;

/// File bytes for ingest: memory-mapped when possible, owned otherwise.
///
/// Dereferences to `[u8]`, so decoders take `&[u8]` and never know which
/// path produced it.
#[derive(Debug)]
pub enum TraceBytes {
    /// A read-only, privately mapped view of the file.
    #[cfg(unix)]
    Mapped(Mmap),
    /// A heap copy (fallback for pipes, empty files, or mmap failure).
    Owned(Vec<u8>),
}

impl TraceBytes {
    /// Opens `path`, preferring a read-only memory map.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the file cannot be opened or (on
    /// the fallback path) read.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = File::open(path)?;
        Self::from_file(&file)
    }

    /// Maps an already-open file, falling back to reading it whole.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the fallback read fails.
    pub fn from_file(file: &File) -> Result<Self, TraceError> {
        #[cfg(unix)]
        {
            if let Ok(meta) = file.metadata() {
                if meta.is_file() && meta.len() > 0 {
                    if let Some(map) = Mmap::map(file, meta.len() as usize) {
                        return Ok(TraceBytes::Mapped(map));
                    }
                }
            }
        }
        let mut buf = Vec::new();
        let mut reader = file;
        std::io::Read::read_to_end(&mut reader, &mut buf)?;
        Ok(TraceBytes::Owned(buf))
    }

    /// Wraps an in-memory buffer (no file involved).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        TraceBytes::Owned(bytes)
    }

    /// Returns `true` when the bytes come from a memory map rather than
    /// a heap copy.
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self, TraceBytes::Mapped(_))
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

impl Deref for TraceBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            TraceBytes::Mapped(map) => map.as_slice(),
            TraceBytes::Owned(buf) => buf,
        }
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    //! The raw `mmap(2)` wrapper. `std` already links libc on Unix, so
    //! the two syscall wrappers are declared directly instead of pulling
    //! in the `libc` crate.
    #![allow(unsafe_code)]

    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned read-only `MAP_PRIVATE` mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ-only and exclusively owned by this
    // struct for its whole lifetime, so shared cross-thread reads and a
    // Drop on any thread are sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only; `None` on any failure
        /// (callers fall back to a buffered read).
        pub(super) fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we
            // hold open; the kernel validates the fd and length, and a
            // MAP_FAILED return is handled below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until Drop unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }

        /// Number of mapped bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Always `false`: zero-length maps are never constructed.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`,
            // unmapped exactly once here.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::io::Write as _;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bwsa-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn regular_file_is_mapped_and_readable() {
        let path = temp_path("regular");
        std::fs::write(&path, b"BWS3 hello mapped world").unwrap();
        let bytes = TraceBytes::open(&path).unwrap();
        assert_eq!(&bytes[..4], b"BWS3");
        assert_eq!(bytes.len(), 23);
        #[cfg(unix)]
        assert!(bytes.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let bytes = TraceBytes::open(&path).unwrap();
        assert!(bytes.is_empty());
        assert!(!bytes.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipe_like_source_falls_back_to_owned() {
        // A file opened after seeking/teeing still works via from_file;
        // simulate the non-mmap branch with an owned buffer.
        let bytes = TraceBytes::from_vec(vec![1, 2, 3]);
        assert!(!bytes.is_mapped());
        assert_eq!(&*bytes, &[1, 2, 3]);
    }

    #[test]
    fn mapped_bytes_survive_many_reads() {
        let path = temp_path("large");
        let mut f = std::fs::File::create(&path).unwrap();
        let chunk = [0xABu8; 4096];
        for _ in 0..8 {
            f.write_all(&chunk).unwrap();
        }
        drop(f);
        let bytes = TraceBytes::open(&path).unwrap();
        assert_eq!(bytes.len(), 8 * 4096);
        assert!(bytes.iter().all(|&b| b == 0xAB));
        std::fs::remove_file(&path).unwrap();
    }
}
