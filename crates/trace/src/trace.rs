//! In-memory branch traces and their construction.

use crate::{BranchId, BranchRecord, Direction, InstrCount, Pc, TraceError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Interner mapping static branch program counters to dense [`BranchId`]s.
///
/// Ids are assigned in first-appearance order, so they are contiguous from
/// zero. Every downstream analysis indexes its per-branch state with them.
///
/// # Example
///
/// ```
/// use bwsa_trace::{BranchTable, Pc};
///
/// let mut table = BranchTable::new();
/// let a = table.intern(Pc::new(0x400));
/// let b = table.intern(Pc::new(0x500));
/// assert_ne!(a, b);
/// assert_eq!(table.intern(Pc::new(0x400)), a);
/// assert_eq!(table.pc_of(a), Pc::new(0x400));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchTable {
    by_pc: HashMap<Pc, BranchId>,
    pcs: Vec<Pc>,
}

impl BranchTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table whose ids are the positions of `pcs` — the bulk
    /// construction path used by the columnar (`BWSS3`) reader, which
    /// knows the full directory up front and interns each static branch
    /// exactly once instead of hashing per record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] if `pcs` contains a duplicate or
    /// more than `u32::MAX` entries.
    pub fn from_pcs(pcs: impl IntoIterator<Item = Pc>) -> Result<Self, TraceError> {
        let pcs: Vec<Pc> = pcs.into_iter().collect();
        if u32::try_from(pcs.len()).is_err() {
            return Err(TraceError::format("more than u32::MAX static branches"));
        }
        let mut by_pc = HashMap::with_capacity(pcs.len());
        for (i, &pc) in pcs.iter().enumerate() {
            if by_pc.insert(pc, BranchId::new(i as u32)).is_some() {
                return Err(TraceError::format(format!(
                    "duplicate pc {pc} in branch directory"
                )));
            }
        }
        Ok(BranchTable { by_pc, pcs })
    }

    /// Returns the id for `pc`, assigning a fresh one on first sight.
    pub fn intern(&mut self, pc: Pc) -> BranchId {
        if let Some(&id) = self.by_pc.get(&pc) {
            return id;
        }
        let id = BranchId::new(
            u32::try_from(self.pcs.len()).expect("more than u32::MAX static branches"),
        );
        self.pcs.push(pc);
        self.by_pc.insert(pc, id);
        id
    }

    /// Looks up an already-interned pc.
    pub fn id_of(&self, pc: Pc) -> Option<BranchId> {
        self.by_pc.get(&pc).copied()
    }

    /// Returns the pc of an interned branch.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn pc_of(&self, id: BranchId) -> Pc {
        self.pcs[id.index()]
    }

    /// Number of distinct static branches interned.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Returns `true` if no branch has been interned.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Iterates over `(id, pc)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, Pc)> + '_ {
        self.pcs
            .iter()
            .enumerate()
            .map(|(i, &pc)| (BranchId::new(i as u32), pc))
    }
}

/// Summary metadata describing how a trace was produced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable name (benchmark / input-set label).
    pub name: String,
    /// Total instructions executed by the producing run (conditional
    /// branches included). Zero when unknown.
    pub total_instructions: u64,
}

/// An in-memory dynamic conditional-branch trace.
///
/// Records are stored in execution order with non-decreasing timestamps; a
/// parallel [`BranchId`] array (built while the trace is constructed) lets
/// hot analysis loops avoid a hash lookup per record.
///
/// Construct one with [`TraceBuilder`] or deserialise with [`crate::io`].
///
/// # Example
///
/// ```
/// use bwsa_trace::{Direction, TraceBuilder};
///
/// let mut b = TraceBuilder::new("demo");
/// for i in 0..4u64 {
///     b.record(0x400 + (i % 2) * 8, i % 2 == 0, 5 * (i + 1));
/// }
/// let t = b.finish();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.static_branch_count(), 2);
/// let (id0, rec0) = t.indexed_records().next().unwrap();
/// assert_eq!(t.table().pc_of(id0), rec0.pc);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    records: Vec<BranchRecord>,
    ids: Vec<BranchId>,
    table: BranchTable,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            meta: TraceMeta {
                name: name.into(),
                total_instructions: 0,
            },
            ..Trace::default()
        }
    }

    /// Number of dynamic branch records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct static branches observed.
    pub fn static_branch_count(&self) -> usize {
        self.table.len()
    }

    /// The trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Mutable access to the metadata.
    pub fn meta_mut(&mut self) -> &mut TraceMeta {
        &mut self.meta
    }

    /// The pc ↔ id interner for this trace.
    pub fn table(&self) -> &BranchTable {
        &self.table
    }

    /// The raw records in execution order.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// The interned id of each record, parallel to [`Trace::records`].
    pub fn record_ids(&self) -> &[BranchId] {
        &self.ids
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }

    /// Iterates over `(static id, record)` pairs in execution order.
    pub fn indexed_records(&self) -> impl Iterator<Item = (BranchId, &BranchRecord)> + '_ {
        self.ids.iter().copied().zip(self.records.iter())
    }

    /// Appends a record, interning its pc.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] if `record.time` precedes the
    /// previous record's timestamp.
    pub fn push(&mut self, record: BranchRecord) -> Result<(), TraceError> {
        if let Some(last) = self.records.last() {
            if record.time < last.time {
                return Err(TraceError::OutOfOrder {
                    previous: last.time.get(),
                    found: record.time.get(),
                });
            }
        }
        let id = self.table.intern(record.pc);
        self.ids.push(id);
        self.records.push(record);
        if record.time.get() > self.meta.total_instructions {
            self.meta.total_instructions = record.time.get();
        }
        Ok(())
    }

    /// Assembles a trace from pre-interned columns in one shot — the bulk
    /// construction path for columnar (`BWSS3`) decode, which replaces the
    /// per-record hash/intern of [`Trace::push`] with flat validation
    /// scans over the finished arrays.
    ///
    /// `meta.total_instructions` is raised to the last record's timestamp
    /// when it falls short, matching [`Trace::push`] semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when `ids` and `records` disagree in
    /// length or an id does not map to its record's pc in `table`, and
    /// [`TraceError::OutOfOrder`] when timestamps regress.
    pub fn from_parts(
        mut meta: TraceMeta,
        table: BranchTable,
        ids: Vec<BranchId>,
        records: Vec<BranchRecord>,
    ) -> Result<Trace, TraceError> {
        if ids.len() != records.len() {
            return Err(TraceError::format(format!(
                "id column has {} entries for {} records",
                ids.len(),
                records.len()
            )));
        }
        // One fused flat scan validates both invariants — monotone
        // timestamps and id/directory agreement — touching each record
        // once; no hashing, bounds-check-free via zip.
        let mut prev_time = InstrCount::new(0);
        for (id, rec) in ids.iter().zip(records.iter()) {
            if rec.time < prev_time {
                return Err(TraceError::OutOfOrder {
                    previous: prev_time.get(),
                    found: rec.time.get(),
                });
            }
            prev_time = rec.time;
            if table.pcs.get(id.index()) != Some(&rec.pc) {
                return Err(TraceError::format(
                    "id column disagrees with the branch directory",
                ));
            }
        }
        if let Some(last) = records.last() {
            meta.total_instructions = meta.total_instructions.max(last.time.get());
        }
        Ok(Trace {
            meta,
            records,
            ids,
            table,
        })
    }

    /// Returns a new trace containing only records whose static branch is
    /// accepted by `keep`.
    ///
    /// Timestamps are preserved, so interleaving structure among retained
    /// branches is unchanged — this is how the paper restricts attention to
    /// the most frequent static branches (Table 1) without perturbing the
    /// analysis of the survivors.
    pub fn filtered(&self, mut keep: impl FnMut(BranchId) -> bool) -> Trace {
        let mut out = Trace::new(self.meta.name.clone());
        out.meta.total_instructions = self.meta.total_instructions;
        for (id, rec) in self.indexed_records() {
            if keep(id) {
                out.push(*rec).expect("source trace was ordered");
            }
        }
        out
    }

    /// Splits the trace into `n` time-contiguous shards of near-equal
    /// record count (the first `len % n` shards hold one extra record).
    ///
    /// Shards are borrowed views, cheap to create, and cover every record
    /// exactly once in execution order — the unit of work for the parallel
    /// analysis engine. When `n` exceeds the record count the surplus
    /// shards are empty, so any shard count is valid.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use bwsa_trace::TraceBuilder;
    ///
    /// let mut b = TraceBuilder::new("s");
    /// for i in 0..7u64 {
    ///     b.record(0x40, true, i + 1);
    /// }
    /// let t = b.finish();
    /// let shards = t.shards(3);
    /// assert_eq!(shards.len(), 3);
    /// assert_eq!(shards.iter().map(|s| s.len()).collect::<Vec<_>>(), [3, 2, 2]);
    /// assert_eq!(shards[1].start, 3);
    /// ```
    pub fn shards(&self, n: usize) -> Vec<TraceShard<'_>> {
        assert!(n > 0, "shard count must be positive");
        let len = self.records.len();
        let base = len / n;
        let extra = len % n;
        let mut shards = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            shards.push(TraceShard {
                start,
                ids: &self.ids[start..start + size],
                records: &self.records[start..start + size],
            });
            start += size;
        }
        shards
    }

    /// Concatenates another trace onto this one, shifting its timestamps to
    /// start after this trace ends. Static branches with equal pcs are
    /// identified with each other.
    ///
    /// This implements the paper's §5.2 *cumulative profile* construction,
    /// where conflict graphs from several input sets are merged by analysing
    /// the concatenation of their runs.
    pub fn concat(&mut self, other: &Trace) {
        let base = self.meta.total_instructions;
        for rec in other.records() {
            let shifted = BranchRecord::new(
                rec.pc,
                rec.direction,
                InstrCount::new(base + rec.time.get()),
            );
            self.push(shifted).expect("shifted timestamps are ordered");
        }
    }
}

/// A time-contiguous segment of a [`Trace`], produced by
/// [`Trace::shards`].
///
/// `ids` and `records` are parallel slices; record `i` of the shard is
/// record `start + i` of the source trace, with its pc already interned
/// into the trace's [`BranchTable`].
#[derive(Debug, Clone, Copy)]
pub struct TraceShard<'a> {
    /// Index of the shard's first record in the source trace.
    pub start: usize,
    /// Interned static branch id of each record, parallel to `records`.
    pub ids: &'a [BranchId],
    /// The shard's dynamic branch records, in execution order.
    pub records: &'a [BranchRecord],
}

impl TraceShard<'_> {
    /// Number of dynamic branch records in the shard.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(static id, record)` pairs in execution order.
    pub fn indexed_records(&self) -> impl Iterator<Item = (BranchId, &BranchRecord)> + '_ {
        self.ids.iter().copied().zip(self.records.iter())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace '{}': {} dynamic branches over {} static sites, {} instructions",
            self.meta.name,
            self.records.len(),
            self.table.len(),
            self.meta.total_instructions
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Incremental [`Trace`] constructor used by trace producers.
///
/// Unlike [`Trace::push`] this panics on out-of-order timestamps, because a
/// producer generating its own clock has no legitimate way to go backwards;
/// readers of external data should use [`Trace::push`] and surface the
/// error.
///
/// # Example
///
/// ```
/// use bwsa_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new("loop");
/// b.record(0x400, true, 5);
/// b.record(0x400, false, 10);
/// let t = b.finish();
/// assert_eq!(t.meta().total_instructions, 10);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Creates a builder for a named trace.
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            trace: Trace::new(name),
        }
    }

    /// Appends a dynamic branch instance.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous record's timestamp.
    pub fn record(&mut self, pc: u64, taken: bool, time: u64) -> &mut Self {
        self.push(BranchRecord::new(
            Pc::new(pc),
            Direction::from_taken(taken),
            InstrCount::new(time),
        ))
    }

    /// Appends an already-constructed record.
    ///
    /// # Panics
    ///
    /// Panics if the record's timestamp precedes the previous one's.
    pub fn push(&mut self, record: BranchRecord) -> &mut Self {
        self.trace
            .push(record)
            .expect("trace producer went backwards in time");
        self
    }

    /// Sets the total instruction count of the producing run.
    pub fn total_instructions(&mut self, n: u64) -> &mut Self {
        self.trace.meta.total_instructions = n;
        self
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finishes construction and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Trace {
        let mut b = TraceBuilder::new("t");
        b.record(0x400, true, 5)
            .record(0x440, false, 10)
            .record(0x480, true, 15)
            .record(0x400, true, 20);
        b.finish()
    }

    #[test]
    fn builder_assigns_dense_ids_in_first_seen_order() {
        let t = small();
        let ids: Vec<u32> = t.record_ids().iter().map(|i| i.as_u32()).collect();
        assert_eq!(ids, [0, 1, 2, 0]);
        assert_eq!(t.static_branch_count(), 3);
    }

    #[test]
    fn push_rejects_time_travel() {
        let mut t = Trace::new("x");
        t.push(BranchRecord::from_raw(0x1, true, 10)).unwrap();
        let err = t.push(BranchRecord::from_raw(0x2, true, 5)).unwrap_err();
        assert!(matches!(
            err,
            TraceError::OutOfOrder {
                previous: 10,
                found: 5
            }
        ));
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut t = Trace::new("x");
        t.push(BranchRecord::from_raw(0x1, true, 10)).unwrap();
        t.push(BranchRecord::from_raw(0x2, true, 10)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn total_instructions_tracks_last_timestamp() {
        let t = small();
        assert_eq!(t.meta().total_instructions, 20);
    }

    #[test]
    fn filtered_keeps_timestamps() {
        let t = small();
        let keep = t.table().id_of(Pc::new(0x400)).unwrap();
        let f = t.filtered(|id| id == keep);
        assert_eq!(f.len(), 2);
        assert_eq!(f.records()[0].time.get(), 5);
        assert_eq!(f.records()[1].time.get(), 20);
        assert_eq!(f.static_branch_count(), 1);
    }

    #[test]
    fn concat_shifts_and_identifies_shared_pcs() {
        let mut a = small();
        let b = small();
        a.concat(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.static_branch_count(), 3, "pcs shared, not duplicated");
        assert_eq!(a.records()[4].time.get(), 25, "shifted by 20");
        assert_eq!(a.meta().total_instructions, 40);
    }

    #[test]
    fn shards_cover_every_record_exactly_once() {
        let t = small();
        for n in 1..=8 {
            let shards = t.shards(n);
            assert_eq!(shards.len(), n);
            let mut index = 0usize;
            for s in &shards {
                assert_eq!(s.start, index);
                assert_eq!(s.ids.len(), s.records.len());
                for (k, (id, rec)) in s.indexed_records().enumerate() {
                    assert_eq!(id, t.record_ids()[s.start + k]);
                    assert_eq!(*rec, t.records()[s.start + k]);
                }
                index += s.len();
            }
            assert_eq!(index, t.len(), "{n} shards");
        }
    }

    #[test]
    fn surplus_shards_are_empty() {
        let t = small();
        let shards = t.shards(10);
        assert_eq!(shards.len(), 10);
        assert!(shards[4..].iter().all(TraceShard::is_empty));
        assert_eq!(shards.iter().map(TraceShard::len).sum::<usize>(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        small().shards(0);
    }

    #[test]
    fn display_is_informative() {
        let t = small();
        let s = t.to_string();
        assert!(s.contains("4 dynamic") && s.contains("3 static"));
    }

    #[test]
    fn table_iter_matches_pc_of() {
        let t = small();
        for (id, pc) in t.table().iter() {
            assert_eq!(t.table().pc_of(id), pc);
            assert_eq!(t.table().id_of(pc), Some(id));
        }
    }
}
