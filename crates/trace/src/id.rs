//! Newtype identifiers used throughout the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a *static* conditional branch instruction.
///
/// Ids are assigned by interning program counters in first-appearance
/// order (see [`crate::BranchTable`]), so they are contiguous from zero
/// and usable as vector indices by every downstream analysis.
///
/// # Example
///
/// ```
/// use bwsa_trace::BranchId;
///
/// let id = BranchId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "b7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BranchId(u32);

impl BranchId {
    /// Creates a branch id from a dense index.
    pub const fn new(index: u32) -> Self {
        BranchId(index)
    }

    /// Returns the dense index, suitable for direct vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for BranchId {
    fn from(v: u32) -> Self {
        BranchId(v)
    }
}

impl From<BranchId> for u32 {
    fn from(v: BranchId) -> Self {
        v.0
    }
}

/// A program counter: the address of a static branch instruction.
///
/// In the synthetic workloads produced by `bwsa-workload` every static
/// conditional branch has a unique, 4-byte-aligned address, mirroring the
/// property the paper relies on when it indexes the BHT with
/// `(pc >> 2) mod N`.
///
/// # Example
///
/// ```
/// use bwsa_trace::Pc;
///
/// let pc = Pc::new(0x0040_0010);
/// assert_eq!(pc.word_index(), 0x0010_0004);
/// assert_eq!(format!("{pc}"), "0x400010");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw address.
    pub const fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// Returns the raw address.
    pub const fn addr(self) -> u64 {
        self.0
    }

    /// Returns the address shifted right by two — the "instruction word"
    /// index conventionally used for branch-table hashing on fixed-width
    /// 4-byte ISAs such as the paper's SimpleScalar PISA.
    pub const fn word_index(self) -> u64 {
        self.0 >> 2
    }

    /// Conventional PC-modulo table index: `(pc >> 2) mod table_size`.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is zero.
    pub fn table_index(self, table_size: usize) -> usize {
        assert!(table_size > 0, "table_size must be non-zero");
        (self.word_index() % table_size as u64) as usize
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

impl From<Pc> for u64 {
    fn from(v: Pc) -> Self {
        v.0
    }
}

/// A count of dynamic instructions executed, used as the timestamp domain
/// of the paper's interleaving analysis (§4.1: "we use a count of the
/// number of instructions executed prior to that dynamic branch instance").
///
/// # Example
///
/// ```
/// use bwsa_trace::InstrCount;
///
/// let t = InstrCount::new(20);
/// assert!(t > InstrCount::new(5));
/// assert_eq!(t.get(), 20);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct InstrCount(u64);

impl InstrCount {
    /// The zero timestamp.
    pub const ZERO: InstrCount = InstrCount(0);

    /// Creates an instruction count.
    pub const fn new(count: u64) -> Self {
        InstrCount(count)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the count advanced by `n` instructions.
    pub const fn advance(self, n: u64) -> Self {
        InstrCount(self.0 + n)
    }

    /// Saturating difference `self - earlier`.
    pub const fn since(self, earlier: InstrCount) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for InstrCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for InstrCount {
    fn from(v: u64) -> Self {
        InstrCount(v)
    }
}

impl From<InstrCount> for u64 {
    fn from(v: InstrCount) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_id_roundtrip() {
        let id = BranchId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(BranchId::from(42u32), id);
    }

    #[test]
    fn branch_id_ordering_follows_index() {
        assert!(BranchId::new(1) < BranchId::new(2));
    }

    #[test]
    fn pc_word_index_strips_byte_offset() {
        assert_eq!(Pc::new(0x1000).word_index(), 0x400);
        assert_eq!(Pc::new(0x1004).word_index(), 0x401);
    }

    #[test]
    fn pc_table_index_is_modulo() {
        let pc = Pc::new(0x1004);
        assert_eq!(pc.table_index(1024), 0x401 % 1024);
        assert_eq!(pc.table_index(1), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn pc_table_index_rejects_zero_size() {
        Pc::new(0x1000).table_index(0);
    }

    #[test]
    fn instr_count_advance_and_since() {
        let t = InstrCount::ZERO.advance(10).advance(5);
        assert_eq!(t.get(), 15);
        assert_eq!(t.since(InstrCount::new(5)), 10);
        assert_eq!(InstrCount::new(5).since(t), 0, "since saturates");
    }

    #[test]
    fn display_formats() {
        assert_eq!(BranchId::new(3).to_string(), "b3");
        assert_eq!(Pc::new(255).to_string(), "0xff");
        assert_eq!(InstrCount::new(9).to_string(), "9");
    }
}
