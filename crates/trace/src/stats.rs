//! Aggregate trace statistics beyond the per-branch profile.
//!
//! These quantify the properties the workload generator must reproduce
//! for the analysis to be meaningful: how densely branches occur in the
//! instruction stream, how re-executions of a branch are spaced (the
//! temporal locality the working-set analysis feeds on), and how taken
//! rates distribute across branches (what classification can harvest).

use crate::{BranchId, Trace};
use serde::{Deserialize, Serialize};

/// Distribution summary of a set of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: u64,
}

impl DistSummary {
    /// Summarises samples; returns `None` for an empty slice.
    ///
    /// The input order does not matter (the slice is copied and sorted).
    pub fn of(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        let sum: u128 = sorted.iter().map(|&s| u128::from(s)).sum();
        Some(DistSummary {
            count,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sum as f64 / count as f64,
            median: sorted[(sorted.len() - 1) / 2],
        })
    }
}

/// Whole-trace statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Dynamic conditional branches per instruction (0 when the total
    /// instruction count is unknown).
    pub branch_density: f64,
    /// Distribution of instruction-count gaps between consecutive dynamic
    /// executions of the *same* static branch.
    pub reexecution_distance: Option<DistSummary>,
    /// Fraction of dynamic branches resolved taken.
    pub dynamic_taken_rate: f64,
    /// Static branches per taken-rate decile (`histogram[d]` counts
    /// branches with taken rate in `[d/10, (d+1)/10)`; rate 1.0 lands in
    /// the last bucket).
    pub taken_rate_deciles: [usize; 10],
}

/// Computes [`TraceStats`] in two passes over the trace.
///
/// # Example
///
/// ```
/// use bwsa_trace::{stats::trace_stats, TraceBuilder};
///
/// let mut b = TraceBuilder::new("s");
/// for i in 0..100u64 {
///     b.record(0x40, i % 2 == 0, (i + 1) * 5);
/// }
/// let s = trace_stats(&b.finish());
/// assert_eq!(s.dynamic_taken_rate, 0.5);
/// assert_eq!(s.reexecution_distance.unwrap().median, 5);
/// ```
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let total_instr = trace.meta().total_instructions;
    let branch_density = if total_instr == 0 {
        0.0
    } else {
        trace.len() as f64 / total_instr as f64
    };

    let mut last: Vec<Option<u64>> = vec![None; trace.static_branch_count()];
    let mut gaps = Vec::new();
    let mut taken = 0u64;
    for (id, rec) in trace.indexed_records() {
        let t = rec.time.get();
        if let Some(prev) = last[id.index()] {
            gaps.push(t - prev);
        }
        last[id.index()] = Some(t);
        taken += rec.is_taken() as u64;
    }

    let profile = crate::profile::BranchProfile::from_trace(trace);
    let mut deciles = [0usize; 10];
    for i in 0..trace.static_branch_count() {
        let rate = profile.stats(BranchId::new(i as u32)).taken_rate();
        let bucket = ((rate * 10.0) as usize).min(9);
        deciles[bucket] += 1;
    }

    TraceStats {
        branch_density,
        reexecution_distance: DistSummary::of(&gaps),
        dynamic_taken_rate: if trace.is_empty() {
            0.0
        } else {
            taken as f64 / trace.len() as f64
        },
        taken_rate_deciles: deciles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn dist_summary_basics() {
        let s = DistSummary::of(&[5, 1, 3]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(DistSummary::of(&[]).is_none());
    }

    #[test]
    fn dist_summary_even_count_uses_lower_median() {
        let s = DistSummary::of(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.median, 2);
    }

    #[test]
    fn density_uses_total_instructions() {
        let mut b = TraceBuilder::new("d");
        b.record(0x40, true, 10).record(0x44, true, 20);
        b.total_instructions(100);
        let s = trace_stats(&b.finish());
        assert!((s.branch_density - 0.02).abs() < 1e-12);
    }

    #[test]
    fn reexecution_gaps_are_per_branch() {
        let mut b = TraceBuilder::new("g");
        // Branch A at 10, 30; branch B at 20, 60.
        b.record(0x40, true, 10)
            .record(0x44, true, 20)
            .record(0x40, true, 30)
            .record(0x44, true, 60);
        let s = trace_stats(&b.finish());
        let d = s.reexecution_distance.unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.min, 20);
        assert_eq!(d.max, 40);
    }

    #[test]
    fn taken_rate_deciles_cover_all_branches() {
        let mut b = TraceBuilder::new("h");
        let mut t = 0;
        for i in 0..10u64 {
            for (pc, taken) in [(0x40, true), (0x44, false), (0x48, i < 5)] {
                t += 1;
                b.record(pc, taken, t);
            }
        }
        let s = trace_stats(&b.finish());
        assert_eq!(s.taken_rate_deciles.iter().sum::<usize>(), 3);
        assert_eq!(s.taken_rate_deciles[9], 1, "always-taken in the top decile");
        assert_eq!(
            s.taken_rate_deciles[0], 1,
            "never-taken in the bottom decile"
        );
        assert_eq!(s.taken_rate_deciles[5], 1, "50% in the middle");
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = trace_stats(&crate::Trace::new("e"));
        assert_eq!(s.branch_density, 0.0);
        assert_eq!(s.dynamic_taken_rate, 0.0);
        assert!(s.reexecution_distance.is_none());
    }
}
