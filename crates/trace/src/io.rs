//! Trace serialisation: a compact delta-encoded binary format and a
//! line-oriented text format.
//!
//! # Binary format (`BWST1`)
//!
//! ```text
//! magic   : 4 bytes  "BWST"
//! version : u16 LE   (1)
//! name    : u32 LE length + UTF-8 bytes
//! total   : u64 LE   total instructions
//! count   : u64 LE   record count
//! records : per record,
//!           varint( zigzag(pc - prev_pc) << 1 | taken )
//!           varint( time - prev_time )
//! ```
//!
//! Deltas are LEB128 varints: consecutive branches are usually close in
//! both address and time, so typical records cost 2–4 bytes instead of 17.
//!
//! # Text format
//!
//! One record per line: `pc_hex direction time`, e.g. `0x400 T 5`.
//! Lines beginning with `#` and blank lines are ignored.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::{io as trace_io, TraceBuilder};
//!
//! # fn main() -> Result<(), bwsa_trace::TraceError> {
//! let mut b = TraceBuilder::new("rt");
//! b.record(0x400, true, 5).record(0x404, false, 9);
//! let trace = b.finish();
//!
//! let mut buf = Vec::new();
//! trace_io::write_binary(&trace, &mut buf)?;
//! let back = trace_io::read_binary(&buf[..])?;
//! assert_eq!(back.records(), trace.records());
//! # Ok(())
//! # }
//! ```

use crate::codec::{self, Cursor};
use crate::{Trace, TraceBuilder, TraceError};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"BWST";
const VERSION: u16 = 1;

/// Encodes a trace into the `BWST1` binary format.
pub fn encode_binary(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + trace.len() * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let name = trace.meta().name.as_bytes();
    codec::put_u32_le(&mut buf, name.len() as u32);
    buf.extend_from_slice(name);
    codec::put_u64_le(&mut buf, trace.meta().total_instructions);
    codec::put_u64_le(&mut buf, trace.len() as u64);
    let mut prev_pc = 0i64;
    let mut prev_time = 0u64;
    for rec in trace.records() {
        let pc = rec.pc.addr() as i64;
        let delta = codec::zigzag_encode(pc - prev_pc);
        codec::put_varint(&mut buf, (delta << 1) | rec.direction.as_bit());
        codec::put_varint(&mut buf, rec.time.get() - prev_time);
        prev_pc = pc;
        prev_time = rec.time.get();
    }
    buf
}

/// Writes a trace in binary format to any [`Write`] (a `&mut` reference
/// also works).
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceError> {
    w.write_all(&encode_binary(trace))?;
    Ok(())
}

/// Reads a binary-format trace from any [`Read`] (a `&mut` reference also
/// works).
///
/// # Errors
///
/// Returns [`TraceError::Io`] on read failure and [`TraceError::Format`]
/// when the bytes are not a valid `BWST1` stream.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    bwsa_resilience::failpoint!("trace.read_binary");
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    decode_binary(&raw)
}

/// Decodes a trace from an in-memory `BWST1` buffer.
///
/// # Errors
///
/// Returns [`TraceError::Format`] when the bytes are malformed.
pub fn decode_binary(raw: &[u8]) -> Result<Trace, TraceError> {
    let mut buf = Cursor::new(raw);
    if raw.len() < 4 || &raw[..4] != MAGIC {
        return Err(TraceError::format_at("bad magic (expected \"BWST\")", 0));
    }
    buf.take(4)?;
    let version = buf
        .get_u16_le()
        .map_err(|_| TraceError::format("truncated header"))?;
    if version != VERSION {
        return Err(TraceError::format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let name_len = buf
        .get_u32_le()
        .map_err(|_| TraceError::format("truncated name length"))? as usize;
    let name_bytes = buf
        .take(name_len)
        .map_err(|_| TraceError::format("truncated name"))?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|e| TraceError::format(format!("name is not utf-8: {e}")))?
        .to_owned();
    if buf.remaining() < 16 {
        return Err(TraceError::format("truncated counts"));
    }
    let total_instructions = buf.get_u64_le()?;
    let count = buf.get_u64_le()?;

    let mut builder = TraceBuilder::new(name);
    let mut prev_pc = 0i64;
    let mut prev_time = 0u64;
    for _ in 0..count {
        let tagged = buf.get_varint()?;
        let taken = tagged & 1 == 1;
        let pc = prev_pc
            .checked_add(codec::zigzag_decode(tagged >> 1))
            .ok_or_else(|| TraceError::format("pc delta overflow"))?;
        if pc < 0 {
            return Err(TraceError::format("negative pc"));
        }
        let time = prev_time
            .checked_add(buf.get_varint()?)
            .ok_or_else(|| TraceError::format("time overflow"))?;
        builder.record(pc as u64, taken, time);
        prev_pc = pc;
        prev_time = time;
    }
    if !buf.is_empty() {
        return Err(TraceError::format(format!(
            "{} trailing bytes after last record",
            buf.remaining()
        )));
    }
    builder.total_instructions(total_instructions);
    Ok(builder.finish())
}

/// Writes a trace in the human-readable text format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure.
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceError> {
    writeln!(w, "# bwsa trace: {}", trace.meta().name)?;
    writeln!(
        w,
        "# total_instructions: {}",
        trace.meta().total_instructions
    )?;
    for rec in trace.records() {
        writeln!(w, "{:#x} {} {}", rec.pc.addr(), rec.direction, rec.time)?;
    }
    Ok(())
}

/// Reads a text-format trace.
///
/// The trace name is taken from a leading `# bwsa trace: <name>` comment
/// when present, otherwise `"text"`.
///
/// # Errors
///
/// Returns [`TraceError::Format`] (with a 1-based line number as offset)
/// when a line cannot be parsed, and [`TraceError::OutOfOrder`] when
/// timestamps regress.
pub fn read_text<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut s = String::new();
    r.read_to_string(&mut s)?;
    let mut trace = Trace::new("text");
    for (lineno, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(name) = rest.trim().strip_prefix("bwsa trace:") {
                trace.meta_mut().name = name.trim().to_owned();
            } else if let Some(total) = rest.trim().strip_prefix("total_instructions:") {
                trace.meta_mut().total_instructions = total.trim().parse().map_err(|e| {
                    TraceError::format_at(format!("bad total: {e}"), lineno as u64 + 1)
                })?;
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let err =
            |what: &str| TraceError::format_at(format!("{what}: {line:?}"), lineno as u64 + 1);
        let pc_str = parts.next().ok_or_else(|| err("missing pc"))?;
        let pc = if let Some(hex) = pc_str.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err("bad hex pc"))?
        } else {
            pc_str.parse().map_err(|_| err("bad pc"))?
        };
        let taken = match parts.next().ok_or_else(|| err("missing direction"))? {
            "T" | "t" | "1" => true,
            "N" | "n" | "0" => false,
            _ => return Err(err("bad direction")),
        };
        let time: u64 = parts
            .next()
            .ok_or_else(|| err("missing time"))?
            .parse()
            .map_err(|_| err("bad time"))?;
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        trace.push(crate::BranchRecord::from_raw(pc, taken, time))?;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("sample");
        b.record(0x400, true, 5)
            .record(0x7fff_0000, false, 6)
            .record(0x400, true, 1000)
            .record(0x404, false, 1000);
        b.total_instructions(2000);
        b.finish()
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let t = sample();
        let bytes = encode_binary(&t);
        let back = decode_binary(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_roundtrip_via_io_traits() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_compact_for_local_branches() {
        // A tight loop: same pc, stride-5 timestamps → ~3 bytes/record.
        let mut b = TraceBuilder::new("loop");
        for i in 1..=1000u64 {
            b.record(0x400, true, i * 5);
        }
        let t = b.finish();
        let bytes = encode_binary(&t);
        assert!(bytes.len() < 1000 * 4, "got {} bytes", bytes.len());
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let err = decode_binary(b"NOPE----").unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let t = sample();
        let mut bytes = encode_binary(&t);
        bytes[4] = 9;
        assert!(decode_binary(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = encode_binary(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_binary(&sample());
        bytes.push(0);
        assert!(decode_binary(&bytes)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.meta().name, "sample");
        assert_eq!(back.meta().total_instructions, 2000);
    }

    #[test]
    fn text_reader_tolerates_comments_and_blanks() {
        let src = "# a comment\n\n0x10 T 1\n  0x14 N 2 \n# end\n";
        let t = read_text(src.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn text_reader_reports_line_numbers() {
        let src = "0x10 T 1\n0x14 X 2\n";
        let err = read_text(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("offset 2"), "{err}");
    }

    #[test]
    fn text_reader_rejects_out_of_order() {
        let src = "0x10 T 10\n0x14 N 2\n";
        assert!(matches!(
            read_text(src.as_bytes()).unwrap_err(),
            TraceError::OutOfOrder { .. }
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let back = decode_binary(&encode_binary(&t)).unwrap();
        assert_eq!(back, t);
    }
}
