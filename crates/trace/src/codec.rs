//! Shared low-level encoding primitives for the trace wire formats:
//! LEB128 varints, zigzag signed mapping, and CRC32 checksums.
//!
//! Both the whole-buffer [`crate::io`] (`BWST1`) and streaming
//! [`crate::stream`] (`BWSS1`/`BWSS2`) formats delta-encode records with
//! these primitives; the checkpoint files written by downstream crates
//! reuse them too, so corruption detection behaves identically everywhere.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::codec::{self, Cursor};
//!
//! let mut buf = Vec::new();
//! codec::put_varint(&mut buf, codec::zigzag_encode(-3));
//! codec::put_varint(&mut buf, 300);
//!
//! let mut cur = Cursor::new(&buf);
//! assert_eq!(codec::zigzag_decode(cur.get_varint().unwrap()), -3);
//! assert_eq!(cur.get_varint().unwrap(), 300);
//! assert!(cur.is_empty());
//! ```

use crate::TraceError;

/// Maps a signed value to an unsigned one with small absolute values
/// staying small: `0, -1, 1, -2, … → 0, 1, 2, 3, …`.
pub const fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub const fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends `v` as little-endian bytes.
pub fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as little-endian bytes.
pub fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A consuming read cursor over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { rest: bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    /// Consumes and returns `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.rest.len() < n {
            return Err(TraceError::format(format!(
                "truncated input: wanted {n} bytes, {} remain",
                self.rest.len()
            )));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on truncation.
    pub fn get_u16_le(&mut self) -> Result<u16, TraceError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on truncation.
    pub fn get_u32_le(&mut self) -> Result<u32, TraceError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on truncation.
    pub fn get_u64_le(&mut self) -> Result<u64, TraceError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Consumes an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on truncation or when the encoding
    /// overflows a `u64` (more than 10 bytes, or a 10th byte above 1).
    pub fn get_varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = match self.rest.split_first() {
                Some((&b, tail)) => {
                    self.rest = tail;
                    b
                }
                None => return Err(TraceError::format("truncated varint")),
            };
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(TraceError::format("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// CRC32 (IEEE 802.3, the zlib/`cksum -o 3` polynomial), computed bytewise
/// with a lazily built lookup table.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

/// Incremental CRC32 over multiple slices.
///
/// # Example
///
/// ```
/// use bwsa_trace::codec::{crc32, Crc32};
///
/// let whole = crc32(b"hello world");
/// let split = Crc32::new().update(b"hello ").update(b"world").finish();
/// assert_eq!(whole, split);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    ///
    /// Eight-byte words go through a slice-by-8 table pass — eight
    /// independent lookups per word instead of a one-byte dependency
    /// chain — which is what keeps block validation off the columnar
    /// ingest profile (DESIGN.md §16).
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        let tables = crc_tables();
        let mut chunks = bytes.chunks_exact(8);
        for word in chunks.by_ref() {
            let lo = self.state ^ u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
            let hi = u32::from_le_bytes([word[4], word[5], word[6], word[7]]);
            self.state = tables[7][(lo & 0xff) as usize]
                ^ tables[6][((lo >> 8) & 0xff) as usize]
                ^ tables[5][((lo >> 16) & 0xff) as usize]
                ^ tables[4][(lo >> 24) as usize]
                ^ tables[3][(hi & 0xff) as usize]
                ^ tables[2][((hi >> 8) & 0xff) as usize]
                ^ tables[1][((hi >> 16) & 0xff) as usize]
                ^ tables[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = (self.state ^ u32::from(b)) & 0xff;
            self.state = (self.state >> 8) ^ tables[0][idx as usize];
        }
        self
    }

    /// Finalises and returns the checksum.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// 64-bit FNV-1a content digest over a byte slice.
///
/// This is the trace-content half of the corpus result-cache key: two
/// trace files with the same bytes share a digest, and any byte change
/// moves it. FNV-1a is not collision-resistant against adversaries —
/// the cache's verify-on-read path (stored key + CRC framing) is what
/// rejects wrong cells; the digest only has to make accidental
/// collisions vanishingly unlikely.
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Slice-by-8 lookup tables: `tables[0]` is the classic byte table,
/// `tables[k][b]` advances byte `b` through `k` further zero bytes, so
/// eight per-byte steps collapse into eight independent XORs.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, entry) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        let byte_table = tables[0];
        for k in 1..8 {
            let prev_table = tables[k - 1];
            for (entry, &prev) in tables[k].iter_mut().zip(prev_table.iter()) {
                *entry = (prev >> 8) ^ byte_table[(prev & 0xff) as usize];
            }
        }
        tables
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_digest_is_stable_and_content_sensitive() {
        // Pinned FNV-1a vectors: the digest feeds durable cache keys,
        // so it must never change across releases.
        assert_eq!(content_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        let base = content_digest(b"BWSS2 payload");
        let mut flipped = b"BWSS2 payload".to_vec();
        flipped[5] ^= 0x01;
        assert_ne!(content_digest(&flipped), base);
        assert_eq!(content_digest(b"BWSS2 payload"), base);
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes_and_samples() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            123_456_789,
            -987_654_321,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            (1 << 14) - 1,
            1 << 14,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            u32::MAX as u64,
            (1 << 35) - 1,
            (1 << 42) - 1,
            (1 << 49) - 1,
            (1 << 56) - 1,
            (1 << 63) - 1,
            1 << 63,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10, "{v} took {} bytes", buf.len());
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.get_varint().unwrap(), v);
            assert!(cur.is_empty());
        }
    }

    #[test]
    fn varint_length_grows_every_seven_bits() {
        for (v, len) in [(0u64, 1), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), len, "for value {v}");
        }
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_rejects_ten_byte_overflow() {
        // Eleven continuation bytes can never terminate within u64 range.
        let eleven = [0xffu8; 11];
        assert!(Cursor::new(&eleven).get_varint().is_err());
        // Ten bytes whose final byte exceeds the single valid top bit.
        let mut too_big = [0x80u8; 10];
        too_big[9] = 0x02;
        assert!(Cursor::new(&too_big).get_varint().is_err());
        // The largest encodable value still decodes.
        let mut max = [0xffu8; 10];
        max[9] = 0x01;
        assert_eq!(Cursor::new(&max).get_varint().unwrap(), u64::MAX);
    }

    #[test]
    fn varint_truncation_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(
                Cursor::new(&buf[..cut]).get_varint().is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn cursor_fixed_width_reads_roundtrip() {
        let mut buf = Vec::new();
        buf.push(0xAB);
        put_u32_le(&mut buf, 0xDEAD_BEEF);
        put_u64_le(&mut buf, 0x0123_4567_89AB_CDEF);
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.get_u8().unwrap(), 0xAB);
        assert_eq!(cur.get_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(cur.is_empty());
        assert!(cur.get_u8().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"branch working set analysis".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn incremental_crc_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 7, 128, 255, 256] {
            let inc = Crc32::new()
                .update(&data[..split])
                .update(&data[split..])
                .finish();
            assert_eq!(inc, crc32(&data));
        }
    }
}
