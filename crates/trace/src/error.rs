//! Error type for trace construction and IO.

use std::error::Error;
use std::fmt;
use std::io;

/// Error produced while building, reading, or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying IO failure.
    Io(io::Error),
    /// The input did not conform to the expected trace format.
    Format {
        /// Human-readable description of the malformation.
        reason: String,
        /// Byte or line offset at which it was detected, when known.
        offset: Option<u64>,
    },
    /// Records were supplied out of timestamp order.
    OutOfOrder {
        /// Timestamp of the previous record.
        previous: u64,
        /// Offending (earlier) timestamp.
        found: u64,
    },
    /// A checksummed chunk failed validation (bad sync marker, CRC
    /// mismatch, or inconsistent framing) in a `BWSS2` stream.
    Corrupt {
        /// Zero-based index of the chunk at which corruption was detected.
        chunk: u64,
        /// What failed.
        reason: String,
    },
}

impl TraceError {
    /// Creates a format error with no offset information.
    pub fn format(reason: impl Into<String>) -> Self {
        TraceError::Format {
            reason: reason.into(),
            offset: None,
        }
    }

    /// Creates a format error at a known offset.
    pub fn format_at(reason: impl Into<String>, offset: u64) -> Self {
        TraceError::Format {
            reason: reason.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format {
                reason,
                offset: Some(o),
            } => {
                write!(f, "malformed trace at offset {o}: {reason}")
            }
            TraceError::Format {
                reason,
                offset: None,
            } => {
                write!(f, "malformed trace: {reason}")
            }
            TraceError::OutOfOrder { previous, found } => write!(
                f,
                "trace records out of order: timestamp {found} after {previous}"
            ),
            TraceError::Corrupt { chunk, reason } => {
                write!(f, "corrupt stream chunk {chunk}: {reason}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset_when_known() {
        let e = TraceError::format_at("bad magic", 4);
        assert!(e.to_string().contains("offset 4"));
        let e = TraceError::format("truncated");
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn io_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e = TraceError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn corrupt_display_names_the_chunk() {
        let e = TraceError::Corrupt {
            chunk: 7,
            reason: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("chunk 7") && s.contains("checksum"), "{s}");
    }

    #[test]
    fn out_of_order_display() {
        let e = TraceError::OutOfOrder {
            previous: 10,
            found: 5,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains("10"));
    }
}
