//! `BWSS3` — the columnar block trace format, built for cold-ingest
//! throughput.
//!
//! `BWSS2` ([`crate::stream`]) interleaves every record's fields and pays
//! a per-record cost on ingest: two varint decodes, a hash-map intern,
//! and a time-ordering branch for every dynamic branch. `BWSS3` stores
//! the same records as **structure-of-arrays column blocks** so a reader
//! can decode a whole block into flat scratch buffers, validate it with
//! a handful of slice scans the autovectorizer handles, and construct
//! the [`Trace`] in bulk — interning each static branch **once** (from
//! the block's new-pc column or the footer directory) instead of hashing
//! once per record.
//!
//! # Wire format
//!
//! ```text
//! header : magic "BWS3", version u16 LE (1), name (u32 LE len + UTF-8)
//! block  : sync         4 bytes  A7 3B D9 4C
//!          count        u32 LE   records in the block (>0)
//!          new_pcs      u32 LE   static branches first seen in this block
//!          pcs_len      u32 LE   byte length of the new-pc column
//!          ids_len      u32 LE   byte length of the id column
//!          times_len    u32 LE   byte length of the time column
//!          anchor_time  u64 LE   absolute time of the block's first record
//!          crc32        u32 LE   CRC32 over the six fields above ‖ payload
//!          payload      new-pc column ‖ id column ‖ taken bitmap ‖ time column
//! footer : magic "BW3F"
//!          record_count        u64 LE
//!          total_instructions  u64 LE
//!          branch_count u32 LE, then the directory: every static pc in
//!              id-assignment order as zigzag-delta varints
//!          block_count  u32 LE, then per block: offset u64 LE (of the
//!              sync marker), count u32 LE
//! trailer: footer_len u32 LE, crc32 u32 LE over the footer bytes,
//!          magic "3SWB"
//! ```
//!
//! Column encodings:
//!
//! * **new-pc column** — the pcs whose [`BranchId`]s are assigned in this
//!   block, in assignment order, as `zigzag(pc - prev_pc)` varints
//!   (`prev_pc` starts at 0 per block). Replaying these columns in block
//!   order rebuilds the id → pc directory, so a torn-tail prefix is
//!   fully decodable without the footer.
//! * **id column** — `zigzag(id - prev_id)` varints with `prev_id` reset
//!   to 0 at each block start, so blocks decode independently.
//! * **taken bitmap** — `ceil(count / 8)` bytes, LSB-first.
//! * **time column** — unsigned `time - prev_time` varints with
//!   `prev_time` starting at `anchor_time` (the first delta is 0), which
//!   makes intra-block time order a structural invariant.
//!
//! # Independence, salvage, and the footer
//!
//! Every block carries its own CRC, record count, and absolute time
//! anchor, and its columns are self-delimiting — blocks are
//! independently decodable and shard-addressable. The footer's block
//! index turns shard planning into O(1) seeks, and its directory makes
//! the id → pc mapping available without replaying earlier blocks,
//! which is what permits *skipping* a corrupt block under
//! [`RecoveryPolicy::Salvage`]. Without a valid footer (a torn tail),
//! salvage keeps the valid block prefix instead: a damaged block also
//! loses the new-pc assignments later blocks depend on, so the prefix
//! is the sound recovery boundary. [`RecoveryPolicy::Strict`] requires
//! an intact footer.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::columnar::{read_columnar, ColumnarWriter};
//! use bwsa_trace::stream::RecoveryPolicy;
//! use bwsa_trace::BranchRecord;
//!
//! # fn main() -> Result<(), bwsa_trace::TraceError> {
//! let mut buf = Vec::new();
//! let mut w = ColumnarWriter::new(&mut buf, "cold")?;
//! for i in 0..10_000u64 {
//!     w.push(BranchRecord::from_raw(0x400 + (i % 7) * 4, i % 3 == 0, i + 1))?;
//! }
//! w.finish(123_456)?;
//!
//! let (trace, report) = read_columnar(&buf, RecoveryPolicy::Strict)?;
//! assert_eq!(trace.len(), 10_000);
//! assert_eq!(trace.meta().total_instructions, 123_456);
//! assert!(report.clean());
//! # Ok(())
//! # }
//! ```

use crate::codec::{self, Crc32, Cursor};
use crate::stream::{RecoveryPolicy, SalvageReport};
use crate::{
    BranchId, BranchRecord, BranchTable, Direction, InstrCount, Pc, Trace, TraceError, TraceMeta,
};
use std::collections::HashMap;
use std::io::Write;
use std::ops::Range;

/// File magic of the columnar format.
pub const MAGIC: &[u8; 4] = b"BWS3";
/// Current columnar format version.
const VERSION: u16 = 1;
/// Block sync marker, distinct from the `BWSS2` chunk marker.
const SYNC: [u8; 4] = [0xA7, 0x3B, 0xD9, 0x4C];
/// Footer magic (start of the footer payload).
const FOOTER_MAGIC: &[u8; 4] = b"BW3F";
/// Trailing magic, the last four bytes of every finished file.
const TRAILER_MAGIC: &[u8; 4] = b"3SWB";
/// Bytes in a block header: sync + 5×u32 + anchor_time + crc.
const BLOCK_HEADER: usize = 4 + 5 * 4 + 8 + 4;
/// Bytes in the trailer: footer_len + crc + magic.
const TRAILER: usize = 4 + 4 + 4;
/// Records per block by default (same granularity as `BWSS2` chunks).
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;
/// A reader rejects blocks claiming more records than this; together
/// with the payload bounds checks it keeps corrupt counts from driving
/// large allocations.
const MAX_BLOCK_RECORDS: u32 = 1 << 22;
/// A reader rejects column sections longer than this.
const MAX_SECTION: u32 = 1 << 24;

/// Returns `true` when `bytes` start with the `BWSS3` magic.
pub fn is_columnar(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC)
}

/// Decodes a whole `BWSS3` buffer into a [`Trace`].
///
/// Convenience wrapper over [`ColumnarFile::parse`] +
/// [`ColumnarFile::decode`]; see the latter for the policy semantics.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for a malformed header (or, under
/// [`RecoveryPolicy::Strict`], a torn tail) and [`TraceError::Corrupt`]
/// for a damaged block in strict mode.
pub fn read_columnar(
    bytes: &[u8],
    policy: RecoveryPolicy,
) -> Result<(Trace, SalvageReport), TraceError> {
    ColumnarFile::parse(bytes)?.decode(policy)
}

/// Incremental writer of the `BWSS3` columnar format.
///
/// Records arrive row-wise through [`ColumnarWriter::push`] and are
/// transposed into column blocks; [`ColumnarWriter::finish`] flushes the
/// final block and writes the directory/index footer. Dropping the
/// writer without finishing produces a footerless (torn-tail) file from
/// which a [`RecoveryPolicy::Salvage`] reader still recovers the
/// complete block prefix.
#[derive(Debug)]
pub struct ColumnarWriter<W: Write> {
    sink: W,
    /// Bytes written so far — block offsets for the footer index.
    offset: u64,
    block_records: usize,
    /// pc → id assignment, mirrored by `pcs` in id order.
    by_pc: HashMap<u64, u32>,
    pcs: Vec<u64>,
    /// Current block's columns.
    ids: Vec<u32>,
    taken: Vec<bool>,
    times: Vec<u64>,
    new_pcs: Vec<u64>,
    /// Footer index entries: (offset, record count).
    index: Vec<(u64, u32)>,
    records: u64,
    last_time: u64,
    /// Encode scratch, reused across blocks.
    buf: Vec<u8>,
}

impl<W: Write> ColumnarWriter<W> {
    /// Writes a `BWSS3` file header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn new(mut sink: W, name: &str) -> Result<Self, TraceError> {
        let mut header = Vec::with_capacity(10 + name.len());
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        codec::put_u32_le(&mut header, name.len() as u32);
        header.extend_from_slice(name.as_bytes());
        sink.write_all(&header)?;
        Ok(ColumnarWriter {
            sink,
            offset: header.len() as u64,
            block_records: DEFAULT_BLOCK_RECORDS,
            by_pc: HashMap::new(),
            pcs: Vec::new(),
            ids: Vec::new(),
            taken: Vec::new(),
            times: Vec::new(),
            new_pcs: Vec::new(),
            index: Vec::new(),
            records: 0,
            last_time: 0,
            buf: Vec::new(),
        })
    }

    /// Overrides the records-per-block threshold (minimum 1). Mostly for
    /// tests that want many small blocks.
    #[must_use]
    pub fn with_block_records(mut self, n: usize) -> Self {
        self.block_records = n.max(1);
        self
    }

    /// Appends a record, flushing a block when the threshold is reached.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] if the record's timestamp
    /// precedes the previous one's, or [`TraceError::Io`] on write
    /// failure.
    pub fn push(&mut self, record: BranchRecord) -> Result<(), TraceError> {
        let time = record.time.get();
        if time < self.last_time {
            return Err(TraceError::OutOfOrder {
                previous: self.last_time,
                found: time,
            });
        }
        let pc = record.pc.addr();
        let id = match self.by_pc.get(&pc) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.pcs.len())
                    .map_err(|_| TraceError::format("more than u32::MAX static branches"))?;
                self.by_pc.insert(pc, id);
                self.pcs.push(pc);
                self.new_pcs.push(pc);
                id
            }
        };
        self.ids.push(id);
        self.taken.push(record.direction.is_taken());
        self.times.push(time);
        self.last_time = time;
        self.records += 1;
        if self.ids.len() >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        if self.ids.is_empty() {
            return Ok(());
        }
        let count = self.ids.len() as u32;
        let anchor_time = self.times[0];
        self.buf.clear();
        // New-pc column.
        let mut prev_pc = 0i64;
        for &pc in &self.new_pcs {
            codec::put_varint(
                &mut self.buf,
                codec::zigzag_encode((pc as i64).wrapping_sub(prev_pc)),
            );
            prev_pc = pc as i64;
        }
        let pcs_len = self.buf.len();
        // Id column, delta state reset per block.
        let mut prev_id = 0i64;
        for &id in &self.ids {
            codec::put_varint(&mut self.buf, codec::zigzag_encode(i64::from(id) - prev_id));
            prev_id = i64::from(id);
        }
        let ids_len = self.buf.len() - pcs_len;
        // Taken bitmap, LSB-first.
        let bitmap_start = self.buf.len();
        self.buf
            .resize(bitmap_start + self.ids.len().div_ceil(8), 0);
        for (i, &taken) in self.taken.iter().enumerate() {
            self.buf[bitmap_start + i / 8] |= u8::from(taken) << (i % 8);
        }
        // Time column: unsigned deltas from the anchor.
        let times_start = self.buf.len();
        let mut prev_time = anchor_time;
        for &time in &self.times {
            codec::put_varint(&mut self.buf, time - prev_time);
            prev_time = time;
        }
        let times_len = self.buf.len() - times_start;

        let mut hashed = Vec::with_capacity(BLOCK_HEADER - 8);
        codec::put_u32_le(&mut hashed, count);
        codec::put_u32_le(&mut hashed, self.new_pcs.len() as u32);
        codec::put_u32_le(&mut hashed, pcs_len as u32);
        codec::put_u32_le(&mut hashed, ids_len as u32);
        codec::put_u32_le(&mut hashed, times_len as u32);
        codec::put_u64_le(&mut hashed, anchor_time);
        let crc = Crc32::new().update(&hashed).update(&self.buf).finish();
        self.sink.write_all(&SYNC)?;
        self.sink.write_all(&hashed)?;
        self.sink.write_all(&crc.to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.index.push((self.offset, count));
        self.offset += (BLOCK_HEADER + self.buf.len()) as u64;
        self.ids.clear();
        self.taken.clear();
        self.times.clear();
        self.new_pcs.clear();
        Ok(())
    }

    /// Flushes the final block and writes the directory/index footer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn finish(mut self, total_instructions: u64) -> Result<(), TraceError> {
        self.flush_block()?;
        let mut footer = Vec::new();
        footer.extend_from_slice(FOOTER_MAGIC);
        codec::put_u64_le(&mut footer, self.records);
        codec::put_u64_le(&mut footer, total_instructions);
        codec::put_u32_le(&mut footer, self.pcs.len() as u32);
        let mut prev_pc = 0i64;
        for &pc in &self.pcs {
            codec::put_varint(
                &mut footer,
                codec::zigzag_encode((pc as i64).wrapping_sub(prev_pc)),
            );
            prev_pc = pc as i64;
        }
        codec::put_u32_le(&mut footer, self.index.len() as u32);
        for &(offset, count) in &self.index {
            codec::put_u64_le(&mut footer, offset);
            codec::put_u32_le(&mut footer, count);
        }
        let crc = codec::crc32(&footer);
        self.sink.write_all(&footer)?;
        self.sink.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.sink.write_all(&crc.to_le_bytes())?;
        self.sink.write_all(TRAILER_MAGIC)?;
        self.sink.flush()?;
        Ok(())
    }
}

/// Encodes a whole in-memory trace as `BWSS3`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure.
pub fn write_columnar<W: Write>(trace: &Trace, sink: W) -> Result<(), TraceError> {
    let mut w = ColumnarWriter::new(sink, &trace.meta().name)?;
    for record in trace.records() {
        w.push(*record)?;
    }
    w.finish(trace.meta().total_instructions)
}

/// The parsed footer of a finished `BWSS3` file: the id → pc directory
/// plus the block index that makes shard planning O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footer {
    /// Total records across every block.
    pub record_count: u64,
    /// The producing run's instruction count (the `BWSS2` trailer value).
    pub total_instructions: u64,
    /// Every static pc in id-assignment order.
    pub pcs: Vec<u64>,
    /// Per-block (byte offset of the sync marker, record count).
    pub blocks: Vec<(u64, u32)>,
}

/// Strictly validates the trailer + footer region; any inconsistency
/// yields `None` (a torn tail), never an error.
fn parse_footer(bytes: &[u8], body_start: usize) -> Option<Footer> {
    let len = bytes.len();
    if len < body_start + TRAILER || &bytes[len - 4..] != TRAILER_MAGIC {
        return None;
    }
    let footer_len = u32::from_le_bytes(bytes[len - 12..len - 8].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[len - 8..len - 4].try_into().ok()?);
    let start = (len - TRAILER).checked_sub(footer_len)?;
    if start < body_start {
        return None;
    }
    let span = &bytes[start..len - TRAILER];
    if codec::crc32(span) != crc {
        return None;
    }
    let mut cur = Cursor::new(span);
    if cur.take(4).ok()? != FOOTER_MAGIC {
        return None;
    }
    let record_count = cur.get_u64_le().ok()?;
    let total_instructions = cur.get_u64_le().ok()?;
    let branch_count = cur.get_u32_le().ok()? as usize;
    if branch_count > cur.remaining() {
        return None; // every directory pc takes at least one byte
    }
    let mut pcs = Vec::with_capacity(branch_count);
    let mut prev = 0i64;
    for _ in 0..branch_count {
        let delta = codec::zigzag_decode(cur.get_varint().ok()?);
        let pc = prev.wrapping_add(delta);
        pcs.push(pc as u64);
        prev = pc;
    }
    let block_count = cur.get_u32_le().ok()? as usize;
    if block_count.checked_mul(12)? != cur.remaining() {
        return None;
    }
    let mut blocks = Vec::with_capacity(block_count);
    let mut min_offset = body_start as u64;
    for _ in 0..block_count {
        let offset = cur.get_u64_le().ok()?;
        let count = cur.get_u32_le().ok()?;
        if offset < min_offset || offset >= len as u64 || count == 0 {
            return None;
        }
        min_offset = offset + 1;
        blocks.push((offset, count));
    }
    Some(Footer {
        record_count,
        total_instructions,
        pcs,
        blocks,
    })
}

/// A parsed (but not yet decoded) `BWSS3` file over borrowed bytes.
///
/// Parsing reads only the header and the trailing footer; block payloads
/// stay untouched until decoded, so over an mmap this is a zero-copy
/// open that faults in a handful of pages.
#[derive(Debug)]
pub struct ColumnarFile<'a> {
    bytes: &'a [u8],
    name: String,
    body_start: usize,
    footer: Option<Footer>,
}

impl<'a> ColumnarFile<'a> {
    /// Parses the header and (when present and intact) the footer.
    ///
    /// A missing or damaged footer is not an error here — the file is
    /// treated as torn and [`ColumnarFile::footer`] returns `None`; the
    /// header itself is always strict.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when the header is malformed.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, TraceError> {
        let mut cur = Cursor::new(bytes);
        if cur.take(4)? != MAGIC {
            return Err(TraceError::format_at("bad magic (expected \"BWS3\")", 0));
        }
        let version = cur.get_u16_le()?;
        if version != VERSION {
            return Err(TraceError::format(format!(
                "unsupported columnar version {version} (expected {VERSION})"
            )));
        }
        let name_len = cur.get_u32_le()? as usize;
        let name = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|e| TraceError::format(format!("name is not utf-8: {e}")))?;
        let body_start = bytes.len() - cur.remaining();
        let footer = parse_footer(bytes, body_start);
        Ok(ColumnarFile {
            bytes,
            name,
            body_start,
            footer,
        })
    }

    /// The trace name from the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parsed footer, or `None` for a torn-tail file.
    pub fn footer(&self) -> Option<&Footer> {
        self.footer.as_ref()
    }

    /// Decodes the whole file into a [`Trace`] under `policy`.
    ///
    /// With a valid footer, salvage skips corrupt blocks (the directory
    /// survives in the footer); without one, salvage keeps the valid
    /// block prefix. Strict requires an intact footer and fails on the
    /// first inconsistency.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] (strict) on a damaged block, or
    /// [`TraceError::Format`] for structural damage.
    pub fn decode(&self, policy: RecoveryPolicy) -> Result<(Trace, SalvageReport), TraceError> {
        if policy == RecoveryPolicy::Strict && self.footer.is_none() {
            return Err(TraceError::format(
                "torn columnar file: footer missing or corrupt (retry with salvage)",
            ));
        }
        let mut report = SalvageReport::default();
        let mut decoder = BlockDecoder::new(self);
        let mut ids: Vec<BranchId> = Vec::new();
        let mut records: Vec<BranchRecord> = Vec::new();
        if let Some(footer) = &self.footer {
            // A CRC-valid footer cannot honestly promise more records
            // than the payload could hold; cap the reserve regardless.
            let cap = footer.record_count.min(self.bytes.len() as u64) as usize;
            ids.reserve(cap);
            records.reserve(cap);
        }
        let mut last_time = 0u64;
        loop {
            let block_no = decoder.blocks_seen();
            match decoder.next_block() {
                Ok(None) => break,
                Ok(Some(view)) => {
                    if view.times.first().is_some_and(|&first| first < last_time) {
                        let e = block_corrupt(block_no, "out-of-order block");
                        absorb(policy, &mut report, e)?;
                        continue;
                    }
                    last_time = view.times.last().copied().unwrap_or(last_time);
                    report.chunks_ok += 1;
                    report.records_recovered += view.ids.len() as u64;
                    append_block(&view, &mut ids, &mut records);
                }
                Err(e) => {
                    absorb(policy, &mut report, e)?;
                    if !decoder.can_continue() {
                        break;
                    }
                }
            }
        }
        let table = BranchTable::from_pcs(decoder.directory().iter().map(|&pc| Pc::new(pc)))?;
        let total_instructions = match &self.footer {
            Some(f) => {
                if policy == RecoveryPolicy::Strict && report.records_recovered != f.record_count {
                    return Err(TraceError::format(format!(
                        "footer promises {} records, blocks held {}",
                        f.record_count, report.records_recovered
                    )));
                }
                f.total_instructions
            }
            None => last_time,
        };
        let meta = TraceMeta {
            name: self.name.clone(),
            total_instructions,
        };
        Ok((Trace::from_parts(meta, table, ids, records)?, report))
    }

    /// Strictly decodes the footer-indexed blocks in `range`, appending
    /// records (with pre-interned ids) to the sinks. This is the shard
    /// primitive behind parallel columnar ingest: the block index makes
    /// the seek O(1) and the footer directory resolves ids without
    /// replaying earlier blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when the file has no footer or the
    /// range is out of bounds, and [`TraceError::Corrupt`] for a damaged
    /// block.
    pub fn decode_range(
        &self,
        range: Range<usize>,
        ids: &mut Vec<BranchId>,
        records: &mut Vec<BranchRecord>,
    ) -> Result<(), TraceError> {
        let footer = self
            .footer
            .as_ref()
            .ok_or_else(|| TraceError::format("range decode needs an intact footer"))?;
        if range.end > footer.blocks.len() {
            return Err(TraceError::format(format!(
                "block range {range:?} exceeds {} indexed blocks",
                footer.blocks.len()
            )));
        }
        let mut decoder = BlockDecoder::new(self);
        decoder.seek(range.start);
        for _ in range {
            match decoder.next_block()? {
                Some(view) => append_block(&view, ids, records),
                None => return Err(TraceError::format("block index points past the data")),
            }
        }
        Ok(())
    }
}

/// Extends the row-wise sinks from one decoded block. The three column
/// slices are equal length by construction, so the zipped loops compile
/// without bounds checks and autovectorize (see DESIGN.md §16).
fn append_block(view: &BlockView<'_>, ids: &mut Vec<BranchId>, records: &mut Vec<BranchRecord>) {
    ids.extend(view.ids.iter().map(|&id| BranchId::new(id)));
    records.extend(view.ids.iter().zip(view.taken).zip(view.times).map(
        |((&id, &taken), &time)| {
            BranchRecord::new(
                Pc::new(view.pcs[id as usize]),
                Direction::from_taken(taken),
                InstrCount::new(time),
            )
        },
    ));
}

/// Salvage bookkeeping for one damaged block; strict mode re-raises.
fn absorb(
    policy: RecoveryPolicy,
    report: &mut SalvageReport,
    error: TraceError,
) -> Result<(), TraceError> {
    if policy == RecoveryPolicy::Strict {
        return Err(error);
    }
    report.chunks_dropped += 1;
    if report.first_error.is_none() {
        report.first_error = Some(error.to_string());
    }
    Ok(())
}

fn block_corrupt(block: u64, reason: impl Into<String>) -> TraceError {
    TraceError::Corrupt {
        chunk: block,
        reason: reason.into(),
    }
}

/// One decoded block, borrowed from a [`BlockDecoder`]'s reusable
/// scratch — the zero-materialisation view streaming consumers iterate.
#[derive(Debug)]
pub struct BlockView<'a> {
    /// Interned id of each record, parallel to `taken` and `times`.
    pub ids: &'a [u32],
    /// Resolved direction of each record.
    pub taken: &'a [bool],
    /// Timestamp of each record.
    pub times: &'a [u64],
    /// The id → pc directory as known after this block; index with an
    /// entry of `ids` (always in range once the block decodes).
    pub pcs: &'a [u64],
}

/// Streaming block-at-a-time decoder over a [`ColumnarFile`], reusing
/// one set of SoA scratch buffers for every block: the constant-memory
/// ingest path, with no per-record struct materialised on the heap.
///
/// With a footer the decoder walks the block index (and can
/// [`BlockDecoder::seek`]); without one it scans sequentially and stops
/// at the first damage (the torn-tail prefix rule).
#[derive(Debug)]
pub struct BlockDecoder<'a> {
    bytes: &'a [u8],
    /// Footer block index, when intact.
    index: Option<Vec<(u64, u32)>>,
    /// Position in `index`, when present.
    next_index: usize,
    /// Byte offset of the next block (footerless scan).
    offset: usize,
    /// id → pc directory: footer copy, or grown from new-pc columns.
    pcs: Vec<u64>,
    /// Whether the directory is complete up front (footer present).
    directory_fixed: bool,
    blocks_seen: u64,
    stopped: bool,
    /// Reusable SoA scratch.
    ids: Vec<u32>,
    taken: Vec<bool>,
    times: Vec<u64>,
}

impl<'a> BlockDecoder<'a> {
    /// Starts a decoder at the first block.
    pub fn new(file: &ColumnarFile<'a>) -> Self {
        let (index, pcs) = match &file.footer {
            Some(f) => (Some(f.blocks.clone()), f.pcs.clone()),
            None => (None, Vec::new()),
        };
        BlockDecoder {
            bytes: file.bytes,
            directory_fixed: index.is_some(),
            index,
            next_index: 0,
            offset: file.body_start,
            pcs,
            blocks_seen: 0,
            stopped: false,
            ids: Vec::new(),
            taken: Vec::new(),
            times: Vec::new(),
        }
    }

    /// Number of blocks inspected so far (decoded or damaged).
    pub fn blocks_seen(&self) -> u64 {
        self.blocks_seen
    }

    /// The id → pc directory as currently known.
    pub fn directory(&self) -> &[u64] {
        &self.pcs
    }

    /// Whether [`BlockDecoder::next_block`] may yield more blocks after
    /// an error. True with a footer (the index skips past damage); false
    /// once a footerless scan hits its first bad block.
    pub fn can_continue(&self) -> bool {
        !self.stopped
    }

    /// Positions the decoder at footer-indexed block `block`. No-op
    /// without a footer.
    pub fn seek(&mut self, block: usize) {
        if self.index.is_some() {
            self.next_index = block;
        }
    }

    /// Decodes the next block into the scratch buffers and returns a
    /// view of its columns, or `None` at the end of the data.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] for a damaged block. With a
    /// footer the decoder has already advanced past it, so the caller
    /// may keep iterating (salvage); without one the decoder stops.
    pub fn next_block(&mut self) -> Result<Option<BlockView<'_>>, TraceError> {
        if self.stopped {
            return Ok(None);
        }
        let offset = match &self.index {
            Some(index) => match index.get(self.next_index) {
                None => return Ok(None),
                Some(&(offset, _)) => {
                    self.next_index += 1;
                    offset as usize
                }
            },
            None => {
                if self.offset >= self.bytes.len() {
                    return Ok(None);
                }
                self.offset
            }
        };
        let block_no = self.blocks_seen;
        self.blocks_seen += 1;
        match self.decode_block(offset, block_no) {
            Ok(end) => {
                if self.index.is_none() {
                    self.offset = end;
                }
                Ok(Some(BlockView {
                    ids: &self.ids,
                    taken: &self.taken,
                    times: &self.times,
                    pcs: &self.pcs,
                }))
            }
            Err(e) => {
                if self.index.is_none() {
                    self.stopped = true;
                }
                Err(e)
            }
        }
    }

    /// Validates and column-decodes the block at `offset` into the
    /// scratch buffers, returning the offset one past its payload.
    fn decode_block(&mut self, offset: usize, block: u64) -> Result<usize, TraceError> {
        let bytes = self.bytes;
        let header_end = offset + BLOCK_HEADER;
        if header_end > bytes.len() {
            return Err(block_corrupt(block, "truncated block header"));
        }
        if bytes[offset..offset + 4] != SYNC {
            return Err(block_corrupt(block, "bad block sync marker"));
        }
        let mut cur = Cursor::new(&bytes[offset + 4..header_end]);
        let count = cur.get_u32_le()?;
        let new_pc_count = cur.get_u32_le()? as usize;
        let pcs_len = cur.get_u32_le()?;
        let ids_len = cur.get_u32_le()?;
        let times_len = cur.get_u32_le()?;
        let anchor_time = cur.get_u64_le()?;
        let crc = cur.get_u32_le()?;
        if count == 0 || count > MAX_BLOCK_RECORDS {
            return Err(block_corrupt(
                block,
                format!("implausible record count {count}"),
            ));
        }
        if pcs_len > MAX_SECTION || ids_len > MAX_SECTION || times_len > MAX_SECTION {
            return Err(block_corrupt(block, "column section too long"));
        }
        // Varints take at least one byte each, so a valid column is never
        // shorter than its entry count — rejected before any allocation.
        if u64::from(ids_len) < u64::from(count)
            || u64::from(times_len) < u64::from(count)
            || (pcs_len as usize) < new_pc_count
        {
            return Err(block_corrupt(block, "column shorter than its entry count"));
        }
        let n = count as usize;
        let taken_len = n.div_ceil(8);
        let payload_len = pcs_len as usize + ids_len as usize + taken_len + times_len as usize;
        let payload_end = header_end + payload_len;
        if payload_end > bytes.len() {
            return Err(block_corrupt(block, "truncated block payload"));
        }
        let payload = &bytes[header_end..payload_end];
        let computed = Crc32::new()
            .update(&bytes[offset + 4..header_end - 4])
            .update(payload)
            .finish();
        if computed != crc {
            return Err(block_corrupt(block, "checksum mismatch"));
        }
        let (pcs_col, rest) = payload.split_at(pcs_len as usize);
        let (ids_col, rest) = rest.split_at(ids_len as usize);
        let (taken_col, times_col) = rest.split_at(taken_len);

        // New-pc column: replayed footerless to grow the directory,
        // skipped when the footer already supplied it.
        if !self.directory_fixed {
            let mut pos = 0usize;
            let mut prev = 0i64;
            self.pcs.reserve(new_pc_count);
            for _ in 0..new_pc_count {
                let delta = codec::zigzag_decode(read_varint(pcs_col, &mut pos, block)?);
                let pc = prev.wrapping_add(delta);
                self.pcs.push(pc as u64);
                prev = pc;
            }
            if pos != pcs_col.len() {
                return Err(block_corrupt(block, "trailing bytes in new-pc column"));
            }
        }

        // Id column: zigzag deltas from 0, bounded by the directory.
        self.ids.clear();
        self.ids.reserve(n);
        let mut pos = 0usize;
        let mut prev = 0i64;
        for _ in 0..n {
            let delta = codec::zigzag_decode(read_varint(ids_col, &mut pos, block)?);
            let id = prev.wrapping_add(delta);
            if id < 0 || id > i64::from(u32::MAX) {
                return Err(block_corrupt(block, "branch id out of u32 range"));
            }
            self.ids.push(id as u32);
            prev = id;
        }
        if pos != ids_col.len() {
            return Err(block_corrupt(block, "trailing bytes in id column"));
        }
        let dir_len = self.pcs.len();
        // Flat validation scan — no hash lookups, vectorizes.
        if self.ids.iter().any(|&id| id as usize >= dir_len) {
            return Err(block_corrupt(block, "branch id beyond directory"));
        }

        // Taken bitmap: chunked LSB-first expansion.
        self.taken.clear();
        self.taken.reserve(taken_len * 8);
        for &byte in taken_col {
            for bit in 0..8 {
                self.taken.push(byte & (1 << bit) != 0);
            }
        }
        self.taken.truncate(n);

        // Time column: unsigned deltas accumulated from the anchor, so
        // intra-block monotonicity holds by construction.
        self.times.clear();
        self.times.reserve(n);
        let mut pos = 0usize;
        let mut prev = anchor_time;
        for _ in 0..n {
            let delta = read_varint(times_col, &mut pos, block)?;
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| block_corrupt(block, "timestamp overflow"))?;
            self.times.push(prev);
        }
        if pos != times_col.len() {
            return Err(block_corrupt(block, "trailing bytes in time column"));
        }
        Ok(payload_end)
    }
}

/// LEB128 decode against a column slice with a one-byte fast path (the
/// common case for delta columns).
#[inline]
fn read_varint(col: &[u8], pos: &mut usize, block: u64) -> Result<u64, TraceError> {
    if let Some(&b) = col.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = col.get(*pos) else {
            return Err(block_corrupt(block, "truncated varint in column"));
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(block_corrupt(block, "varint overflows u64 in column"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::TraceBuilder;

    fn sample_trace(records: u64) -> Trace {
        let mut b = TraceBuilder::new("sample");
        for i in 0..records {
            b.record(0x1000 + (i % 13) * 4, i % 3 != 0, 7 * (i + 1));
        }
        let mut t = b.finish();
        t.meta_mut().total_instructions = 7 * records + 100;
        t
    }

    fn encode(trace: &Trace, block_records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = ColumnarWriter::new(&mut buf, &trace.meta().name)
            .unwrap()
            .with_block_records(block_records);
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(trace.meta().total_instructions).unwrap();
        buf
    }

    #[test]
    fn roundtrip_is_record_identical() {
        let trace = sample_trace(1000);
        for block_records in [1, 7, 64, 4096] {
            let buf = encode(&trace, block_records);
            let (back, report) = read_columnar(&buf, RecoveryPolicy::Strict).unwrap();
            assert!(report.clean());
            assert_eq!(back, trace, "block_records={block_records}");
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut t = Trace::new("empty");
        t.meta_mut().total_instructions = 42;
        let buf = encode(&t, 16);
        let (back, report) = read_columnar(&buf, RecoveryPolicy::Strict).unwrap();
        assert!(report.clean());
        assert!(back.is_empty());
        assert_eq!(back.meta().total_instructions, 42);
    }

    #[test]
    fn footer_indexes_every_block() {
        let trace = sample_trace(100);
        let buf = encode(&trace, 16);
        let file = ColumnarFile::parse(&buf).unwrap();
        let footer = file.footer().unwrap();
        assert_eq!(footer.record_count, 100);
        assert_eq!(footer.blocks.len(), 7); // ceil(100 / 16)
        assert_eq!(
            footer
                .blocks
                .iter()
                .map(|&(_, c)| u64::from(c))
                .sum::<u64>(),
            100
        );
        assert_eq!(footer.pcs.len(), trace.static_branch_count());
    }

    #[test]
    fn unfinished_file_salvages_the_block_prefix() {
        let trace = sample_trace(100);
        let mut buf = Vec::new();
        {
            let mut w = ColumnarWriter::new(&mut buf, "sample")
                .unwrap()
                .with_block_records(16);
            for r in trace.records() {
                w.push(*r).unwrap();
            }
            // No finish(): the buffered 4-record tail and the footer are
            // lost; complete blocks survive.
        }
        assert!(
            read_columnar(&buf, RecoveryPolicy::Strict).is_err(),
            "strict must reject a torn file"
        );
        let (back, report) = read_columnar(&buf, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(back.len(), 96);
        assert_eq!(report.records_recovered, 96);
        assert_eq!(report.chunks_ok, 6);
        assert_eq!(back.records(), &trace.records()[..96]);
    }

    #[test]
    fn corrupt_block_is_skipped_under_salvage_and_fatal_under_strict() {
        let trace = sample_trace(100);
        let mut buf = encode(&trace, 16);
        let second_block_offset = {
            let file = ColumnarFile::parse(&buf).unwrap();
            file.footer().unwrap().blocks[1].0 as usize
        };
        buf[second_block_offset + BLOCK_HEADER + 2] ^= 0x40;

        match read_columnar(&buf, RecoveryPolicy::Strict) {
            Err(TraceError::Corrupt { chunk, .. }) => assert_eq!(chunk, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let (back, report) = read_columnar(&buf, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(report.chunks_dropped, 1);
        assert_eq!(report.chunks_ok, 6);
        assert_eq!(back.len(), 84);
        assert!(report.first_error.unwrap().contains("checksum"));
        // Directory comes from the footer, so later blocks still decode.
        assert_eq!(back.static_branch_count(), trace.static_branch_count());
    }

    #[test]
    fn truncation_never_panics_and_prefix_decodes() {
        let trace = sample_trace(64);
        let buf = encode(&trace, 8);
        for cut in 0..buf.len() {
            if let Ok(file) = ColumnarFile::parse(&buf[..cut]) {
                if let Ok((back, _)) = file.decode(RecoveryPolicy::Salvage) {
                    assert!(back.len() <= trace.len());
                    assert_eq!(back.records(), &trace.records()[..back.len()]);
                }
            }
        }
    }

    #[test]
    fn decode_range_matches_serial_decode() {
        let trace = sample_trace(100);
        let buf = encode(&trace, 16);
        let file = ColumnarFile::parse(&buf).unwrap();
        let blocks = file.footer().unwrap().blocks.len();
        let mut ids = Vec::new();
        let mut records = Vec::new();
        file.decode_range(0..3, &mut ids, &mut records).unwrap();
        file.decode_range(3..blocks, &mut ids, &mut records)
            .unwrap();
        assert_eq!(records, trace.records());
        assert_eq!(ids, trace.record_ids());
        assert!(file
            .decode_range(0..blocks + 1, &mut ids, &mut records)
            .is_err());
    }

    #[test]
    fn writer_rejects_out_of_order_records() {
        let mut w = ColumnarWriter::new(Vec::new(), "x").unwrap();
        w.push(BranchRecord::from_raw(0x10, true, 10)).unwrap();
        assert!(matches!(
            w.push(BranchRecord::from_raw(0x10, true, 9)),
            Err(TraceError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn parse_rejects_foreign_magic_and_versions() {
        assert!(ColumnarFile::parse(b"BWSS2 not columnar").is_err());
        let mut buf = Vec::new();
        let w = ColumnarWriter::new(&mut buf, "v").unwrap();
        w.finish(0).unwrap();
        buf[4] = 0xFF; // version low byte
        assert!(ColumnarFile::parse(&buf).is_err());
    }

    #[test]
    fn is_columnar_detects_magic() {
        assert!(is_columnar(b"BWS3rest"));
        assert!(!is_columnar(b"BWSS"));
        assert!(!is_columnar(b""));
    }
}
