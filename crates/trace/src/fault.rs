//! Deterministic fault injection for durability testing.
//!
//! The fault model now lives in [`bwsa_resilience::fault`] so the
//! trace-salvage property tests and the workspace chaos suite share one
//! implementation (and one deterministic RNG); this module re-exports it
//! under the historical path.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::fault::{Fault, FaultPlan, FaultyReader};
//! use bwsa_trace::stream::{RecoveryPolicy, StreamReader, StreamWriter, body_offset};
//! use bwsa_trace::BranchRecord;
//!
//! # fn main() -> Result<(), bwsa_trace::TraceError> {
//! let mut buf = Vec::new();
//! let mut w = StreamWriter::new(&mut buf, "t")?.with_chunk_records(8);
//! for i in 0..64u64 {
//!     w.push(BranchRecord::from_raw(0x400, i % 2 == 0, i + 1))?;
//! }
//! w.finish(64)?;
//!
//! let protect = body_offset(&buf)?;
//! let plan = FaultPlan::new().with(Fault::BitFlip { position: 0.5, bit: 3 });
//! let faulty = FaultyReader::new(&buf[..], plan, protect)?;
//! let mut r = StreamReader::with_recovery(faulty, RecoveryPolicy::Salvage)?;
//! let recovered = r.by_ref().filter_map(|r| r.ok()).count();
//! assert!(recovered < 64, "one chunk was lost");
//! assert!(recovered >= 48, "the others survived");
//! # Ok(())
//! # }
//! ```

pub use bwsa_resilience::fault::{Fault, FaultPlan, FaultyReader};
