//! Per-static-branch execution statistics and frequency-based filtering.
//!
//! The paper reduces each benchmark to its most frequently executed static
//! conditional branches "to maintain reasonable time and space", keeping
//! ≥99.8% of all dynamic branches for every benchmark except gcc (93.7%) —
//! Table 1. [`FrequencyFilter`] reproduces that reduction; the coverage
//! numbers it reports are exactly Table 1's last three columns.

use crate::{BranchId, InstrCount, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Statistics for one static branch, accumulated over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Number of dynamic executions.
    pub executions: u64,
    /// Number of taken executions.
    pub taken: u64,
    /// Timestamp of the first execution.
    pub first_time: InstrCount,
    /// Timestamp of the last execution.
    pub last_time: InstrCount,
}

impl BranchStats {
    /// Fraction of executions that were taken, in `[0, 1]`.
    ///
    /// Returns 0 for a branch that never executed.
    pub fn taken_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.taken as f64 / self.executions as f64
        }
    }
}

/// Per-branch execution profile of a trace.
///
/// # Example
///
/// ```
/// use bwsa_trace::{profile::BranchProfile, TraceBuilder};
///
/// let mut b = TraceBuilder::new("p");
/// b.record(0x400, true, 5).record(0x400, false, 10).record(0x440, true, 15);
/// let trace = b.finish();
/// let prof = BranchProfile::from_trace(&trace);
///
/// assert_eq!(prof.total_dynamic(), 3);
/// let id = trace.table().id_of(0x400.into()).unwrap();
/// assert_eq!(prof.stats(id).executions, 2);
/// assert_eq!(prof.stats(id).taken_rate(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    stats: Vec<BranchStats>,
    total_dynamic: u64,
}

impl BranchProfile {
    /// Builds the profile of a trace in a single pass.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut stats = vec![BranchStats::default(); trace.static_branch_count()];
        for (id, rec) in trace.indexed_records() {
            let s = &mut stats[id.index()];
            if s.executions == 0 {
                s.first_time = rec.time;
            }
            s.executions += 1;
            s.taken += rec.is_taken() as u64;
            s.last_time = rec.time;
        }
        BranchProfile {
            total_dynamic: trace.len() as u64,
            stats,
        }
    }

    /// Reassembles a profile from externally accumulated per-branch stats
    /// (indexed by [`BranchId`]) and the total dynamic branch count.
    ///
    /// This is the constructor used by streaming/checkpointed analyses,
    /// which accumulate [`BranchStats`] incrementally instead of holding
    /// the trace in memory. Feeding it the per-record accumulation that
    /// [`BranchProfile::from_trace`] performs yields an identical profile.
    pub fn from_parts(stats: Vec<BranchStats>, total_dynamic: u64) -> Self {
        BranchProfile {
            stats,
            total_dynamic,
        }
    }

    /// Statistics for one branch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the profiled trace.
    pub fn stats(&self, id: BranchId) -> &BranchStats {
        &self.stats[id.index()]
    }

    /// Total dynamic branches in the profiled trace.
    pub fn total_dynamic(&self) -> u64 {
        self.total_dynamic
    }

    /// Number of static branches profiled.
    pub fn static_count(&self) -> usize {
        self.stats.len()
    }

    /// Iterates `(id, stats)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, &BranchStats)> + '_ {
        self.stats
            .iter()
            .enumerate()
            .map(|(i, s)| (BranchId::new(i as u32), s))
    }

    /// Static branch ids sorted by descending execution count (ties broken
    /// by id for determinism).
    pub fn ids_by_frequency(&self) -> Vec<BranchId> {
        let mut ids: Vec<BranchId> = (0..self.stats.len())
            .map(|i| BranchId::new(i as u32))
            .collect();
        ids.sort_by_key(|id| (std::cmp::Reverse(self.stats[id.index()].executions), *id));
        ids
    }
}

/// Strategy for choosing which static branches to retain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrequencyFilter {
    /// Keep the fewest top-frequency branches whose executions cover at
    /// least this fraction of all dynamic branches (e.g. `0.999`).
    Coverage(f64),
    /// Keep every branch executed at least this many times.
    MinExecutions(u64),
    /// Keep the `k` most frequently executed branches.
    TopK(usize),
}

/// Result of applying a [`FrequencyFilter`]: the retained set and the
/// Table-1 coverage accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// Retained static branch ids.
    pub kept: HashSet<BranchId>,
    /// Total dynamic branches in the source trace (Table 1 col. 3).
    pub total_dynamic: u64,
    /// Dynamic branches whose static branch was retained (Table 1 col. 4).
    pub analyzed_dynamic: u64,
}

impl FilterOutcome {
    /// Percentage of dynamic branches analyzed (Table 1 col. 5), in `[0, 100]`.
    pub fn analyzed_percent(&self) -> f64 {
        if self.total_dynamic == 0 {
            100.0
        } else {
            100.0 * self.analyzed_dynamic as f64 / self.total_dynamic as f64
        }
    }
}

impl FrequencyFilter {
    /// Applies the filter to a profile.
    ///
    /// # Panics
    ///
    /// Panics if a [`FrequencyFilter::Coverage`] fraction is not in `[0, 1]`.
    pub fn apply(&self, profile: &BranchProfile) -> FilterOutcome {
        let by_freq = profile.ids_by_frequency();
        let total = profile.total_dynamic();
        let mut kept = HashSet::new();
        let mut analyzed = 0u64;
        match *self {
            FrequencyFilter::Coverage(target) => {
                assert!(
                    (0.0..=1.0).contains(&target),
                    "coverage target must be in [0,1], got {target}"
                );
                let want = (target * total as f64).ceil() as u64;
                for id in by_freq {
                    if analyzed >= want {
                        break;
                    }
                    analyzed += profile.stats(id).executions;
                    kept.insert(id);
                }
            }
            FrequencyFilter::MinExecutions(min) => {
                for id in by_freq {
                    let n = profile.stats(id).executions;
                    if n >= min {
                        analyzed += n;
                        kept.insert(id);
                    } else {
                        break; // sorted descending: the rest are smaller
                    }
                }
            }
            FrequencyFilter::TopK(k) => {
                for id in by_freq.into_iter().take(k) {
                    analyzed += profile.stats(id).executions;
                    kept.insert(id);
                }
            }
        }
        FilterOutcome {
            kept,
            total_dynamic: total,
            analyzed_dynamic: analyzed,
        }
    }

    /// Applies the filter and returns the reduced trace together with the
    /// coverage accounting.
    pub fn filter_trace(&self, trace: &Trace) -> (Trace, FilterOutcome) {
        let profile = BranchProfile::from_trace(trace);
        let outcome = self.apply(&profile);
        let filtered = trace.filtered(|id| outcome.kept.contains(&id));
        (filtered, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    /// Trace where branch 0x400 runs 6×, 0x440 3×, 0x480 1×.
    fn skewed() -> Trace {
        let mut b = TraceBuilder::new("skew");
        let mut t = 0;
        for _ in 0..6 {
            t += 5;
            b.record(0x400, true, t);
        }
        for _ in 0..3 {
            t += 5;
            b.record(0x440, false, t);
        }
        t += 5;
        b.record(0x480, true, t);
        b.finish()
    }

    #[test]
    fn profile_counts_and_rates() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        assert_eq!(p.total_dynamic(), 10);
        assert_eq!(p.static_count(), 3);
        let a = t.table().id_of(0x400.into()).unwrap();
        assert_eq!(p.stats(a).executions, 6);
        assert_eq!(p.stats(a).taken_rate(), 1.0);
        let b = t.table().id_of(0x440.into()).unwrap();
        assert_eq!(p.stats(b).taken_rate(), 0.0);
    }

    #[test]
    fn first_and_last_times() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let a = t.table().id_of(0x400.into()).unwrap();
        assert_eq!(p.stats(a).first_time.get(), 5);
        assert_eq!(p.stats(a).last_time.get(), 30);
    }

    #[test]
    fn ids_by_frequency_is_descending() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let order = p.ids_by_frequency();
        let counts: Vec<u64> = order.iter().map(|id| p.stats(*id).executions).collect();
        assert_eq!(counts, [6, 3, 1]);
    }

    #[test]
    fn coverage_filter_stops_at_target() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let out = FrequencyFilter::Coverage(0.6).apply(&p);
        assert_eq!(out.kept.len(), 1, "6/10 already covers 60%");
        assert_eq!(out.analyzed_dynamic, 6);
        assert!((out.analyzed_percent() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_one_keeps_everything() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let out = FrequencyFilter::Coverage(1.0).apply(&p);
        assert_eq!(out.kept.len(), 3);
        assert_eq!(out.analyzed_percent(), 100.0);
    }

    #[test]
    fn min_executions_filter() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let out = FrequencyFilter::MinExecutions(3).apply(&p);
        assert_eq!(out.kept.len(), 2);
        assert_eq!(out.analyzed_dynamic, 9);
    }

    #[test]
    fn top_k_filter() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        let out = FrequencyFilter::TopK(2).apply(&p);
        assert_eq!(out.kept.len(), 2);
        let out_all = FrequencyFilter::TopK(99).apply(&p);
        assert_eq!(out_all.kept.len(), 3, "k larger than population is fine");
    }

    #[test]
    fn filter_trace_reduces_records() {
        let t = skewed();
        let (reduced, out) = FrequencyFilter::TopK(1).filter_trace(&t);
        assert_eq!(reduced.len(), 6);
        assert_eq!(out.analyzed_dynamic, 6);
        assert_eq!(reduced.static_branch_count(), 1);
    }

    #[test]
    fn empty_trace_profile() {
        let t = Trace::new("empty");
        let p = BranchProfile::from_trace(&t);
        assert_eq!(p.total_dynamic(), 0);
        let out = FrequencyFilter::Coverage(0.999).apply(&p);
        assert_eq!(out.analyzed_percent(), 100.0);
        assert!(out.kept.is_empty());
    }

    #[test]
    #[should_panic(expected = "coverage target")]
    fn coverage_rejects_bad_fraction() {
        let t = skewed();
        let p = BranchProfile::from_trace(&t);
        FrequencyFilter::Coverage(1.5).apply(&p);
    }
}
