//! Dynamic conditional-branch traces: the data substrate of branch working
//! set analysis.
//!
//! The paper's entire pipeline (Kim & Tyson, *Analyzing the Working Set
//! Characteristics of Branch Execution*, MICRO 1998) consumes one artifact:
//! a **dynamic conditional-branch trace** — the time-ordered sequence of
//! `(pc, direction, instruction-count timestamp)` tuples produced by
//! executing a program. In the paper that trace came from SimpleScalar
//! running SPECint95; here it comes from the [`bwsa-workload`] interpreter,
//! but nothing in this crate cares about the producer.
//!
//! # Contents
//!
//! * [`BranchRecord`] — a single dynamic branch instance.
//! * [`Trace`] — an in-memory trace with interned static-branch identities
//!   ([`BranchId`]) and summary metadata.
//! * [`profile::BranchProfile`] — per-static-branch execution statistics
//!   (execution counts, taken rates) and the frequency filter used to
//!   reproduce Table 1's "percentage of dynamic branches analyzed".
//! * [`io`] — compact binary and line-oriented text serialisation.
//! * [`stream`] — checksummed chunked streaming format (`BWSS2`) with
//!   corruption salvage, plus the legacy `BWSS1` read path.
//! * [`columnar`] — the columnar block format (`BWSS3`): SoA column
//!   blocks with per-block CRCs and a directory/index footer, built for
//!   cold-ingest throughput and O(1) shard planning.
//! * [`mmap`] — zero-copy file bytes (memory map with buffered-read
//!   fallback) feeding the columnar decoder.
//! * [`codec`] — the shared varint/zigzag/CRC32 primitives under all of
//!   them.
//! * [`fault`] — deterministic fault injection for durability testing.
//!
//! # Example
//!
//! ```
//! use bwsa_trace::{Trace, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("tiny");
//! b.record(0x400, true, 5);
//! b.record(0x440, false, 10);
//! b.record(0x400, true, 15);
//! let trace: Trace = b.finish();
//!
//! assert_eq!(trace.len(), 3);
//! assert_eq!(trace.static_branch_count(), 2);
//! ```
//!
//! [`bwsa-workload`]: https://docs.rs/bwsa-workload

// `deny` rather than `forbid` so the one audited exception — the raw
// mmap syscall wrappers in [`mmap`] — can opt in with a scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
pub mod columnar;
mod error;
pub mod fault;
mod id;
pub mod io;
pub mod mmap;
pub mod profile;
mod record;
pub mod stats;
pub mod stream;
mod trace;

/// Failpoint sites this crate hosts (see [`bwsa_resilience::failpoint`]).
pub mod failpoints {
    /// Fires once per record pulled through a [`crate::stream::StreamReader`].
    pub const DECODE_RECORD: &str = "trace.decode_record";
    /// Fires when [`crate::io::read_binary`] starts ingesting a `BWST` file.
    pub const READ_BINARY: &str = "trace.read_binary";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[DECODE_RECORD, READ_BINARY];
}

pub use error::TraceError;
pub use id::{BranchId, InstrCount, Pc};
pub use record::{BranchRecord, Direction};
pub use trace::{BranchTable, Trace, TraceBuilder, TraceMeta, TraceShard};
