//! Property-based durability tests: the salvage reader against the fault
//! injection harness.
//!
//! Invariants proved here:
//!
//! * salvage never panics, whatever the corruption;
//! * salvage never invents records — its output is always a subsequence
//!   of what was written (bit flips, truncation, and replayed chunks
//!   included);
//! * an undamaged stream round-trips bit-identically;
//! * a single flipped bit costs at most the one chunk it lands in, and
//!   the loss is chunk-aligned;
//! * truncation inside the trailer loses no records, only the
//!   instruction total.

use bwsa_trace::fault::{Fault, FaultPlan, FaultyReader};
use bwsa_trace::stream::{body_offset, RecoveryPolicy, StreamReader, StreamWriter};
use bwsa_trace::BranchRecord;
use proptest::prelude::*;

const CHUNK: usize = 8;

fn arb_records() -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec((0u64..1 << 40, any::<bool>(), 0u64..50), 0..300).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(pc, taken, dt)| {
                t += dt;
                BranchRecord::from_raw(pc, taken, t)
            })
            .collect()
    })
}

/// Encodes `records` as a BWSS2 stream with small (8-record) chunks so
/// faults land in interesting places.
fn encode(records: &[BranchRecord], total: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = StreamWriter::new(&mut buf, "fault")
        .unwrap()
        .with_chunk_records(CHUNK);
    for r in records {
        w.push(*r).unwrap();
    }
    w.finish(total).unwrap();
    buf
}

/// Reads `bytes` in salvage mode, returning the recovered records and the
/// trailer total (`None` when it was lost).
fn salvage(bytes: &[u8]) -> (Vec<BranchRecord>, Option<u64>) {
    let mut reader = StreamReader::with_recovery(bytes, RecoveryPolicy::Salvage).unwrap();
    let records: Vec<BranchRecord> = reader.by_ref().filter_map(|r| r.ok()).collect();
    let total = reader.total_instructions();
    (records, total)
}

fn is_subsequence(sub: &[BranchRecord], full: &[BranchRecord]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|r| it.any(|f| f == r))
}

proptest! {
    #[test]
    fn salvage_never_panics_and_never_invents_records(
        records in arb_records(),
        seed in any::<u64>(),
        faults in 1usize..4,
    ) {
        let buf = encode(&records, 99);
        let protect = body_offset(&buf).unwrap();
        let plan = FaultPlan::random(seed, faults);
        let faulty = FaultyReader::new(&buf[..], plan, protect).unwrap();
        let mut reader = StreamReader::with_recovery(faulty, RecoveryPolicy::Salvage).unwrap();
        let recovered: Vec<BranchRecord> = reader.by_ref().filter_map(|r| r.ok()).collect();
        prop_assert!(
            is_subsequence(&recovered, &records),
            "salvage produced records that were never written"
        );
        let report = reader.salvage_report();
        prop_assert_eq!(report.records_recovered as usize, recovered.len());
    }

    #[test]
    fn clean_streams_round_trip_bit_identically(records in arb_records(), total in any::<u64>()) {
        let buf = encode(&records, total);
        let faulty = FaultyReader::new(&buf[..], FaultPlan::new(), 0).unwrap();
        prop_assert_eq!(faulty.bytes(), &buf[..]);
        let mut reader = StreamReader::with_recovery(faulty, RecoveryPolicy::Salvage).unwrap();
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        prop_assert_eq!(out, records);
        prop_assert_eq!(reader.total_instructions(), Some(total));
        let report = reader.salvage_report();
        prop_assert_eq!(report.chunks_dropped, 0);
        prop_assert!(report.first_error.is_none());
    }

    #[test]
    fn one_bit_flip_costs_at_most_one_aligned_chunk(
        records in arb_records(),
        position in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let buf = encode(&records, 42);
        let protect = body_offset(&buf).unwrap();
        let plan = FaultPlan::new().with(Fault::BitFlip { position, bit });
        let faulty = FaultyReader::new(&buf[..], plan, protect).unwrap();
        let (recovered, _) = salvage(faulty.bytes());

        if recovered.len() == records.len() {
            // The flip hit the trailer; every data chunk survived.
            prop_assert_eq!(recovered, records);
        } else {
            // Exactly one chunk was dropped, on a chunk boundary.
            let k = recovered
                .iter()
                .zip(&records)
                .position(|(a, b)| a != b)
                .unwrap_or(recovered.len());
            prop_assert_eq!(k % CHUNK, 0);
            let dropped = CHUNK.min(records.len() - k);
            prop_assert_eq!(records.len() - recovered.len(), dropped);
            prop_assert_eq!(&recovered[..k], &records[..k]);
            prop_assert_eq!(&recovered[k..], &records[k + dropped..]);
        }
    }

    #[test]
    fn truncation_inside_the_trailer_loses_only_the_total(
        records in arb_records(),
        cut in 1usize..40,
    ) {
        let buf = encode(&records, 1234);
        let truncated = &buf[..buf.len() - cut];
        let (recovered, total) = salvage(truncated);
        prop_assert_eq!(recovered, records);
        prop_assert_eq!(total, None);
    }
}
