//! Property-based tests for the streaming trace format.

use bwsa_trace::stream::{StreamReader, StreamWriter};
use bwsa_trace::BranchRecord;
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec((0u64..1 << 40, any::<bool>(), 0u64..50), 0..600).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(pc, taken, dt)| {
                t += dt;
                BranchRecord::from_raw(pc, taken, t)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn stream_roundtrip(records in arb_records(), total in any::<u64>(), name in "[ -~]{0,40}") {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, &name).unwrap();
        for r in &records {
            w.push(*r).unwrap();
        }
        w.finish(total).unwrap();

        let mut reader = StreamReader::new(&buf[..]).unwrap();
        prop_assert_eq!(reader.name(), name.as_str());
        let out: Vec<BranchRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        prop_assert_eq!(out, records);
        prop_assert_eq!(reader.total_instructions(), Some(total));
    }

    #[test]
    fn stream_and_buffer_formats_agree(records in arb_records()) {
        use bwsa_trace::{io as tio, TraceBuilder};
        let mut builder = TraceBuilder::new("agree");
        for r in &records {
            builder.push(*r);
        }
        let trace = builder.finish();
        let whole = tio::decode_binary(&tio::encode_binary(&trace)).unwrap();

        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "agree").unwrap();
        for r in &records {
            w.push(*r).unwrap();
        }
        w.finish(0).unwrap();
        let streamed: Vec<BranchRecord> =
            StreamReader::new(&buf[..]).unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(streamed.as_slice(), whole.records());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        // Fuzz the whole surface: header parsing and record iteration on
        // completely arbitrary input must reject via `TraceError`, never
        // unwind. The take() bound fuses any hypothetical runaway
        // iterator.
        if let Ok(reader) = StreamReader::new(&bytes[..]) {
            for item in reader.take(10_000) {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn corrupted_streams_never_panic(
        records in arb_records(),
        flips in prop::collection::vec((any::<usize>(), 1u8..=255), 1..8),
    ) {
        // Unlike pure noise, a bit-flipped *valid* stream gets deep into
        // the decode path: framing checks, checksums, varint decoding.
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "flip").unwrap();
        for r in &records {
            w.push(*r).unwrap();
        }
        w.finish(7).unwrap();
        for &(pos, xor) in &flips {
            let n = buf.len();
            buf[pos % n] ^= xor;
        }
        if let Ok(reader) = StreamReader::new(&buf[..]) {
            for item in reader.take(records.len() + 10_000) {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn truncated_streams_never_panic(records in arb_records(), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf, "cut").unwrap();
        for r in &records {
            w.push(*r).unwrap();
        }
        w.finish(7).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let truncated = &buf[..cut];
        // Either header parsing fails or iteration ends (cleanly or with
        // an error) — but nothing panics and the iterator fuses.
        if let Ok(mut reader) = StreamReader::new(truncated) {
            let mut iter_count = 0usize;
            for item in reader.by_ref() {
                iter_count += 1;
                prop_assert!(iter_count <= records.len() + 1);
                if item.is_err() {
                    break;
                }
            }
            prop_assert!(reader.next().is_none() || reader.total_instructions().is_some());
        }
    }
}
