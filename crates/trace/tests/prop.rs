//! Property-based tests for the trace crate.

use bwsa_trace::{io as trace_io, profile::BranchProfile, Trace, TraceBuilder};
use proptest::prelude::*;

/// Strategy producing a valid trace: pcs from a small pool, strictly
/// increasing timestamps.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec((0u8..32, any::<bool>(), 1u64..20), 0..200),
        "[a-z]{1,8}",
    )
        .prop_map(|(steps, name)| {
            let mut b = TraceBuilder::new(name);
            let mut t = 0u64;
            for (slot, taken, dt) in steps {
                t += dt;
                b.record(0x1000 + u64::from(slot) * 4, taken, t);
            }
            b.finish()
        })
}

proptest! {
    #[test]
    fn binary_roundtrip(trace in arb_trace()) {
        let bytes = trace_io::encode_binary(&trace);
        let back = trace_io::decode_binary(&bytes).unwrap();
        prop_assert_eq!(back.records(), trace.records());
        prop_assert_eq!(&back.meta().name, &trace.meta().name);
    }

    #[test]
    fn text_roundtrip(trace in arb_trace()) {
        let mut buf = Vec::new();
        trace_io::write_text(&trace, &mut buf).unwrap();
        let back = trace_io::read_text(&buf[..]).unwrap();
        prop_assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn profile_counts_sum_to_len(trace in arb_trace()) {
        let p = BranchProfile::from_trace(&trace);
        let sum: u64 = p.iter().map(|(_, s)| s.executions).sum();
        prop_assert_eq!(sum, trace.len() as u64);
        let taken: u64 = p.iter().map(|(_, s)| s.taken).sum();
        let actual_taken = trace.iter().filter(|r| r.is_taken()).count() as u64;
        prop_assert_eq!(taken, actual_taken);
    }

    #[test]
    fn record_ids_are_consistent_with_table(trace in arb_trace()) {
        for (id, rec) in trace.indexed_records() {
            prop_assert_eq!(trace.table().pc_of(id), rec.pc);
            prop_assert_eq!(trace.table().id_of(rec.pc), Some(id));
        }
    }

    #[test]
    fn concat_preserves_order_and_counts(a in arb_trace(), b in arb_trace()) {
        let mut merged = a.clone();
        merged.concat(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        let mut prev = 0u64;
        for rec in merged.records() {
            prop_assert!(rec.time.get() >= prev);
            prev = rec.time.get();
        }
    }

    #[test]
    fn filtered_is_a_subsequence(trace in arb_trace()) {
        let f = trace.filtered(|id| id.index() % 2 == 0);
        // Every filtered record appears in the original, in order.
        let mut it = trace.records().iter();
        for rec in f.records() {
            prop_assert!(it.any(|r| r == rec));
        }
    }
}
