//! Property-based tests for the `BWSS3` columnar format.
//!
//! Invariants proved here:
//!
//! * an arbitrary valid trace round-trips through `BWSS3` record- and
//!   metadata-identically;
//! * transcoding `BWSS2` ↔ `BWSS3` preserves the record sequence exactly
//!   (the cross-format identity the whole fast path rests on);
//! * a single flipped byte anywhere in the file never panics the
//!   decoder: salvage returns a block-aligned subsequence of what was
//!   written, strict returns a typed error or the intact whole;
//! * truncation at any point never panics: salvage keeps a valid prefix
//!   of whole blocks, strict always reports the torn footer.

use bwsa_trace::columnar::{read_columnar, write_columnar, ColumnarWriter};
use bwsa_trace::stream::{RecoveryPolicy, StreamReader, StreamWriter};
use bwsa_trace::{BranchRecord, Trace, TraceBuilder};
use proptest::prelude::*;

const BLOCK: usize = 7;

/// Strategy producing a valid trace: pcs from a small pool, monotone
/// timestamps, so multi-block files exercise cross-block interning.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec((0u8..24, any::<bool>(), 0u64..9), 0..220),
        "[a-z]{1,8}",
    )
        .prop_map(|(steps, name)| {
            let mut b = TraceBuilder::new(name);
            let mut t = 0u64;
            for (slot, taken, dt) in steps {
                t += dt + 1;
                b.record(0x1000 + u64::from(slot) * 4, taken, t);
            }
            b.finish()
        })
}

/// Encodes `trace` as a BWSS3 file with tiny blocks so corruption lands
/// in interesting places (block headers, payloads, the footer).
fn encode_columnar(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = ColumnarWriter::new(&mut buf, &trace.meta().name)
        .unwrap()
        .with_block_records(BLOCK);
    for r in trace.records() {
        w.push(*r).unwrap();
    }
    w.finish(trace.meta().total_instructions).unwrap();
    buf
}

/// `sub` appears in `full` in order (not necessarily contiguously).
fn is_subsequence(sub: &[BranchRecord], full: &[BranchRecord]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|r| it.any(|f| f == r))
}

proptest! {
    #[test]
    fn roundtrip_is_record_identical(trace in arb_trace()) {
        let bytes = encode_columnar(&trace);
        let (back, report) = read_columnar(&bytes, RecoveryPolicy::Strict).unwrap();
        prop_assert!(report.clean());
        prop_assert_eq!(back.records(), trace.records());
        prop_assert_eq!(&back.meta().name, &trace.meta().name);
        prop_assert_eq!(
            back.meta().total_instructions,
            trace.meta().total_instructions
        );
        prop_assert_eq!(back.static_branch_count(), trace.static_branch_count());
    }

    #[test]
    fn transcode_between_bwss2_and_bwss3_is_identity(trace in arb_trace()) {
        // trace -> BWSS2 -> decode -> BWSS3 -> decode: the record
        // sequence must survive both hops exactly.
        let mut bwss = Vec::new();
        let mut w = StreamWriter::new(&mut bwss, &trace.meta().name).unwrap();
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(trace.meta().total_instructions).unwrap();

        let mut reader = StreamReader::new(&bwss[..]).unwrap();
        let mut via_stream = Trace::new(reader.name().to_owned());
        for item in reader.by_ref() {
            via_stream.push(item.unwrap()).unwrap();
        }
        if let Some(total) = reader.total_instructions() {
            via_stream.meta_mut().total_instructions = total;
        }
        prop_assert_eq!(via_stream.records(), trace.records());

        let mut bws3 = Vec::new();
        write_columnar(&via_stream, &mut bws3).unwrap();
        let (via_columnar, _) = read_columnar(&bws3, RecoveryPolicy::Strict).unwrap();
        prop_assert_eq!(via_columnar.records(), trace.records());
        prop_assert_eq!(
            via_columnar.meta().total_instructions,
            via_stream.meta().total_instructions
        );
    }

    #[test]
    fn a_flipped_byte_never_panics_and_never_invents_records(
        trace in arb_trace(),
        position in 0usize..1 << 16,
        mask in 1u8..=255,
    ) {
        let bytes = encode_columnar(&trace);
        let mut damaged = bytes.clone();
        let at = position % damaged.len();
        damaged[at] ^= mask;

        // Strict: the intact whole or a typed error, never a panic.
        match read_columnar(&damaged, RecoveryPolicy::Strict) {
            Ok((back, _)) => prop_assert_eq!(back.records(), trace.records()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        // Salvage: whatever survives is a subsequence of what was
        // written — corruption can only lose records, not mint them.
        if let Ok((back, report)) = read_columnar(&damaged, RecoveryPolicy::Salvage) {
            prop_assert!(is_subsequence(back.records(), trace.records()));
            if back.records().len() < trace.len() {
                prop_assert!(
                    report.chunks_dropped > 0 || report.first_error.is_some(),
                    "silent record loss: {:?}",
                    report
                );
            }
        }
    }

    #[test]
    fn truncation_keeps_a_valid_prefix_and_never_panics(
        trace in arb_trace(),
        cut in 0usize..1 << 16,
    ) {
        let bytes = encode_columnar(&trace);
        let keep = cut % bytes.len();
        let torn = &bytes[..keep];

        // The trailer is gone, so strict must refuse the torn file.
        prop_assert!(read_columnar(torn, RecoveryPolicy::Strict).is_err());

        // Salvage recovers a prefix of whole blocks (or nothing).
        if let Ok((back, _)) = read_columnar(torn, RecoveryPolicy::Salvage) {
            let n = back.records().len();
            prop_assert_eq!(back.records(), &trace.records()[..n]);
            prop_assert!(n == trace.len() || n % BLOCK == 0);
        }
    }
}
