//! **Observability substrate** for the BWSA workspace: lightweight spans
//! and counters, peak-RSS sampling, and the versioned [`RunReport`]
//! emitted by instrumented pipeline runs.
//!
//! Every analysis and simulation layer in the workspace accepts an
//! [`Obs`] handle. The default handle is a **no-op**: it holds no
//! allocation, every call on it is a branch on a `None`, and the
//! instrumented code paths compute bit-identical results whether or not
//! anything is recording (a property the core crate's test suite checks).
//! Opting in is one call:
//!
//! ```
//! use bwsa_obs::Obs;
//!
//! let obs = Obs::recording();
//! {
//!     let _span = obs.span("interleave");
//!     obs.add("core.interleave_pairs", 42);
//! } // span records its wall time on drop
//! let metrics = obs.snapshot().expect("recording handle");
//! assert_eq!(metrics.counter("core.interleave_pairs"), 42);
//! assert_eq!(metrics.stages[0].name, "interleave");
//! assert_eq!(metrics.stages[0].count, 1);
//! ```
//!
//! The crate is dependency-free (std only) and sits below every other
//! crate in the workspace so that `bwsa-trace`, `bwsa-core`,
//! `bwsa-predictor`, the CLI, and the bench harness can all report into
//! one [`Metrics`] pool. [`report`] turns a pool plus run metadata into
//! the machine-readable [`RunReport`]; [`json`] is the hand-rolled JSON
//! encoder/parser it uses (the workspace builds hermetically, with no
//! `serde_json`).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod json;
pub mod report;
pub mod rss;

pub use report::{
    DowngradeReport, ResilienceReport, RunReport, StageReport, WindowsReport, RUN_REPORT_VERSION,
};

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A stage/span name: usually a `&'static str`, occasionally a dynamic
/// label (e.g. one sweep cell).
pub type Name = Cow<'static, str>;

/// One named stage's aggregated wall time.
///
/// Repeated spans under the same name accumulate: `wall_nanos` sums and
/// `count` counts, so a per-cell sweep span and a once-per-run pipeline
/// span both report naturally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (e.g. `"interleave"`, `"sweep:pag@compress_a"`).
    pub name: String,
    /// Total wall time spent in spans of this name, in nanoseconds.
    pub wall_nanos: u128,
    /// Number of spans recorded under this name.
    pub count: u64,
}

/// A point-in-time copy of everything an [`Obs`] handle has recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Stage timings in first-start order.
    pub stages: Vec<StageTiming>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
}

impl Metrics {
    /// The value of a counter, `0` if it was never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The timing entry for `name`, if any span of that name completed.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// This snapshot as an ordered JSON object — the live-metrics payload
    /// a long-running service returns from its `status` endpoint, with
    /// the same stage/counter names a [`RunReport`] would carry.
    pub fn to_json(&self) -> json::Json {
        use json::Json;
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::object([
                    ("name", Json::from(s.name.clone())),
                    (
                        "wall_nanos",
                        Json::UInt(s.wall_nanos.min(u128::from(u64::MAX)) as u64),
                    ),
                    ("count", Json::UInt(s.count)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
            .collect();
        Json::object([
            ("stages", Json::Array(stages)),
            ("counters", Json::Object(counters)),
        ])
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    /// Stage name → index into `stages`, preserving first-start order.
    stage_index: BTreeMap<String, usize>,
    stages: Vec<StageTiming>,
    counters: BTreeMap<String, u64>,
}

/// Shared recording sink behind a recording [`Obs`] handle.
#[derive(Debug, Default)]
struct Recorder {
    state: Mutex<RecorderState>,
}

impl Recorder {
    fn add(&self, name: &str, n: u64) {
        let mut state = self.state.lock().expect("obs recorder poisoned");
        *state.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    fn record_max(&self, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs recorder poisoned");
        let slot = state.counters.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
    }

    fn record_span(&self, name: &str, wall_nanos: u128) {
        let mut state = self.state.lock().expect("obs recorder poisoned");
        match state.stage_index.get(name) {
            Some(&i) => {
                let stage = &mut state.stages[i];
                stage.wall_nanos += wall_nanos;
                stage.count += 1;
            }
            None => {
                let i = state.stages.len();
                state.stage_index.insert(name.to_owned(), i);
                state.stages.push(StageTiming {
                    name: name.to_owned(),
                    wall_nanos,
                    count: 1,
                });
            }
        }
    }

    fn snapshot(&self) -> Metrics {
        let state = self.state.lock().expect("obs recorder poisoned");
        Metrics {
            stages: state.stages.clone(),
            counters: state.counters.clone(),
        }
    }
}

/// A cheap, cloneable observability handle.
///
/// [`Obs::noop`] (also [`Default`]) records nothing and costs one branch
/// per call; [`Obs::recording`] accumulates spans and counters behind an
/// `Arc<Mutex<..>>`, safe to share across worker threads. Clones of a
/// recording handle feed the same pool.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    recorder: Option<Arc<Recorder>>,
}

impl Obs {
    /// The zero-cost default: every call is a no-op.
    pub fn noop() -> Self {
        Obs { recorder: None }
    }

    /// A handle that records into a fresh shared pool.
    pub fn recording() -> Self {
        Obs {
            recorder: Some(Arc::new(Recorder::default())),
        }
    }

    /// `true` when this handle actually records.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Starts a wall-time span; the elapsed time is recorded under `name`
    /// when the returned guard drops (or [`Span::finish`] is called).
    pub fn span(&self, name: impl Into<Name>) -> Span {
        Span {
            active: self
                .recorder
                .as_ref()
                .map(|r| (Arc::clone(r), name.into(), Instant::now())),
        }
    }

    /// Bumps the counter `name` by `n`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.recorder {
            r.add(name, n);
        }
    }

    /// Records `value` into counter `name`, keeping the maximum seen —
    /// for peak gauges such as resident set size.
    pub fn record_max(&self, name: &str, value: u64) {
        if let Some(r) = &self.recorder {
            r.record_max(name, value);
        }
    }

    /// Samples the process peak RSS (where the platform exposes it) into
    /// the `process.peak_rss_bytes` counter.
    pub fn sample_peak_rss(&self) {
        if self.recorder.is_some() {
            if let Some(bytes) = rss::peak_rss_bytes() {
                self.record_max("process.peak_rss_bytes", bytes);
            }
        }
    }

    /// Copies out everything recorded so far; `None` for a no-op handle.
    pub fn snapshot(&self) -> Option<Metrics> {
        self.recorder.as_ref().map(|r| r.snapshot())
    }
}

/// RAII guard for one wall-time measurement; see [`Obs::span`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    active: Option<(Arc<Recorder>, Name, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((recorder, name, started)) = self.active.take() {
            recorder.record_span(&name, started.elapsed().as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        obs.add("x", 3);
        let _span = obs.span("stage");
        assert!(!obs.is_recording());
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn metrics_snapshot_renders_as_json() {
        let obs = Obs::recording();
        obs.span("dispatch").finish();
        obs.add("server.requests", 4);
        obs.add("server.tenant.alice.requests", 3);
        let doc = obs.snapshot().unwrap().to_json();
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("server.requests").and_then(json::Json::as_u64),
            Some(4)
        );
        assert_eq!(
            counters
                .get("server.tenant.alice.requests")
                .and_then(json::Json::as_u64),
            Some(3)
        );
        match doc.get("stages") {
            Some(json::Json::Array(stages)) => {
                assert_eq!(
                    stages[0].get("name").and_then(json::Json::as_str),
                    Some("dispatch")
                );
                assert_eq!(stages[0].get("count").and_then(json::Json::as_u64), Some(1));
            }
            other => panic!("stages missing: {other:?}"),
        }
        // The rendering parses back: the status endpoint is real JSON.
        json::Json::parse(&doc.to_pretty_string()).unwrap();
    }

    #[test]
    fn counters_accumulate_and_max_gauges_keep_the_peak() {
        let obs = Obs::recording();
        obs.add("a", 2);
        obs.add("a", 3);
        obs.record_max("peak", 10);
        obs.record_max("peak", 4);
        let m = obs.snapshot().unwrap();
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("peak"), 10);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn spans_aggregate_by_name_in_first_start_order() {
        let obs = Obs::recording();
        obs.span("first").finish();
        obs.span("second").finish();
        obs.span("first").finish();
        let m = obs.snapshot().unwrap();
        assert_eq!(m.stages.len(), 2);
        assert_eq!(m.stages[0].name, "first");
        assert_eq!(m.stages[0].count, 2);
        assert_eq!(m.stages[1].name, "second");
        assert_eq!(m.stages[1].count, 1);
        assert!(m.stage("first").is_some());
        assert!(m.stage("third").is_none());
    }

    #[test]
    fn clones_share_one_pool_across_threads() {
        let obs = Obs::recording();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        obs.add("n", 1);
                    }
                    obs.span("work").finish();
                });
            }
        });
        let m = obs.snapshot().unwrap();
        assert_eq!(m.counter("n"), 400);
        assert_eq!(m.stage("work").unwrap().count, 4);
    }

    #[test]
    fn peak_rss_sampling_is_harmless_everywhere() {
        let obs = Obs::recording();
        obs.sample_peak_rss();
        // On Linux the counter appears; elsewhere it is simply absent.
        let m = obs.snapshot().unwrap();
        if let Some(&v) = m.counters.get("process.peak_rss_bytes") {
            assert!(v > 0);
        }
    }
}
