//! Minimal JSON document model, encoder, and parser.
//!
//! The workspace builds hermetically — `serde` resolves to a no-op stub
//! and there is no `serde_json` — so the [`crate::RunReport`] wire format
//! is produced and validated by this hand-rolled implementation. Object
//! key order is preserved (insertion order), which keeps emitted reports
//! byte-stable for golden tests.
//!
//! ```
//! use bwsa_obs::json::Json;
//!
//! let doc = Json::object([
//!     ("name", Json::from("bwsa")),
//!     ("version", Json::from(1u64)),
//!     ("tags", Json::Array(vec![Json::from("a"), Json::from("b")])),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (counters, counts, nanoseconds).
    UInt(u64),
    /// A floating-point number (rates, seconds).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an unsigned number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON type name (`"null"`, `"bool"`, `"number"`, `"string"`,
    /// `"array"`, `"object"`) — the vocabulary of schema shapes.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the format written to `--metrics` files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document (the subset this module emits: no
    /// scientific-notation round-trip guarantees beyond `f64`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact single-line encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value parses back as float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do by char boundaries).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(v) = text.parse::<u64>() {
        return Ok(Json::UInt(v));
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::object([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("int", Json::UInt(u64::MAX)),
            ("float", Json::Float(0.25)),
            ("round", Json::Float(3.0)),
            ("text", Json::from("say \"hi\"\n\ttab")),
            (
                "arr",
                Json::Array(vec![Json::UInt(1), Json::Null, Json::from("x")]),
            ),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ])
    }

    #[test]
    fn compact_roundtrip() {
        let doc = sample();
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn pretty_roundtrip() {
        let doc = sample();
        assert_eq!(Json::parse(&doc.to_pretty_string()).unwrap(), doc);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = Json::object([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert!(doc.to_string().find("\"z\"").unwrap() < doc.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn accessors_work() {
        let doc = sample();
        assert_eq!(doc.get("int").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(
            doc.get("text").and_then(Json::as_str).map(str::len),
            Some(13)
        );
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.type_name(), "object");
        assert_eq!(Json::Null.type_name(), "null");
        assert_eq!(Json::Float(1.0).type_name(), "number");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"k\" 1}",
            "nul",
            "12x",
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        let doc = Json::from("snowman \u{2603} and control \u{1}");
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }
}
