//! Peak resident-set-size sampling.
//!
//! Linux exposes the high-water mark of a process's resident set as the
//! `VmHWM` line of `/proc/self/status`; other platforms get `None` and
//! the `process.peak_rss_bytes` counter simply never appears in reports.

/// The peak resident set size of this process in bytes, when the
/// platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts `VmHWM` (reported in kB) from `/proc/self/status` content.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_vm_hwm_line() {
        let status = "Name:\tbwsa\nVmPeak:\t  123 kB\nVmHWM:\t    5168 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(5168 * 1024));
    }

    #[test]
    fn missing_or_malformed_lines_yield_none() {
        assert_eq!(parse_vm_hwm("Name:\tbwsa\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot a number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_sample_is_positive_on_linux() {
        let bytes = peak_rss_bytes().expect("/proc/self/status should parse");
        assert!(bytes > 0);
    }
}
