//! The versioned, machine-readable **run report**.
//!
//! A [`RunReport`] is the single artifact an instrumented run emits: which
//! command ran, an echo of the effective configuration, per-stage wall
//! times, every counter the layers recorded, peak RSS where available,
//! and digests of the results (so two reports can be compared for
//! result equality without re-running).
//!
//! The JSON shape is versioned by [`RUN_REPORT_VERSION`] and pinned by a
//! golden schema test (`tests/run_report.rs` at the workspace root): any
//! change to the emitted shape must bump the version and regenerate the
//! fixture, which is the deprecation/compat policy for downstream
//! consumers of `--metrics` files.

use crate::json::Json;
use crate::Metrics;

/// Version of the `RunReport` JSON shape. Bump on any schema change.
///
/// v2 added the always-present `resilience` section (supervision
/// attempts, retries, downgrades, faults). v3 added the always-present
/// `windows` section (online windowed-analysis summary).
pub const RUN_REPORT_VERSION: u64 = 3;

/// One pipeline stage's timing row in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name, matching the pipeline diagram in DESIGN.md §1/§9.
    pub name: String,
    /// Total wall time in nanoseconds.
    pub wall_nanos: u128,
    /// Number of spans aggregated into this row.
    pub count: u64,
}

/// One drop down the supervised degradation ladder, as reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DowngradeReport {
    /// The engine that failed (`"parallel"`, `"serial"`).
    pub from: String,
    /// The engine the run fell back to (`"serial"`, `"streaming"`).
    pub to: String,
    /// The fault that forced the drop, rendered for humans.
    pub reason: String,
}

/// The supervision section of a report: what the run survived.
///
/// Always present in the JSON (v2) so consumers can rely on the shape;
/// an unsupervised run reports the trivial summary — one attempt,
/// nothing retried, nothing downgraded.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Whether the run executed under a supervisor.
    pub supervised: bool,
    /// Whole-engine attempts made.
    pub attempts: u64,
    /// Retries granted (whole-engine and per-shard combined).
    pub retries: u64,
    /// Each drop down the degradation ladder, in order.
    pub downgrades: Vec<DowngradeReport>,
    /// Every fault observed, rendered for humans, in order.
    pub faults: Vec<String>,
}

impl Default for ResilienceReport {
    fn default() -> Self {
        ResilienceReport {
            supervised: false,
            attempts: 1,
            retries: 0,
            downgrades: Vec::new(),
            faults: Vec::new(),
        }
    }
}

/// The windowed-analysis section of a report: what an online run emitted.
///
/// Always present in the JSON (v3) so consumers can rely on the shape; a
/// run without `--window` reports the trivial summary — disabled, zero
/// windows, unit `"none"`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowsReport {
    /// Whether the run performed windowed analysis.
    pub enabled: bool,
    /// The reset interval (0 when disabled).
    pub interval: u64,
    /// What the interval counts: `"branches"`, `"instructions"`, or
    /// `"none"` when disabled.
    pub unit: String,
    /// Windows emitted.
    pub count: u64,
    /// Dynamic records the windowed pass consumed.
    pub records: u64,
    /// Times the incremental re-colorer actually ran.
    pub recolors: u64,
    /// Mean re-coloring stability across windows (1.0 with no windows).
    pub mean_stability: f64,
    /// Windows flagged as phase changes.
    pub phase_changes: u64,
}

impl Default for WindowsReport {
    fn default() -> Self {
        WindowsReport {
            enabled: false,
            interval: 0,
            unit: "none".to_owned(),
            count: 0,
            records: 0,
            recolors: 0,
            mean_stability: 1.0,
            phase_changes: 0,
        }
    }
}

/// A complete, self-describing record of one instrumented run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The subcommand or entry point (`"analyze"`, `"simulate"`, ...).
    pub command: String,
    /// Trace name the run consumed.
    pub trace_name: String,
    /// Dynamic branch records processed.
    pub trace_records: u64,
    /// Static branch sites in the trace.
    pub trace_static_branches: u64,
    /// Echo of the effective configuration (threshold, execution mode,
    /// jobs, classification, ...), as an ordered JSON object.
    pub config: Json,
    /// Per-stage wall times, in first-start order.
    pub stages: Vec<StageReport>,
    /// All recorded counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Peak resident set size in bytes, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Named result digests (`crc32:xxxxxxxx`), for cheap equality checks
    /// between runs.
    pub digests: Vec<(String, String)>,
    /// Supervision outcome; the trivial default for unsupervised runs.
    pub resilience: ResilienceReport,
    /// Windowed-analysis outcome; the trivial default for whole-trace
    /// runs.
    pub windows: WindowsReport,
}

impl RunReport {
    /// Starts a report for `command` over a trace, folding in everything
    /// `metrics` recorded. The `process.peak_rss_bytes` counter, when
    /// present, is lifted into [`RunReport::peak_rss_bytes`].
    pub fn new(
        command: impl Into<String>,
        trace_name: impl Into<String>,
        trace_records: u64,
        trace_static_branches: u64,
        config: Json,
        metrics: &Metrics,
    ) -> Self {
        let mut counters: Vec<(String, u64)> = metrics
            .counters
            .iter()
            .filter(|(k, _)| *k != "process.peak_rss_bytes")
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        counters.sort();
        RunReport {
            command: command.into(),
            trace_name: trace_name.into(),
            trace_records,
            trace_static_branches,
            config,
            stages: metrics
                .stages
                .iter()
                .map(|s| StageReport {
                    name: s.name.clone(),
                    wall_nanos: s.wall_nanos,
                    count: s.count,
                })
                .collect(),
            counters,
            peak_rss_bytes: metrics.counters.get("process.peak_rss_bytes").copied(),
            digests: Vec::new(),
            resilience: ResilienceReport::default(),
            windows: WindowsReport::default(),
        }
    }

    /// Appends a named result digest.
    pub fn push_digest(&mut self, name: impl Into<String>, digest: impl Into<String>) {
        self.digests.push((name.into(), digest.into()));
    }

    /// Replaces the supervision section (set by supervised sessions).
    pub fn set_resilience(&mut self, resilience: ResilienceReport) {
        self.resilience = resilience;
    }

    /// Replaces the windowed-analysis section (set by windowed sessions).
    pub fn set_windows(&mut self, windows: WindowsReport) {
        self.windows = windows;
    }

    /// The report as a JSON document (see [`RunReport::to_json_string`]
    /// for the serialised form).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("run_report_version", Json::UInt(RUN_REPORT_VERSION)),
            ("tool", Json::from("bwsa")),
            ("command", Json::from(self.command.clone())),
            (
                "trace",
                Json::object([
                    ("name", Json::from(self.trace_name.clone())),
                    ("records", Json::UInt(self.trace_records)),
                    ("static_branches", Json::UInt(self.trace_static_branches)),
                ]),
            ),
            ("config", self.config.clone()),
            (
                "stages",
                Json::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::object([
                                ("name", Json::from(s.name.clone())),
                                (
                                    "wall_ns",
                                    Json::UInt(s.wall_nanos.min(u64::MAX as u128) as u64),
                                ),
                                ("count", Json::UInt(s.count)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "peak_rss_bytes",
                match self.peak_rss_bytes {
                    Some(v) => Json::UInt(v),
                    None => Json::Null,
                },
            ),
            (
                "resilience",
                Json::object([
                    ("supervised", Json::Bool(self.resilience.supervised)),
                    ("attempts", Json::UInt(self.resilience.attempts)),
                    ("retries", Json::UInt(self.resilience.retries)),
                    (
                        "downgrades",
                        Json::Array(
                            self.resilience
                                .downgrades
                                .iter()
                                .map(|d| {
                                    Json::object([
                                        ("from", Json::from(d.from.clone())),
                                        ("to", Json::from(d.to.clone())),
                                        ("reason", Json::from(d.reason.clone())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "faults",
                        Json::Array(
                            self.resilience
                                .faults
                                .iter()
                                .map(|f| Json::from(f.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "windows",
                Json::object([
                    ("enabled", Json::Bool(self.windows.enabled)),
                    ("interval", Json::UInt(self.windows.interval)),
                    ("unit", Json::from(self.windows.unit.clone())),
                    ("count", Json::UInt(self.windows.count)),
                    ("records", Json::UInt(self.windows.records)),
                    ("recolors", Json::UInt(self.windows.recolors)),
                    ("mean_stability", Json::Float(self.windows.mean_stability)),
                    ("phase_changes", Json::UInt(self.windows.phase_changes)),
                ]),
            ),
            (
                "digests",
                Json::Object(
                    self.digests
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON, the exact bytes `--report json` and
    /// `--metrics` emit.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// A human-readable rendering for `--report text`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report v{RUN_REPORT_VERSION}: {} on trace '{}' ({} records, {} static branches)",
            self.command, self.trace_name, self.trace_records, self.trace_static_branches
        );
        let _ = writeln!(out, "stages:");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<24} {:>12.3} ms  x{}",
                s.name,
                s.wall_nanos as f64 / 1e6,
                s.count
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        if let Some(rss) = self.peak_rss_bytes {
            let _ = writeln!(out, "peak rss: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        if self.resilience.supervised {
            let _ = writeln!(
                out,
                "resilience: {} attempts, {} retries, {} faults",
                self.resilience.attempts,
                self.resilience.retries,
                self.resilience.faults.len()
            );
            for d in &self.resilience.downgrades {
                let _ = writeln!(out, "  downgraded {} -> {}: {}", d.from, d.to, d.reason);
            }
        }
        if self.windows.enabled {
            let _ = writeln!(
                out,
                "windows: {} x {} {} ({} recolors, mean stability {:.3}, {} phase changes)",
                self.windows.count,
                self.windows.interval,
                self.windows.unit,
                self.windows.recolors,
                self.windows.mean_stability,
                self.windows.phase_changes
            );
        }
        for (k, v) in &self.digests {
            let _ = writeln!(out, "digest {k}: {v}");
        }
        out
    }
}

/// Flattens a JSON document into its **shape**: sorted `path: type` lines
/// with data-dependent key sets (everything under `config`, `counters`,
/// and `digests`) wildcarded. Two reports with the same shape are
/// schema-compatible; the golden schema test pins this string.
pub fn schema_shape(doc: &Json) -> String {
    let mut lines = Vec::new();
    walk_shape(doc, String::new(), &mut lines);
    lines.sort();
    lines.dedup();
    lines.join("\n") + "\n"
}

fn walk_shape(doc: &Json, path: String, lines: &mut Vec<String>) {
    match doc {
        Json::Object(pairs) => {
            lines.push(format!(
                "{}: object",
                if path.is_empty() { "$" } else { &path }
            ));
            // Config, counter, and digest keys are data (which knobs a
            // subcommand echoes, which counters fired, which digests it
            // emits), not schema — wildcard them.
            let wildcard_values =
                path.ends_with("config") || path.ends_with("counters") || path.ends_with("digests");
            for (k, v) in pairs {
                let child = if path.is_empty() {
                    k.clone()
                } else if wildcard_values {
                    format!("{path}.*")
                } else {
                    format!("{path}.{k}")
                };
                walk_shape(v, child, lines);
            }
        }
        Json::Array(items) => {
            lines.push(format!("{path}: array"));
            for item in items {
                walk_shape(item, format!("{path}[]"), lines);
            }
        }
        other => lines.push(format!("{path}: {}", other.type_name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_report() -> RunReport {
        let obs = Obs::recording();
        obs.span("interleave").finish();
        obs.span("conflict_prune").finish();
        obs.add("core.interleave_pairs", 12);
        obs.record_max("process.peak_rss_bytes", 1024);
        let metrics = obs.snapshot().unwrap();
        let mut report = RunReport::new(
            "analyze",
            "demo",
            1000,
            7,
            Json::object([("threshold", Json::UInt(100))]),
            &metrics,
        );
        report.push_digest("analysis", "crc32:deadbeef");
        report
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("run_report_version").and_then(Json::as_u64),
            Some(RUN_REPORT_VERSION)
        );
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("analyze"));
        assert_eq!(
            doc.get("trace")
                .and_then(|t| t.get("records"))
                .and_then(Json::as_u64),
            Some(1000)
        );
        assert_eq!(doc.get("peak_rss_bytes").and_then(Json::as_u64), Some(1024));
    }

    #[test]
    fn peak_rss_is_lifted_out_of_counters() {
        let report = sample_report();
        assert!(report
            .counters
            .iter()
            .all(|(k, _)| k != "process.peak_rss_bytes"));
        assert_eq!(report.peak_rss_bytes, Some(1024));
    }

    #[test]
    fn shape_wildcards_config_counter_and_digest_keys() {
        let report = sample_report();
        let shape = schema_shape(&report.to_json());
        assert!(shape.contains("counters.*: number"), "{shape}");
        assert!(shape.contains("digests.*: string"), "{shape}");
        assert!(shape.contains("config.*: number"), "{shape}");
        assert!(!shape.contains("core.interleave_pairs"), "{shape}");
        assert!(!shape.contains("config.threshold"), "{shape}");
        assert!(shape.contains("stages[].wall_ns: number"), "{shape}");
    }

    #[test]
    fn shape_is_stable_across_counter_sets() {
        let a = sample_report();
        let obs = Obs::recording();
        obs.span("interleave").finish();
        obs.add("completely.other.counter", 1);
        let mut b = RunReport::new(
            "analyze",
            "other",
            5,
            2,
            Json::object([("threshold", Json::UInt(3))]),
            &obs.snapshot().unwrap(),
        );
        b.push_digest("analysis", "crc32:00000000");
        // peak_rss differs (None vs Some) — normalise for the comparison.
        let mut a = a;
        a.peak_rss_bytes = None;
        assert_eq!(schema_shape(&a.to_json()), schema_shape(&b.to_json()));
    }

    #[test]
    fn text_rendering_mentions_stages_and_counters() {
        let text = sample_report().to_text();
        assert!(text.contains("interleave"));
        assert!(text.contains("core.interleave_pairs"));
        assert!(text.contains("peak rss"));
    }

    #[test]
    fn windows_section_is_always_present_and_roundtrips() {
        let plain = sample_report();
        let doc = Json::parse(&plain.to_json_string()).unwrap();
        let windows = doc.get("windows").expect("always present");
        assert_eq!(windows.get("enabled"), Some(&Json::Bool(false)));
        assert_eq!(windows.get("unit").and_then(Json::as_str), Some("none"));
        assert_eq!(windows.get("count").and_then(Json::as_u64), Some(0));
        assert!(!plain.to_text().contains("windows:"));

        let mut windowed = sample_report();
        windowed.set_windows(WindowsReport {
            enabled: true,
            interval: 4096,
            unit: "branches".into(),
            count: 12,
            records: 49152,
            recolors: 5,
            mean_stability: 0.875,
            phase_changes: 2,
        });
        let doc = Json::parse(&windowed.to_json_string()).unwrap();
        let section = doc.get("windows").unwrap();
        assert_eq!(section.get("interval").and_then(Json::as_u64), Some(4096));
        assert_eq!(section.get("recolors").and_then(Json::as_u64), Some(5));
        // The enabled/disabled sections have the same schema shape.
        assert_eq!(
            schema_shape(&windowed.to_json()),
            schema_shape(&plain.to_json())
        );
        let text = windowed.to_text();
        assert!(text.contains("windows: 12 x 4096 branches"), "{text}");
        assert!(text.contains("mean stability 0.875"), "{text}");
    }

    #[test]
    fn resilience_section_is_always_present_and_roundtrips() {
        let plain = sample_report();
        let doc = Json::parse(&plain.to_json_string()).unwrap();
        let resilience = doc.get("resilience").expect("always present");
        assert_eq!(resilience.get("supervised"), Some(&Json::Bool(false)));
        assert_eq!(
            resilience.get("attempts").and_then(Json::as_u64),
            Some(1),
            "an unsupervised run is one attempt"
        );
        assert!(!plain.to_text().contains("resilience:"));

        let mut degraded = sample_report();
        degraded.set_resilience(ResilienceReport {
            supervised: true,
            attempts: 3,
            retries: 1,
            downgrades: vec![DowngradeReport {
                from: "parallel".into(),
                to: "serial".into(),
                reason: "injected fault at 'core.shard_detect': boom".into(),
            }],
            faults: vec!["injected fault at 'core.shard_detect': boom".into()],
        });
        let doc = Json::parse(&degraded.to_json_string()).unwrap();
        let resilience = doc.get("resilience").unwrap();
        assert_eq!(resilience.get("retries").and_then(Json::as_u64), Some(1));
        let text = degraded.to_text();
        assert!(text.contains("3 attempts, 1 retries"), "{text}");
        assert!(text.contains("downgraded parallel -> serial"), "{text}");
    }
}
