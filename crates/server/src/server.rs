//! The daemon: accept loop, per-connection readers, supervised dispatch,
//! and graceful drain.
//!
//! Topology: one nonblocking accept loop (so it can poll the shutdown
//! flag), one blocking reader thread per connection, requests handled
//! inline on their connection thread. Concurrency across tenants comes
//! from concurrent connections; the [`crate::admission`] stage bounds how
//! many of them execute analysis at once.
//!
//! Every request passes three containment layers on its way in:
//!
//! 1. **Quota** ([`crate::quota`]) — per-tenant concurrency and byte
//!    caps, charged before any work, released by RAII on every path.
//! 2. **Admission** ([`crate::admission`]) — bounded wait, shed with
//!    jittered retry-after past the watermark.
//! 3. **Supervision** — the handler body runs inside
//!    [`bwsa_resilience::supervisor::catch`] with the
//!    [`crate::failpoints::DISPATCH`] site at its head, a thread-local
//!    wall deadline ([`bwsa_resilience::watchdog::arm_local`]), and the
//!    [`Session`] degradation ladder under it. Whatever goes wrong
//!    becomes a typed error frame on that request ID.

use crate::admission::{Admission, AdmissionConfig, AdmissionError};
use crate::frame::{self, Frame, DEFAULT_MAX_FRAME_BYTES};
use crate::proto::{ErrorCode, Request, Response};
use crate::quota::{QuotaLedger, TenantQuotas};
use crate::signal::ShutdownFlag;
use bwsa_core::{
    AnalysisPipeline, Classified, ConflictConfig, Execution, Session, SupervisorConfig,
    WindowConfig,
};
use bwsa_obs::json::Json;
use bwsa_obs::Obs;
use bwsa_resilience::supervisor::{catch, ResilienceError};
use bwsa_resilience::watchdog;
use bwsa_trace::stream::StreamReader;
use bwsa_trace::Trace;
use std::fmt;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Uniform per-tenant quotas.
    pub quotas: TenantQuotas,
    /// Admission sizing (workers, shed watermark, jitter seed).
    pub admission: AdmissionConfig,
    /// Supervision policy for each request's analysis run. `max_wall`
    /// should stay `None` here — per-request deadlines come from
    /// [`ServerConfig::request_deadline`] via the thread-local watchdog,
    /// so concurrent requests cannot clobber one process-global deadline.
    pub supervisor: SupervisorConfig,
    /// Wall-clock budget per request (`None` = unbounded).
    pub request_deadline: Option<Duration>,
    /// Ceiling on one frame's payload.
    pub max_frame_bytes: usize,
    /// Observer for live metrics; pass [`Obs::recording`] so the
    /// `status` request has something to report.
    pub obs: Obs,
    /// Server-local result cache directory for `corpus` requests
    /// (`None` = every corpus entry analyzes fresh). Entries already in
    /// the cache replay from disk, and their trace bytes are not
    /// charged against the tenant's in-flight-byte quota.
    pub corpus_cache: Option<PathBuf>,
}

impl ServerConfig {
    /// A default-tuned daemon on `socket`, with a recording observer.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            quotas: TenantQuotas::default(),
            admission: AdmissionConfig::default(),
            supervisor: SupervisorConfig::default(),
            request_deadline: Some(Duration::from_secs(60)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            obs: Obs::recording(),
            corpus_cache: None,
        }
    }
}

/// Daemon-level failures (request-level failures never surface here —
/// they become error frames).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Binding the listening socket failed.
    Bind {
        /// The socket path that could not be bound.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The accept loop's listener broke irrecoverably.
    Accept(io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { path, source } => {
                write!(f, "cannot bind {}: {source}", path.display())
            }
            ServerError::Accept(e) => write!(f, "accept loop failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Shared state every connection thread sees.
#[derive(Debug)]
struct Ctx {
    quota: Arc<QuotaLedger>,
    admission: Arc<Admission>,
    obs: Obs,
    shutdown: ShutdownFlag,
    supervisor: SupervisorConfig,
    request_deadline: Option<Duration>,
    max_frame_bytes: usize,
    corpus_cache: Option<PathBuf>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until drain;
/// [`Server::spawn`] runs it on a background thread and returns a
/// [`ServerHandle`] (tests, benches, and embedding).
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    socket: PathBuf,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the daemon's socket. The socket file is created now and
    /// removed on clean drain.
    ///
    /// # Errors
    ///
    /// [`ServerError::Bind`] — the CLI maps this to exit code 2, same as
    /// any other unusable invocation.
    pub fn bind(config: ServerConfig) -> Result<Self, ServerError> {
        let listener = UnixListener::bind(&config.socket).map_err(|source| ServerError::Bind {
            path: config.socket.clone(),
            source,
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|source| ServerError::Bind {
                path: config.socket.clone(),
                source,
            })?;
        Ok(Server {
            listener,
            socket: config.socket.clone(),
            ctx: Arc::new(Ctx {
                quota: QuotaLedger::new(config.quotas),
                admission: Admission::new(config.admission),
                obs: config.obs.clone(),
                shutdown: ShutdownFlag::new(),
                supervisor: config.supervisor,
                request_deadline: config.request_deadline,
                max_frame_bytes: config.max_frame_bytes,
                corpus_cache: config.corpus_cache.clone(),
            }),
        })
    }

    /// This daemon's shutdown flag; `request()` it to begin a drain.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.ctx.shutdown.clone()
    }

    /// The quota ledger (shared; inspectable while running).
    pub fn quota(&self) -> Arc<QuotaLedger> {
        Arc::clone(&self.ctx.quota)
    }

    /// The admission stage (shared; inspectable while running).
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.ctx.admission)
    }

    /// Serves until the shutdown flag flips (signal, `shutdown` request,
    /// or [`ServerHandle::begin_shutdown`]), then drains: stop accepting,
    /// let in-flight requests finish, remove the socket file.
    ///
    /// # Errors
    ///
    /// Only daemon-level [`ServerError`]s; request failures are answered
    /// on their own connections.
    pub fn run(self) -> Result<(), ServerError> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let result = self.accept_loop(&mut connections);
        // Drain: the flag is set (or the listener died); connection
        // threads notice within one poll interval and exit, waiters in
        // admission get typed shutting-down responses.
        self.ctx.admission.begin_shutdown();
        for conn in connections {
            let _ = conn.join();
        }
        self.ctx.admission.drain();
        let _ = std::fs::remove_file(&self.socket);
        result
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let shutdown = self.ctx.shutdown.clone();
        let quota = self.quota();
        let admission = self.admission();
        let socket = self.socket.clone();
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            thread,
            shutdown,
            quota,
            admission,
            socket,
        }
    }

    fn accept_loop(&self, connections: &mut Vec<JoinHandle<()>>) -> Result<(), ServerError> {
        loop {
            if self.ctx.shutdown.requested() {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    self.ctx.obs.add("server.connections", 1);
                    // The accept failpoint is contained per-connection: an
                    // injected fault answers this connection with a typed
                    // frame and the daemon keeps accepting.
                    let accepted = catch(|| {
                        bwsa_resilience::failpoint!(crate::failpoints::ACCEPT);
                    });
                    match accepted {
                        Ok(()) => {
                            let ctx = Arc::clone(&self.ctx);
                            connections.push(thread::spawn(move || serve_connection(stream, &ctx)));
                        }
                        Err(fault) => {
                            self.ctx.obs.add("server.accept_faults", 1);
                            let mut stream = stream;
                            respond_best_effort(
                                &mut stream,
                                0,
                                "",
                                Response::Error {
                                    code: ErrorCode::Fault,
                                    message: format!("accept fault contained: {fault}"),
                                    retry_after_ms: None,
                                },
                            );
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServerError::Accept(e)),
            }
        }
    }
}

/// A running daemon on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    thread: JoinHandle<Result<(), ServerError>>,
    shutdown: ShutdownFlag,
    quota: Arc<QuotaLedger>,
    admission: Arc<Admission>,
    socket: PathBuf,
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The live quota ledger.
    pub fn quota(&self) -> &Arc<QuotaLedger> {
        &self.quota
    }

    /// The live admission stage.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Flips the drain flag (same path a SIGTERM takes).
    pub fn begin_shutdown(&self) {
        self.shutdown.request();
        self.admission.begin_shutdown();
    }

    /// Waits for the daemon to finish draining.
    ///
    /// # Errors
    ///
    /// The daemon's own [`ServerError`], or [`ServerError::Accept`] with
    /// a synthesized error if its thread panicked (it never should: every
    /// request runs behind `catch`).
    pub fn join(self) -> Result<(), ServerError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Accept(io::Error::other(
                "server thread panicked",
            ))),
        }
    }
}

/// Writes `response` for `request_id`, swallowing write errors (the peer
/// may already be gone; the daemon must not care).
fn respond_best_effort(stream: &mut UnixStream, request_id: u64, tenant: &str, response: Response) {
    let frame = response.into_frame(request_id, tenant);
    let _ = frame::write_frame(stream, &frame);
}

/// One connection's read-dispatch-respond loop.
fn serve_connection(stream: UnixStream, ctx: &Arc<Ctx>) {
    // Accepted sockets inherit nothing surprising, but be explicit: the
    // reader blocks with a timeout so it can poll the drain flag.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        match frame::read_frame(&mut reader, ctx.max_frame_bytes) {
            Ok(request_frame) => {
                let id = request_frame.request_id;
                let tenant = request_frame.tenant.clone();
                // A subscription is the one multi-frame exchange: its
                // window frames are written from inside the handler, so
                // it cannot go through the single-response path.
                let response = if request_frame.kind == crate::proto::kind::REQ_SUBSCRIBE {
                    handle_subscription(request_frame, ctx, &mut writer)
                } else {
                    handle_frame(request_frame, ctx)
                };
                let closing = ctx.shutdown.requested();
                respond_best_effort(&mut writer, id, &tenant, response);
                if closing {
                    return;
                }
            }
            Err(e) if e.is_timeout() => {
                if ctx.shutdown.requested() {
                    return;
                }
            }
            Err(e) if e.is_disconnect() => return,
            Err(e) => {
                // Framing is broken (bad magic, bad CRC, oversize): answer
                // typed on request id 0 and drop the connection — resync
                // inside a corrupt byte stream is not possible.
                ctx.obs.add("server.frame_errors", 1);
                respond_best_effort(
                    &mut writer,
                    0,
                    "",
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                        retry_after_ms: None,
                    },
                );
                return;
            }
        }
    }
}

/// Dispatches one decoded frame to a typed response. Never panics: the
/// fallible/unwindable interior runs behind `catch`.
fn handle_frame(frame: Frame, ctx: &Arc<Ctx>) -> Response {
    let tenant = frame.tenant.clone();
    ctx.obs.add("server.requests", 1);
    if !tenant.is_empty() {
        ctx.obs.add(&format!("server.tenant.{tenant}.requests"), 1);
    }
    let outcome = catch(|| dispatch(frame, ctx));
    let response = match outcome {
        Ok(response) => response,
        // An unwind that escaped the dispatch body (an injected fault at
        // the dispatch site, a genuine bug) is contained right here; the
        // quota and admission guards released during the unwind.
        Err(fault) => Response::Error {
            code: ErrorCode::Fault,
            message: format!("request fault contained: {fault}"),
            retry_after_ms: None,
        },
    };
    match &response {
        // Single-response handlers never answer with a Window frame;
        // counting one as ok keeps the arm total if that ever changes.
        Response::Ok(_) | Response::Window(_) => {
            ctx.obs.add("server.responses_ok", 1);
            if !tenant.is_empty() {
                ctx.obs.add(&format!("server.tenant.{tenant}.ok"), 1);
            }
        }
        Response::Error { code, .. } => {
            ctx.obs.add("server.responses_err", 1);
            ctx.obs.add(&format!("server.errors.{}", code.label()), 1);
            if !tenant.is_empty() {
                ctx.obs.add(&format!("server.tenant.{tenant}.err"), 1);
            }
        }
    }
    response
}

/// The unwindable interior of request handling.
fn dispatch(frame: Frame, ctx: &Arc<Ctx>) -> Response {
    bwsa_resilience::failpoint!(crate::failpoints::DISPATCH);
    let decoded = {
        bwsa_resilience::failpoint!(crate::failpoints::FRAME_DECODE);
        Request::from_frame(&frame)
    };
    let request = match decoded {
        Ok(request) => request,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    match request {
        Request::Ping => Response::Ok("{\"pong\": true}".to_owned()),
        Request::Status => Response::Ok(status_json(ctx).to_pretty_string()),
        Request::Shutdown => {
            ctx.shutdown.request();
            ctx.admission.begin_shutdown();
            Response::Ok("{\"draining\": true}".to_owned())
        }
        Request::Analyze { threshold, trace } => {
            analysis_request(ctx, &frame.tenant, threshold, &trace, Action::Summary)
        }
        Request::Allocate {
            threshold,
            table,
            classified,
            trace,
        } => analysis_request(
            ctx,
            &frame.tenant,
            threshold,
            &trace,
            Action::Allocate { table, classified },
        ),
        Request::Report { threshold, trace } => {
            analysis_request(ctx, &frame.tenant, threshold, &trace, Action::Report)
        }
        Request::Corpus {
            threshold,
            jobs,
            manifest,
        } => corpus_request(ctx, &frame.tenant, threshold, jobs, &manifest),
        // Subscriptions are routed by kind byte in `serve_connection`
        // before dispatch; reaching here means a caller bypassed that.
        Request::Subscribe { .. } => Response::Error {
            code: ErrorCode::Malformed,
            message: "subscribe requires a streaming connection".to_owned(),
            retry_after_ms: None,
        },
    }
}

/// The multi-frame `subscribe` exchange: counters and containment mirror
/// [`handle_frame`], but each flushed window goes to `writer` as a
/// [`Response::Window`] frame before the terminal response (returned to
/// the caller, which writes it like any other).
fn handle_subscription(frame: Frame, ctx: &Arc<Ctx>, writer: &mut UnixStream) -> Response {
    let tenant = frame.tenant.clone();
    ctx.obs.add("server.requests", 1);
    ctx.obs.add("server.subscriptions", 1);
    if !tenant.is_empty() {
        ctx.obs.add(&format!("server.tenant.{tenant}.requests"), 1);
    }
    let outcome = catch(|| subscription_dispatch(frame, ctx, writer));
    let response = match outcome {
        Ok(response) => response,
        Err(fault) => Response::Error {
            code: ErrorCode::Fault,
            message: format!("request fault contained: {fault}"),
            retry_after_ms: None,
        },
    };
    match &response {
        Response::Ok(_) | Response::Window(_) => {
            ctx.obs.add("server.responses_ok", 1);
            if !tenant.is_empty() {
                ctx.obs.add(&format!("server.tenant.{tenant}.ok"), 1);
            }
        }
        Response::Error { code, .. } => {
            ctx.obs.add("server.responses_err", 1);
            ctx.obs.add(&format!("server.errors.{}", code.label()), 1);
            if !tenant.is_empty() {
                ctx.obs.add(&format!("server.tenant.{tenant}.err"), 1);
            }
        }
    }
    response
}

/// The unwindable interior of a subscription: quota → admission →
/// deadline → windowed Session run, writing one window frame per flush
/// and returning the terminal whole-trace summary — byte-identical to
/// what `Analyze` answers for the same trace and threshold.
fn subscription_dispatch(frame: Frame, ctx: &Arc<Ctx>, writer: &mut UnixStream) -> Response {
    bwsa_resilience::failpoint!(crate::failpoints::DISPATCH);
    let decoded = {
        bwsa_resilience::failpoint!(crate::failpoints::FRAME_DECODE);
        Request::from_frame(&frame)
    };
    let (threshold, window, instructions, trace_bytes) = match decoded {
        Ok(Request::Subscribe {
            threshold,
            window,
            instructions,
            trace,
        }) => (threshold, window, instructions, trace),
        Ok(_) => {
            return Response::Error {
                code: ErrorCode::Malformed,
                message: "subscription handler got a non-subscribe frame".to_owned(),
                retry_after_ms: None,
            }
        }
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    let _quota = match ctx.quota.try_admit(&frame.tenant, trace_bytes.len() as u64) {
        Ok(guard) => guard,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Quota,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    let _slot = match ctx.admission.enter() {
        Ok(guard) => guard,
        Err(AdmissionError::Shed { retry_after }) => {
            ctx.obs.add("server.requests_shed", 1);
            return Response::Error {
                code: ErrorCode::Overload,
                message: "admission queue at the shed watermark".to_owned(),
                retry_after_ms: Some(retry_after.as_millis().min(u128::from(u64::MAX)) as u64),
            };
        }
        Err(AdmissionError::ShuttingDown) => {
            return Response::Error {
                code: ErrorCode::Shutdown,
                message: "daemon is draining".to_owned(),
                retry_after_ms: None,
            }
        }
    };
    let _deadline = ctx
        .request_deadline
        .map(|budget| watchdog::arm_local(Instant::now() + budget));
    let outcome = catch(|| {
        let pipeline = match pipeline_for(threshold) {
            Ok(p) => p,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                    retry_after_ms: None,
                }
            }
        };
        let config = if instructions {
            WindowConfig::instructions(window)
        } else {
            WindowConfig::branches(window)
        };
        let config = match config {
            Ok(c) => c,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                    retry_after_ms: None,
                }
            }
        };
        let trace = match parse_trace(&trace_bytes) {
            Ok(t) => t,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                    retry_after_ms: None,
                }
            }
        };
        let session = Session::new(&trace)
            .with_pipeline(pipeline)
            .with_execution(Execution::Serial)
            .with_supervisor(ctx.supervisor)
            .with_observer(ctx.obs.clone())
            .with_windowing(config);
        match session.windowed() {
            Ok(windowed) => {
                for summary in &windowed.windows {
                    let window_frame = Response::Window(summary.to_json().to_pretty_string())
                        .into_frame(frame.request_id, &frame.tenant);
                    if frame::write_frame(writer, &window_frame).is_err() {
                        return Response::Error {
                            code: ErrorCode::Fault,
                            message: "subscriber connection lost mid-stream".to_owned(),
                            retry_after_ms: None,
                        };
                    }
                    ctx.obs.add("server.windows_emitted", 1);
                }
                Response::Ok(windowed.analysis.summary_json().to_pretty_string())
            }
            Err(e) => Response::Error {
                code: ErrorCode::Analysis,
                message: e.to_string(),
                retry_after_ms: None,
            },
        }
    });
    match outcome {
        Ok(response) => response,
        Err(e @ (ResilienceError::Timeout { .. } | ResilienceError::MemoryBudget { .. })) => {
            Response::Error {
                code: ErrorCode::Analysis,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
        Err(e) => Response::Error {
            code: ErrorCode::Fault,
            message: format!("request fault contained: {e}"),
            retry_after_ms: None,
        },
    }
}

/// What an admitted analysis-class request answers with.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// The analysis summary document.
    Summary,
    /// A predictor-table allocation over the analysis.
    Allocate {
        /// Table size in entries.
        table: u64,
        /// Allocate only classified (biased) branches when `true`.
        classified: bool,
    },
    /// The versioned RunReport for this request's own run.
    Report,
}

/// Quota → admission → supervised Session run for analyze/allocate/report.
fn analysis_request(
    ctx: &Arc<Ctx>,
    tenant: &str,
    threshold: Option<u64>,
    trace_bytes: &[u8],
    action: Action,
) -> Response {
    let _quota = match ctx.quota.try_admit(tenant, trace_bytes.len() as u64) {
        Ok(guard) => guard,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Quota,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    let _slot = match ctx.admission.enter() {
        Ok(guard) => guard,
        Err(AdmissionError::Shed { retry_after }) => {
            ctx.obs.add("server.requests_shed", 1);
            return Response::Error {
                code: ErrorCode::Overload,
                message: "admission queue at the shed watermark".to_owned(),
                retry_after_ms: Some(retry_after.as_millis().min(u128::from(u64::MAX)) as u64),
            };
        }
        Err(AdmissionError::ShuttingDown) => {
            return Response::Error {
                code: ErrorCode::Shutdown,
                message: "daemon is draining".to_owned(),
                retry_after_ms: None,
            }
        }
    };
    // The deadline is thread-local: it covers this request on this
    // thread without constraining concurrent requests. The whole
    // deadline-covered region runs behind its own catch so an expiry
    // observed anywhere inside — even while parsing the uploaded trace,
    // outside the Session's own supervision — comes back as a typed
    // analysis failure rather than a generic fault.
    let _deadline = ctx
        .request_deadline
        .map(|budget| watchdog::arm_local(Instant::now() + budget));
    let outcome = catch(|| {
        let pipeline = match pipeline_for(threshold) {
            Ok(p) => p,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                    retry_after_ms: None,
                }
            }
        };
        let trace = match parse_trace(trace_bytes) {
            Ok(t) => t,
            Err(message) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                    retry_after_ms: None,
                }
            }
        };
        // Report requests get their own recording observer so the
        // answered RunReport covers exactly this run, not the daemon's
        // cumulative counters.
        let observer = match action {
            Action::Report => Obs::recording(),
            Action::Summary | Action::Allocate { .. } => ctx.obs.clone(),
        };
        let session = Session::new(&trace)
            .with_pipeline(pipeline)
            .with_execution(Execution::Serial)
            .with_supervisor(ctx.supervisor)
            .with_observer(observer);
        let result = match action {
            Action::Summary => session
                .run()
                .map(|analysis| analysis.summary_json().to_pretty_string()),
            Action::Allocate { table, classified } => session
                .allocate(Classified(classified), table as usize)
                .map(|allocation| allocation_json(&allocation).to_pretty_string()),
            Action::Report => session.run().map(|_| {
                session
                    .run_report("serve")
                    .expect("recording session has metrics after a run")
                    .to_json_string()
            }),
        };
        match result {
            Ok(doc) => Response::Ok(doc),
            Err(e) => Response::Error {
                code: ErrorCode::Analysis,
                message: e.to_string(),
                retry_after_ms: None,
            },
        }
    });
    match outcome {
        Ok(response) => response,
        Err(e @ (ResilienceError::Timeout { .. } | ResilienceError::MemoryBudget { .. })) => {
            Response::Error {
                code: ErrorCode::Analysis,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
        Err(e) => Response::Error {
            code: ErrorCode::Fault,
            message: format!("request fault contained: {e}"),
            retry_after_ms: None,
        },
    }
}

/// Quota → admission → fanned corpus run for a server-local manifest.
///
/// The manifest travels as a path (the traces it names are already on
/// the server's filesystem), so validation happens *before* quota is
/// charged — a malformed manifest is a free, typed refusal. Quota is
/// then charged by the summed on-disk size of every trace the manifest
/// names: the batch's real in-flight bytes, same currency as uploads.
fn corpus_request(
    ctx: &Arc<Ctx>,
    tenant: &str,
    threshold: Option<u64>,
    jobs: u64,
    manifest: &str,
) -> Response {
    let corpus = match bwsa_corpus::Corpus::open(Path::new(manifest)) {
        Ok(c) => c,
        Err(e) => {
            return Response::Error {
                code: if e.is_usage() {
                    ErrorCode::Malformed
                } else {
                    ErrorCode::Analysis
                },
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    // With a server-local result cache, entries that will replay from
    // disk cost no re-analysis, so their trace bytes are not charged:
    // quota counts only the bytes the daemon will actually hold in
    // flight. The probe decodes the cell read-only (no writer lock),
    // and a torn or stale cell simply counts as a miss here, exactly
    // as it will during the run.
    let probe_hit = |e: &bwsa_corpus::ManifestEntry| -> bool {
        let Some(dir) = ctx.corpus_cache.as_deref() else {
            return false;
        };
        let Ok(bytes) = std::fs::read(&e.path) else {
            return false;
        };
        let key = bwsa_corpus::CacheKey::for_entry(
            bwsa_trace::codec::content_digest(&bytes),
            &e.key,
            &e.class,
            threshold.unwrap_or(e.threshold),
            e.baseline,
        );
        std::fs::read(dir.join(key.file_name()))
            .ok()
            .and_then(|cell| bwsa_corpus::cache::decode_cell(&cell, &e.key))
            .is_some()
    };
    let corpus_bytes: u64 = corpus
        .manifest()
        .entries
        .iter()
        .filter(|e| !probe_hit(e))
        .map(|e| std::fs::metadata(&e.path).map_or(0, |m| m.len()))
        .sum();
    let _quota = match ctx.quota.try_admit(tenant, corpus_bytes) {
        Ok(guard) => guard,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Quota,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
    };
    let _slot = match ctx.admission.enter() {
        Ok(guard) => guard,
        Err(AdmissionError::Shed { retry_after }) => {
            ctx.obs.add("server.requests_shed", 1);
            return Response::Error {
                code: ErrorCode::Overload,
                message: "admission queue at the shed watermark".to_owned(),
                retry_after_ms: Some(retry_after.as_millis().min(u128::from(u64::MAX)) as u64),
            };
        }
        Err(AdmissionError::ShuttingDown) => {
            return Response::Error {
                code: ErrorCode::Shutdown,
                message: "daemon is draining".to_owned(),
                retry_after_ms: None,
            }
        }
    };
    let _deadline = ctx
        .request_deadline
        .map(|budget| watchdog::arm_local(Instant::now() + budget));
    let outcome = catch(|| {
        if let Some(t) = threshold {
            if let Err(e) = ConflictConfig::with_threshold(t) {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                    retry_after_ms: None,
                };
            }
        }
        ctx.obs.add("server.corpus_runs", 1);
        let mut session = corpus
            .session()
            .with_supervisor(ctx.supervisor)
            .with_observer(ctx.obs.clone());
        if let Some(dir) = ctx.corpus_cache.as_deref() {
            session = session.with_cache(dir);
        }
        if jobs > 0 {
            session = session.with_jobs(jobs as usize);
        }
        if let Some(t) = threshold {
            session = session.with_threshold(t);
        }
        // run_all is infallible: per-entry failures are degraded/failed
        // rows in the summary, exactly the containment this daemon
        // promises per request.
        Response::Ok(session.run_all().to_json().to_pretty_string())
    });
    match outcome {
        Ok(response) => response,
        Err(e @ (ResilienceError::Timeout { .. } | ResilienceError::MemoryBudget { .. })) => {
            Response::Error {
                code: ErrorCode::Analysis,
                message: e.to_string(),
                retry_after_ms: None,
            }
        }
        Err(e) => Response::Error {
            code: ErrorCode::Fault,
            message: format!("request fault contained: {e}"),
            retry_after_ms: None,
        },
    }
}

/// Builds the per-request pipeline (threshold override or defaults).
fn pipeline_for(threshold: Option<u64>) -> Result<AnalysisPipeline, String> {
    let mut pipeline = AnalysisPipeline::default();
    if let Some(t) = threshold {
        pipeline.conflict = ConflictConfig::with_threshold(t).map_err(|e| e.to_string())?;
    }
    Ok(pipeline)
}

/// Materialises an uploaded trace payload (BWSS2 stream or BWSS3
/// columnar file) into a [`Trace`]. Uploads decode strictly: a tenant's
/// damaged payload is a typed error, not a silent partial result.
fn parse_trace(bytes: &[u8]) -> Result<Trace, String> {
    if bwsa_trace::columnar::is_columnar(bytes) {
        let (trace, _) =
            bwsa_trace::columnar::read_columnar(bytes, bwsa_trace::stream::RecoveryPolicy::Strict)
                .map_err(|e| format!("bad trace payload: {e}"))?;
        return Ok(trace);
    }
    let mut reader = StreamReader::new(bytes).map_err(|e| format!("bad trace payload: {e}"))?;
    let mut trace = Trace::new(reader.name().to_owned());
    for item in reader.by_ref() {
        let record = item.map_err(|e| format!("bad trace payload: {e}"))?;
        trace
            .push(record)
            .map_err(|e| format!("bad trace payload: {e}"))?;
    }
    if let Some(total) = reader.total_instructions() {
        trace.meta_mut().total_instructions = total;
    }
    Ok(trace)
}

/// The JSON body for an allocate response.
fn allocation_json(allocation: &bwsa_core::Allocation) -> Json {
    let occupancy = allocation.occupancy();
    Json::object([
        ("table_size", Json::UInt(allocation.table_size() as u64)),
        ("conflict_mass", Json::UInt(allocation.conflict_mass)),
        (
            "conflicting_pairs",
            Json::UInt(allocation.conflicting_pairs as u64),
        ),
        (
            "occupancy",
            Json::object([
                ("used_entries", Json::UInt(occupancy.used_entries as u64)),
                ("max_per_entry", Json::UInt(occupancy.max_per_entry as u64)),
                (
                    "mean_per_used_entry",
                    Json::Float(occupancy.mean_per_used_entry),
                ),
            ]),
        ),
    ])
}

/// The JSON body for a status response: live metrics plus quota and
/// admission occupancy.
fn status_json(ctx: &Arc<Ctx>) -> Json {
    let (active, waiting) = ctx.admission.occupancy();
    let (in_flight_requests, in_flight_bytes) = ctx.quota.in_flight();
    let tenants = ctx
        .quota
        .tenant_snapshot()
        .into_iter()
        .map(|(name, requests, bytes)| {
            (
                name,
                Json::object([
                    ("requests", Json::UInt(u64::from(requests))),
                    ("bytes", Json::UInt(bytes)),
                ]),
            )
        })
        .collect();
    Json::object([
        (
            "server",
            Json::object([
                ("draining", Json::Bool(ctx.shutdown.requested())),
                ("active", Json::UInt(u64::from(active))),
                ("waiting", Json::UInt(u64::from(waiting))),
                ("admitted_total", Json::UInt(ctx.admission.admitted_total())),
                ("shed_total", Json::UInt(ctx.admission.shed_total())),
            ]),
        ),
        (
            "quota",
            Json::object([
                ("in_flight_requests", Json::UInt(in_flight_requests)),
                ("in_flight_bytes", Json::UInt(in_flight_bytes)),
                ("tenants", Json::Object(tenants)),
            ]),
        ),
        (
            "metrics",
            ctx.obs.snapshot().map_or(Json::Null, |m| m.to_json()),
        ),
    ])
}
