//! Request/response vocabulary layered on [`crate::frame`].
//!
//! A [`Frame`]'s `kind` byte picks the message type; this module encodes
//! and decodes the kind-specific bodies. Decoding is total: every
//! malformed body becomes a typed [`ProtoError`], which the server turns
//! into an [`ErrorCode::Malformed`] response on that request ID.

use crate::frame::Frame;
use std::fmt;

/// Wire discriminants for [`Frame::kind`].
pub mod kind {
    /// Liveness probe; body empty.
    pub const REQ_PING: u8 = 1;
    /// Run the analysis pipeline over an uploaded BWSS2 trace.
    pub const REQ_ANALYZE: u8 = 2;
    /// Analyze, then allocate a predictor table over the result.
    pub const REQ_ALLOCATE: u8 = 3;
    /// Live metrics + quota/admission snapshot; body empty.
    pub const REQ_STATUS: u8 = 4;
    /// Begin graceful drain; body empty.
    pub const REQ_SHUTDOWN: u8 = 5;
    /// Analyze and answer with the versioned RunReport document.
    pub const REQ_REPORT: u8 = 6;
    /// Windowed analysis subscription: stream per-window summaries as
    /// they flush, then the whole-trace result.
    pub const REQ_SUBSCRIBE: u8 = 7;
    /// Batch-analyze a server-local corpus manifest into a fleet
    /// summary.
    pub const REQ_CORPUS: u8 = 8;
    /// Success response; body is a JSON document.
    pub const RESP_OK: u8 = 0x80;
    /// Failure response; body is code + retry-after + message.
    pub const RESP_ERROR: u8 = 0x81;
    /// One window summary of a subscription; body is a JSON document.
    /// Zero or more of these precede the terminal `RESP_OK`/`RESP_ERROR`.
    pub const RESP_WINDOW: u8 = 0x82;
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Analyze an uploaded BWSS2 trace.
    Analyze {
        /// Bias threshold in percent (`None` = pipeline default).
        threshold: Option<u64>,
        /// BWSS2 stream bytes.
        trace: Vec<u8>,
    },
    /// Analyze and allocate a predictor table.
    Allocate {
        /// Bias threshold in percent (`None` = pipeline default).
        threshold: Option<u64>,
        /// Predictor table size in entries.
        table: u64,
        /// Allocate only classified (biased) branches when `true`.
        classified: bool,
        /// BWSS2 stream bytes.
        trace: Vec<u8>,
    },
    /// Analyze and answer with the versioned RunReport (stage timings,
    /// counters, resilience record) instead of the result summary.
    Report {
        /// Bias threshold in percent (`None` = pipeline default).
        threshold: Option<u64>,
        /// BWSS2 stream bytes.
        trace: Vec<u8>,
    },
    /// Windowed analysis of an uploaded BWSS2 trace: the server answers
    /// with one [`Response::Window`] frame per flushed window, then the
    /// terminal [`Response::Ok`] carrying the whole-trace summary (the
    /// same document `Analyze` would return for this trace).
    Subscribe {
        /// Bias threshold in percent (`None` = pipeline default).
        threshold: Option<u64>,
        /// Window reset interval (dynamic branches or instructions).
        window: u64,
        /// Count `window` in instructions instead of dynamic branches.
        instructions: bool,
        /// BWSS2 stream bytes.
        trace: Vec<u8>,
    },
    /// Batch-analyze every trace named by a corpus manifest on the
    /// *server's* filesystem (manifests travel as paths, not uploads:
    /// the traces they name are already server-local) and answer with
    /// the versioned fleet summary document.
    Corpus {
        /// Conflict threshold override for every entry (`None` =
        /// per-entry manifest values).
        threshold: Option<u64>,
        /// Worker threads to fan entries across (0 = serial).
        jobs: u64,
        /// Server-local manifest path (TOML or JSON).
        manifest: String,
    },
    /// Live metrics and per-tenant counters.
    Status,
    /// Graceful drain request.
    Shutdown,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the payload is a JSON document.
    Ok(String),
    /// One window summary of a subscription (JSON). Never terminal: the
    /// server always follows with more windows, an `Ok`, or an `Error`.
    Window(String),
    /// Typed failure on this request.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// When the server suggests retrying (overload shed), in ms.
        retry_after_ms: Option<u64>,
    },
}

/// Failure classes a server can attach to an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request body could not be decoded.
    Malformed = 1,
    /// The tenant's quota (concurrency or bytes) is exhausted.
    Quota = 2,
    /// The admission queue is past its shed watermark.
    Overload = 3,
    /// The analysis itself failed (bad trace, resilience exhausted).
    Analysis = 4,
    /// An injected or unexpected fault was contained at the boundary.
    Fault = 5,
    /// The daemon is draining and not accepting new work.
    Shutdown = 6,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Quota,
            3 => ErrorCode::Overload,
            4 => ErrorCode::Analysis,
            5 => ErrorCode::Fault,
            6 => ErrorCode::Shutdown,
            _ => return None,
        })
    }

    /// Stable lower-case label (used in JSON and log lines).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Quota => "quota",
            ErrorCode::Overload => "overload",
            ErrorCode::Analysis => "analysis",
            ErrorCode::Fault => "fault",
            ErrorCode::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a frame body failed to decode into a [`Request`] or [`Response`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The frame kind byte names no known message.
    UnknownKind(u8),
    /// The body ended before a fixed-width field.
    Short {
        /// Which message kind was being decoded.
        kind: u8,
    },
    /// A textual field was not valid UTF-8.
    BadUtf8,
    /// A response carried an unknown error code.
    BadErrorCode(u8),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtoError::Short { kind } => write!(f, "body too short for kind {kind:#04x}"),
            ProtoError::BadUtf8 => f.write_str("text field is not valid UTF-8"),
            ProtoError::BadErrorCode(b) => write!(f, "unknown error code {b}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Sentinel for "no retry-after hint" in the error body.
const NO_RETRY: u64 = u64::MAX;

impl Request {
    /// The frame kind this request travels under.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => kind::REQ_PING,
            Request::Analyze { .. } => kind::REQ_ANALYZE,
            Request::Allocate { .. } => kind::REQ_ALLOCATE,
            Request::Report { .. } => kind::REQ_REPORT,
            Request::Subscribe { .. } => kind::REQ_SUBSCRIBE,
            Request::Corpus { .. } => kind::REQ_CORPUS,
            Request::Status => kind::REQ_STATUS,
            Request::Shutdown => kind::REQ_SHUTDOWN,
        }
    }

    /// Packs this request into a frame for `tenant` under `request_id`.
    pub fn into_frame(self, request_id: u64, tenant: &str) -> Frame {
        let body = match &self {
            Request::Ping | Request::Status | Request::Shutdown => Vec::new(),
            Request::Analyze { threshold, trace } | Request::Report { threshold, trace } => {
                let mut b = Vec::with_capacity(8 + trace.len());
                b.extend_from_slice(&threshold.unwrap_or(0).to_le_bytes());
                b.extend_from_slice(trace);
                b
            }
            Request::Allocate {
                threshold,
                table,
                classified,
                trace,
            } => {
                let mut b = Vec::with_capacity(17 + trace.len());
                b.extend_from_slice(&threshold.unwrap_or(0).to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.push(u8::from(*classified));
                b.extend_from_slice(trace);
                b
            }
            Request::Subscribe {
                threshold,
                window,
                instructions,
                trace,
            } => {
                let mut b = Vec::with_capacity(17 + trace.len());
                b.extend_from_slice(&threshold.unwrap_or(0).to_le_bytes());
                b.extend_from_slice(&window.to_le_bytes());
                b.push(u8::from(*instructions));
                b.extend_from_slice(trace);
                b
            }
            Request::Corpus {
                threshold,
                jobs,
                manifest,
            } => {
                let mut b = Vec::with_capacity(16 + manifest.len());
                b.extend_from_slice(&threshold.unwrap_or(0).to_le_bytes());
                b.extend_from_slice(&jobs.to_le_bytes());
                b.extend_from_slice(manifest.as_bytes());
                b
            }
        };
        Frame {
            request_id,
            kind: self.kind(),
            tenant: tenant.to_owned(),
            body,
        }
    }

    /// Decodes a request out of `frame`.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] when the kind is unknown or the body is short.
    pub fn from_frame(frame: &Frame) -> Result<Self, ProtoError> {
        let body = &frame.body;
        match frame.kind {
            kind::REQ_PING => Ok(Request::Ping),
            kind::REQ_STATUS => Ok(Request::Status),
            kind::REQ_SHUTDOWN => Ok(Request::Shutdown),
            kind::REQ_ANALYZE | kind::REQ_REPORT => {
                if body.len() < 8 {
                    return Err(ProtoError::Short { kind: frame.kind });
                }
                let threshold = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                let threshold = (threshold != 0).then_some(threshold);
                let trace = body[8..].to_vec();
                Ok(if frame.kind == kind::REQ_REPORT {
                    Request::Report { threshold, trace }
                } else {
                    Request::Analyze { threshold, trace }
                })
            }
            kind::REQ_ALLOCATE => {
                if body.len() < 17 {
                    return Err(ProtoError::Short { kind: frame.kind });
                }
                let threshold = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                let table = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                Ok(Request::Allocate {
                    threshold: (threshold != 0).then_some(threshold),
                    table,
                    classified: body[16] != 0,
                    trace: body[17..].to_vec(),
                })
            }
            kind::REQ_SUBSCRIBE => {
                if body.len() < 17 {
                    return Err(ProtoError::Short { kind: frame.kind });
                }
                let threshold = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                let window = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                Ok(Request::Subscribe {
                    threshold: (threshold != 0).then_some(threshold),
                    window,
                    instructions: body[16] != 0,
                    trace: body[17..].to_vec(),
                })
            }
            kind::REQ_CORPUS => {
                if body.len() < 16 {
                    return Err(ProtoError::Short { kind: frame.kind });
                }
                let threshold = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                let jobs = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                let manifest = std::str::from_utf8(&body[16..])
                    .map_err(|_| ProtoError::BadUtf8)?
                    .to_owned();
                Ok(Request::Corpus {
                    threshold: (threshold != 0).then_some(threshold),
                    jobs,
                    manifest,
                })
            }
            other => Err(ProtoError::UnknownKind(other)),
        }
    }
}

impl Response {
    /// Packs this response into a frame echoing `request_id` for `tenant`.
    pub fn into_frame(self, request_id: u64, tenant: &str) -> Frame {
        match self {
            Response::Ok(json) => Frame {
                request_id,
                kind: kind::RESP_OK,
                tenant: tenant.to_owned(),
                body: json.into_bytes(),
            },
            Response::Window(json) => Frame {
                request_id,
                kind: kind::RESP_WINDOW,
                tenant: tenant.to_owned(),
                body: json.into_bytes(),
            },
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                let mut body = Vec::with_capacity(9 + message.len());
                body.push(code as u8);
                body.extend_from_slice(&retry_after_ms.unwrap_or(NO_RETRY).to_le_bytes());
                body.extend_from_slice(message.as_bytes());
                Frame {
                    request_id,
                    kind: kind::RESP_ERROR,
                    tenant: tenant.to_owned(),
                    body,
                }
            }
        }
    }

    /// Decodes a response out of `frame`.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] when the kind is not a response or the body is
    /// malformed.
    pub fn from_frame(frame: &Frame) -> Result<Self, ProtoError> {
        match frame.kind {
            kind::RESP_OK => Ok(Response::Ok(
                String::from_utf8(frame.body.clone()).map_err(|_| ProtoError::BadUtf8)?,
            )),
            kind::RESP_WINDOW => Ok(Response::Window(
                String::from_utf8(frame.body.clone()).map_err(|_| ProtoError::BadUtf8)?,
            )),
            kind::RESP_ERROR => {
                let body = &frame.body;
                if body.len() < 9 {
                    return Err(ProtoError::Short { kind: frame.kind });
                }
                let code = ErrorCode::from_u8(body[0]).ok_or(ProtoError::BadErrorCode(body[0]))?;
                let retry = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
                let message = std::str::from_utf8(&body[9..])
                    .map_err(|_| ProtoError::BadUtf8)?
                    .to_owned();
                Ok(Response::Error {
                    code,
                    message,
                    retry_after_ms: (retry != NO_RETRY).then_some(retry),
                })
            }
            other => Err(ProtoError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_frames() {
        let cases = [
            Request::Ping,
            Request::Status,
            Request::Shutdown,
            Request::Analyze {
                threshold: None,
                trace: vec![1, 2, 3],
            },
            Request::Analyze {
                threshold: Some(95),
                trace: Vec::new(),
            },
            Request::Allocate {
                threshold: Some(90),
                table: 512,
                classified: true,
                trace: vec![9; 32],
            },
            Request::Report {
                threshold: Some(85),
                trace: vec![4, 5, 6],
            },
            Request::Report {
                threshold: None,
                trace: Vec::new(),
            },
            Request::Subscribe {
                threshold: Some(80),
                window: 4096,
                instructions: false,
                trace: vec![7; 16],
            },
            Request::Subscribe {
                threshold: None,
                window: 1,
                instructions: true,
                trace: Vec::new(),
            },
            Request::Corpus {
                threshold: Some(50),
                jobs: 4,
                manifest: "/srv/corpus.toml".into(),
            },
            Request::Corpus {
                threshold: None,
                jobs: 0,
                manifest: String::new(),
            },
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let frame = req.clone().into_frame(i as u64, "acme");
            assert_eq!(frame.request_id, i as u64);
            assert_eq!(frame.tenant, "acme");
            assert_eq!(Request::from_frame(&frame).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip_including_retry_hints() {
        for resp in [
            Response::Ok("{\"x\":1}".into()),
            Response::Window("{\"index\":0}".into()),
            Response::Error {
                code: ErrorCode::Overload,
                message: "queue full".into(),
                retry_after_ms: Some(125),
            },
            Response::Error {
                code: ErrorCode::Fault,
                message: "contained panic".into(),
                retry_after_ms: None,
            },
        ] {
            let frame = resp.clone().into_frame(42, "t");
            assert_eq!(Response::from_frame(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_bodies_decode_to_typed_errors() {
        let short = Frame {
            request_id: 1,
            kind: kind::REQ_ANALYZE,
            tenant: String::new(),
            body: vec![0; 4],
        };
        assert!(matches!(
            Request::from_frame(&short),
            Err(ProtoError::Short { .. })
        ));
        let short_subscribe = Frame {
            request_id: 1,
            kind: kind::REQ_SUBSCRIBE,
            tenant: String::new(),
            body: vec![0; 16],
        };
        assert!(matches!(
            Request::from_frame(&short_subscribe),
            Err(ProtoError::Short { .. })
        ));
        let short_corpus = Frame {
            request_id: 1,
            kind: kind::REQ_CORPUS,
            tenant: String::new(),
            body: vec![0; 15],
        };
        assert!(matches!(
            Request::from_frame(&short_corpus),
            Err(ProtoError::Short { .. })
        ));
        let bad_utf8_corpus = Frame {
            request_id: 1,
            kind: kind::REQ_CORPUS,
            tenant: String::new(),
            body: {
                let mut b = vec![0; 16];
                b.extend_from_slice(&[0xff, 0xfe]);
                b
            },
        };
        assert!(matches!(
            Request::from_frame(&bad_utf8_corpus),
            Err(ProtoError::BadUtf8)
        ));
        let unknown = Frame {
            request_id: 1,
            kind: 0x7f,
            tenant: String::new(),
            body: Vec::new(),
        };
        assert!(matches!(
            Request::from_frame(&unknown),
            Err(ProtoError::UnknownKind(0x7f))
        ));
        let bad_code = Frame {
            request_id: 1,
            kind: kind::RESP_ERROR,
            tenant: String::new(),
            body: {
                let mut b = vec![99u8];
                b.extend_from_slice(&0u64.to_le_bytes());
                b
            },
        };
        assert!(matches!(
            Response::from_frame(&bad_code),
            Err(ProtoError::BadErrorCode(99))
        ));
    }
}
