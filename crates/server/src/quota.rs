//! Per-tenant quota accounting.
//!
//! The ledger charges a tenant at admission (one request slot plus the
//! request's payload bytes) and releases the exact same charge when the
//! RAII [`QuotaGuard`] drops — on success, on a typed error, on a
//! contained panic, anywhere. That Drop-based symmetry is what the
//! property test leans on: after any interleaving of completed, failed,
//! and shed requests, in-flight totals return to zero.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Limits applied to every tenant (uniform policy; the ledger keys usage
/// by tenant name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Maximum concurrently admitted requests per tenant.
    pub max_concurrent: u32,
    /// Maximum total in-flight request payload bytes per tenant.
    pub max_in_flight_bytes: u64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_concurrent: 4,
            max_in_flight_bytes: 256 << 20,
        }
    }
}

/// Why a tenant's admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuotaError {
    /// The tenant already has `max_concurrent` requests in flight.
    Concurrency {
        /// The configured per-tenant concurrency cap.
        limit: u32,
    },
    /// Admitting this payload would exceed the tenant's byte budget.
    Bytes {
        /// Bytes the tenant already has in flight.
        in_flight: u64,
        /// Bytes this request would add.
        requested: u64,
        /// The configured per-tenant byte cap.
        limit: u64,
    },
    /// A single request larger than the whole budget can never be
    /// admitted; refusing it up front beats letting it starve forever.
    Oversize {
        /// Bytes this request carries.
        requested: u64,
        /// The configured per-tenant byte cap.
        limit: u64,
    },
}

impl fmt::Display for QuotaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaError::Concurrency { limit } => {
                write!(f, "tenant concurrency quota exhausted (limit {limit})")
            }
            QuotaError::Bytes {
                in_flight,
                requested,
                limit,
            } => write!(
                f,
                "tenant byte quota exhausted ({in_flight} in flight + {requested} requested > {limit})"
            ),
            QuotaError::Oversize { requested, limit } => write!(
                f,
                "request of {requested} bytes exceeds the whole tenant budget of {limit}"
            ),
        }
    }
}

impl std::error::Error for QuotaError {}

#[derive(Debug, Default, Clone, Copy)]
struct Usage {
    requests: u32,
    bytes: u64,
}

/// Thread-safe per-tenant usage ledger. See the module docs.
#[derive(Debug)]
pub struct QuotaLedger {
    quotas: TenantQuotas,
    usage: Mutex<BTreeMap<String, Usage>>,
}

impl QuotaLedger {
    /// A ledger enforcing `quotas` for every tenant.
    pub fn new(quotas: TenantQuotas) -> Arc<Self> {
        Arc::new(QuotaLedger {
            quotas,
            usage: Mutex::new(BTreeMap::new()),
        })
    }

    /// The uniform per-tenant limits this ledger enforces.
    pub fn quotas(&self) -> TenantQuotas {
        self.quotas
    }

    /// Tries to charge `tenant` one request slot and `bytes` payload
    /// bytes. On success the returned guard holds the charge until drop.
    ///
    /// # Errors
    ///
    /// A typed [`QuotaError`] naming the exhausted dimension; the ledger
    /// is left unchanged.
    pub fn try_admit(self: &Arc<Self>, tenant: &str, bytes: u64) -> Result<QuotaGuard, QuotaError> {
        if bytes > self.quotas.max_in_flight_bytes {
            return Err(QuotaError::Oversize {
                requested: bytes,
                limit: self.quotas.max_in_flight_bytes,
            });
        }
        let mut usage = self.usage.lock().expect("quota ledger poisoned");
        let entry = usage.entry(tenant.to_owned()).or_default();
        if entry.requests >= self.quotas.max_concurrent {
            return Err(QuotaError::Concurrency {
                limit: self.quotas.max_concurrent,
            });
        }
        if entry.bytes.saturating_add(bytes) > self.quotas.max_in_flight_bytes {
            return Err(QuotaError::Bytes {
                in_flight: entry.bytes,
                requested: bytes,
                limit: self.quotas.max_in_flight_bytes,
            });
        }
        entry.requests += 1;
        entry.bytes += bytes;
        Ok(QuotaGuard {
            ledger: Arc::clone(self),
            tenant: tenant.to_owned(),
            bytes,
        })
    }

    /// Total `(requests, bytes)` currently in flight across all tenants.
    pub fn in_flight(&self) -> (u64, u64) {
        let usage = self.usage.lock().expect("quota ledger poisoned");
        usage
            .values()
            .fold((0, 0), |(r, b), u| (r + u64::from(u.requests), b + u.bytes))
    }

    /// Per-tenant `(requests, bytes)` snapshot, sorted by tenant name.
    pub fn tenant_snapshot(&self) -> Vec<(String, u32, u64)> {
        let usage = self.usage.lock().expect("quota ledger poisoned");
        usage
            .iter()
            .map(|(t, u)| (t.clone(), u.requests, u.bytes))
            .collect()
    }

    fn release(&self, tenant: &str, bytes: u64) {
        let mut usage = self.usage.lock().expect("quota ledger poisoned");
        if let Some(entry) = usage.get_mut(tenant) {
            entry.requests = entry.requests.saturating_sub(1);
            entry.bytes = entry.bytes.saturating_sub(bytes);
            if entry.requests == 0 && entry.bytes == 0 {
                usage.remove(tenant);
            }
        }
    }
}

/// RAII receipt for one admitted request; dropping it releases exactly
/// the charge [`QuotaLedger::try_admit`] took.
#[derive(Debug)]
pub struct QuotaGuard {
    ledger: Arc<QuotaLedger>,
    tenant: String,
    bytes: u64,
}

impl Drop for QuotaGuard {
    fn drop(&mut self) {
        self.ledger.release(&self.tenant, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_charges_and_drop_releases() {
        let ledger = QuotaLedger::new(TenantQuotas {
            max_concurrent: 2,
            max_in_flight_bytes: 100,
        });
        let a = ledger.try_admit("t", 40).unwrap();
        let b = ledger.try_admit("t", 40).unwrap();
        assert_eq!(ledger.in_flight(), (2, 80));
        assert!(matches!(
            ledger.try_admit("t", 10),
            Err(QuotaError::Concurrency { limit: 2 })
        ));
        drop(a);
        assert!(matches!(
            ledger.try_admit("t", 70),
            Err(QuotaError::Bytes { .. })
        ));
        let c = ledger.try_admit("t", 10).unwrap();
        drop(b);
        drop(c);
        assert_eq!(ledger.in_flight(), (0, 0));
        assert!(ledger.tenant_snapshot().is_empty());
    }

    #[test]
    fn tenants_are_isolated_from_each_other() {
        let ledger = QuotaLedger::new(TenantQuotas {
            max_concurrent: 1,
            max_in_flight_bytes: 50,
        });
        let _a = ledger.try_admit("alice", 50).unwrap();
        // Alice is saturated on both axes; Bob is untouched.
        assert!(ledger.try_admit("alice", 1).is_err());
        let _b = ledger.try_admit("bob", 50).unwrap();
        let snap = ledger.tenant_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("alice".into(), 1, 50));
        assert_eq!(snap[1], ("bob".into(), 1, 50));
    }

    #[test]
    fn impossible_requests_are_refused_up_front() {
        let ledger = QuotaLedger::new(TenantQuotas {
            max_concurrent: 8,
            max_in_flight_bytes: 10,
        });
        assert!(matches!(
            ledger.try_admit("t", 11),
            Err(QuotaError::Oversize {
                requested: 11,
                limit: 10
            })
        ));
        assert_eq!(ledger.in_flight(), (0, 0));
    }
}
