//! Blocking client for the BWSF protocol — used by `bwsa client`, the
//! integration/chaos tests, and the bench harness.

use crate::frame::{self, Frame, FrameError, DEFAULT_MAX_FRAME_BYTES};
use crate::proto::{ProtoError, Request, Response};
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side failures (server-side failures arrive as
/// [`Response::Error`], which is a *successful* round trip).
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Connecting to the daemon socket failed.
    Connect(io::Error),
    /// A frame could not be written or read.
    Frame(FrameError),
    /// The response frame decoded to no known message.
    Proto(ProtoError),
    /// The response echoed a different request ID than we sent.
    IdMismatch {
        /// The ID this client sent.
        sent: u64,
        /// The ID the response carried.
        received: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect: {e}"),
            ClientError::Frame(e) => write!(f, "protocol frame failed: {e}"),
            ClientError::Proto(e) => write!(f, "bad response: {e}"),
            ClientError::IdMismatch { sent, received } => {
                write!(f, "response id {received} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One connection to a daemon, tagged with a tenant name. Requests are
/// synchronous: send one frame, wait for its echo-ID'd response.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
    tenant: String,
    next_id: u64,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to the daemon at `socket` as `tenant`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the socket is absent or refusing.
    pub fn connect(socket: impl AsRef<Path>, tenant: &str) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(socket.as_ref()).map_err(ClientError::Connect)?;
        Ok(Client {
            stream,
            tenant: tenant.to_owned(),
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends `request` and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport-level [`ClientError`] only; a typed server-side error is
    /// returned as `Ok(Response::Error { .. })`.
    pub fn request(&mut self, request: Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.request_raw(request.into_frame(id, &self.tenant))
    }

    /// Sends an arbitrary pre-built frame and decodes the response —
    /// the escape hatch the protocol tests use to exercise unknown kinds
    /// and malformed bodies.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_raw(&mut self, out: Frame) -> Result<Response, ClientError> {
        let id = out.request_id;
        frame::write_frame(&mut self.stream, &out)?;
        let reply = frame::read_frame(&mut self.stream, self.max_frame_bytes)?;
        if reply.request_id != id {
            return Err(ClientError::IdMismatch {
                sent: id,
                received: reply.request_id,
            });
        }
        Ok(Response::from_frame(&reply)?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Ping)
    }

    /// Uploads BWSS2 bytes for analysis.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn analyze(
        &mut self,
        trace: Vec<u8>,
        threshold: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.request(Request::Analyze { threshold, trace })
    }

    /// Uploads BWSS2 bytes for analysis plus BHT allocation.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn allocate(
        &mut self,
        trace: Vec<u8>,
        threshold: Option<u64>,
        table: u64,
        classified: bool,
    ) -> Result<Response, ClientError> {
        self.request(Request::Allocate {
            threshold,
            table,
            classified,
            trace,
        })
    }

    /// Uploads BWSS2 bytes for analysis and asks for the versioned
    /// RunReport of that run instead of the result summary.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn report(
        &mut self,
        trace: Vec<u8>,
        threshold: Option<u64>,
    ) -> Result<Response, ClientError> {
        self.request(Request::Report { threshold, trace })
    }

    /// Uploads BWSS2 bytes for windowed analysis, invoking `on_window`
    /// with each window-summary JSON document as it arrives, and returns
    /// the terminal response — for a healthy subscription, `Response::Ok`
    /// holding the same whole-trace summary [`Client::analyze`] would
    /// answer for this trace.
    ///
    /// `window` is the reset interval, counted in instructions when
    /// `instructions` is `true`, dynamic branches otherwise.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; a typed server-side error (possibly after
    /// some windows were already delivered) is `Ok(Response::Error)`.
    pub fn subscribe(
        &mut self,
        trace: Vec<u8>,
        threshold: Option<u64>,
        window: u64,
        instructions: bool,
        mut on_window: impl FnMut(&str),
    ) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let out = Request::Subscribe {
            threshold,
            window,
            instructions,
            trace,
        }
        .into_frame(id, &self.tenant);
        frame::write_frame(&mut self.stream, &out)?;
        loop {
            let reply = frame::read_frame(&mut self.stream, self.max_frame_bytes)?;
            if reply.request_id != id {
                return Err(ClientError::IdMismatch {
                    sent: id,
                    received: reply.request_id,
                });
            }
            match Response::from_frame(&reply)? {
                Response::Window(json) => on_window(&json),
                terminal => return Ok(terminal),
            }
        }
    }

    /// Asks the daemon to batch-analyze a corpus manifest on *its*
    /// filesystem (the path is server-local; nothing is uploaded) and
    /// answer with the versioned fleet summary document. `jobs` is the
    /// fan-out width on the server, 0 for serial.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn corpus(
        &mut self,
        manifest: &str,
        threshold: Option<u64>,
        jobs: u64,
    ) -> Result<Response, ClientError> {
        self.request(Request::Corpus {
            threshold,
            jobs,
            manifest: manifest.to_owned(),
        })
    }

    /// Live metrics and per-tenant counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Status)
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Shutdown)
    }
}
