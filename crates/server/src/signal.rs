//! Minimal SIGINT/SIGTERM hook for graceful drain.
//!
//! The standard library exposes no signal API, and the workspace builds
//! without external crates, so this module carries the one `unsafe`
//! block in the crate: a direct FFI call to libc's `signal(2)` (libc is
//! linked by every Rust binary already). The handler is as
//! async-signal-safe as they come — it performs a single relaxed atomic
//! store and returns; the server's accept loop polls
//! [`ShutdownFlag::requested`] and runs the actual drain on a normal
//! thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The process-wide "a drain signal arrived" bit. Process-global because
/// signal dispositions are process-global.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::Relaxed);
}

#[allow(unsafe_code)]
mod ffi {
    unsafe extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs `handler` for `signum` via libc `signal(2)`.
    pub fn install(signum: i32, handler: extern "C" fn(i32)) {
        // SAFETY: `signal` is the C standard library's own entry point;
        // the handler only performs an atomic store (async-signal-safe).
        unsafe {
            signal(signum, handler as usize);
        }
    }
}

/// A cheap cloneable view of "has shutdown been requested?".
///
/// Combines the process signal bit with a per-server software bit so a
/// `shutdown` protocol request and SIGTERM share one drain path.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    soft: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh flag (unset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown in software (e.g. the `shutdown` request).
    pub fn request(&self) {
        self.soft.store(true, Ordering::Relaxed);
    }

    /// `true` once either a signal or a software request arrived.
    pub fn requested(&self) -> bool {
        self.soft.load(Ordering::Relaxed) || SIGNALLED.load(Ordering::Relaxed)
    }
}

/// Routes SIGINT (ctrl-c) and SIGTERM into the shared signal bit.
/// Idempotent; call once from `bwsa serve`.
pub fn install_handlers() {
    ffi::install(SIGINT, on_signal);
    ffi::install(SIGTERM, on_signal);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_requests_flip_only_their_flag() {
        let a = ShutdownFlag::new();
        let b = ShutdownFlag::new();
        assert!(!a.requested());
        a.request();
        assert!(a.requested());
        assert!(a.clone().requested(), "clones share the bit");
        assert!(!b.requested(), "flags are independent");
    }

    // install_handlers + raising a real signal is exercised by the CLI
    // smoke test in scripts/check.sh (SIGTERM → drain → exit 0); raising
    // signals inside the test harness would race other tests in this
    // process.
}
