//! The BWSF wire format: length-prefixed, CRC-checked frames with
//! request IDs and tenant attribution.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! magic   4  b"BWSF"
//! length  4  u32 LE, payload byte count (bounded by the receiver)
//! payload    request_id u64 LE
//!            kind       u8          (see [`crate::proto`])
//!            tenant_len u16 LE
//!            tenant     UTF-8 bytes
//!            body       the rest
//! crc32   4  u32 LE over the payload (same polynomial as BWSS2 chunks)
//! ```
//!
//! The length prefix lets a reader pre-check the frame against its
//! configured ceiling *before* allocating, so an adversarial or corrupt
//! length cannot balloon memory; the trailing CRC rejects torn or
//! bit-flipped payloads with a typed [`FrameError`] instead of letting
//! garbage reach the dispatcher.

use bwsa_trace::codec::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte frame magic.
pub const FRAME_MAGIC: [u8; 4] = *b"BWSF";

/// Default ceiling on one frame's payload (64 MiB) — generous for a
/// trace upload, small enough that a corrupt length cannot OOM the
/// daemon.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Fixed overhead around the payload: magic + length + trailing CRC.
const HEADER_BYTES: usize = 4 + 4;
/// Minimum payload: request id + kind + tenant length.
const MIN_PAYLOAD_BYTES: usize = 8 + 1 + 2;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-chosen request correlation ID; responses echo it.
    pub request_id: u64,
    /// Message kind discriminant (see [`crate::proto::kind`]).
    pub kind: u8,
    /// The tenant this frame belongs to (empty = anonymous).
    pub tenant: String,
    /// Kind-specific body bytes.
    pub body: Vec<u8>,
}

impl Frame {
    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + MIN_PAYLOAD_BYTES + self.tenant.len() + self.body.len() + 4
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The stream did not start with the BWSF magic.
    BadMagic([u8; 4]),
    /// The declared payload length exceeds the receiver's ceiling.
    Oversize {
        /// Declared payload length.
        declared: usize,
        /// The receiver's configured ceiling.
        limit: usize,
    },
    /// The declared payload length is too small to hold a header.
    Undersize(usize),
    /// The payload CRC did not match.
    BadChecksum {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC carried by the frame.
        stored: u32,
    },
    /// The tenant field was not valid UTF-8.
    BadTenant,
    /// The tenant length field pointed past the payload end.
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?} (expected BWSF)"),
            FrameError::Oversize { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            FrameError::Undersize(n) => write!(f, "frame payload of {n} bytes is too short"),
            FrameError::BadChecksum { computed, stored } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {computed:08x}, stored {stored:08x}"
                )
            }
            FrameError::BadTenant => write!(f, "frame tenant is not valid UTF-8"),
            FrameError::Truncated => write!(f, "frame payload truncated mid-field"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a read timeout (the socket's read deadline
    /// expired with no data) rather than a real failure — the server's
    /// idle loop treats these as "check the drain flag and keep
    /// waiting".
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }

    /// Whether the peer hung up cleanly before any frame byte arrived.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

/// Serialises `frame` onto `w` in BWSF wire format.
///
/// # Errors
///
/// [`FrameError::Io`] when the sink fails, [`FrameError::Oversize`] when
/// the frame would exceed `u32` length encoding.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    let payload_len = MIN_PAYLOAD_BYTES + frame.tenant.len() + frame.body.len();
    if payload_len > u32::MAX as usize {
        return Err(FrameError::Oversize {
            declared: payload_len,
            limit: u32::MAX as usize,
        });
    }
    if frame.tenant.len() > u16::MAX as usize {
        return Err(FrameError::BadTenant);
    }
    let mut payload = Vec::with_capacity(payload_len);
    payload.extend_from_slice(&frame.request_id.to_le_bytes());
    payload.push(frame.kind);
    payload.extend_from_slice(&(frame.tenant.len() as u16).to_le_bytes());
    payload.extend_from_slice(frame.tenant.as_bytes());
    payload.extend_from_slice(&frame.body);
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, rejecting payloads above `max_payload`.
///
/// # Errors
///
/// Every decode failure is a typed [`FrameError`]; a read timeout before
/// the first magic byte surfaces as [`FrameError::Io`] with
/// `is_timeout() == true` so idle-polling readers can distinguish "no
/// traffic yet" from "broken peer".
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, FrameError> {
    let mut magic = [0u8; 4];
    read_exact_eof(r, &mut magic)?;
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut len_bytes = [0u8; 4];
    read_exact_eof(r, &mut len_bytes)?;
    let declared = u32::from_le_bytes(len_bytes) as usize;
    if declared > max_payload {
        return Err(FrameError::Oversize {
            declared,
            limit: max_payload,
        });
    }
    if declared < MIN_PAYLOAD_BYTES {
        return Err(FrameError::Undersize(declared));
    }
    let mut payload = vec![0u8; declared];
    read_exact_eof(r, &mut payload)?;
    let mut crc_bytes = [0u8; 4];
    read_exact_eof(r, &mut crc_bytes)?;
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(FrameError::BadChecksum { computed, stored });
    }
    let request_id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let kind = payload[8];
    let tenant_len = u16::from_le_bytes(payload[9..11].try_into().expect("2 bytes")) as usize;
    let tenant_end = MIN_PAYLOAD_BYTES + tenant_len;
    if tenant_end > payload.len() {
        return Err(FrameError::Truncated);
    }
    let tenant = std::str::from_utf8(&payload[MIN_PAYLOAD_BYTES..tenant_end])
        .map_err(|_| FrameError::BadTenant)?
        .to_owned();
    let body = payload[tenant_end..].to_vec();
    Ok(Frame {
        request_id,
        kind,
        tenant,
        body,
    })
}

/// `read_exact` that keeps retrying across read-timeout boundaries *once
/// the frame has started*, so a frame straddling two timeout windows is
/// not misread as truncated. A timeout before the first byte of `buf`
/// propagates (the caller's idle loop handles it).
fn read_exact_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if filled > 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted) =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, frame).unwrap();
        read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES).unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        for frame in [
            Frame {
                request_id: 0,
                kind: 1,
                tenant: String::new(),
                body: Vec::new(),
            },
            Frame {
                request_id: u64::MAX,
                kind: 0x81,
                tenant: "tenant-α".into(),
                body: vec![0, 1, 2, 255, 254],
            },
        ] {
            assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn corruption_is_a_typed_checksum_error() {
        let frame = Frame {
            request_id: 7,
            kind: 2,
            tenant: "t".into(),
            body: vec![9; 64],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let flip = wire.len() / 2;
        wire[flip] ^= 0x40;
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(FrameError::BadChecksum { .. }) => {}
            other => panic!("expected a checksum error, got {other:?}"),
        }
    }

    #[test]
    fn oversize_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut wire.as_slice(), 1024) {
            Err(FrameError::Oversize { declared, limit }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let mut wire = b"NOPE".to_vec();
        wire.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameError::BadMagic(_))
        ));

        let frame = Frame {
            request_id: 1,
            kind: 1,
            tenant: "abc".into(),
            body: vec![1, 2, 3],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        wire.truncate(wire.len() - 5);
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert!(err.is_disconnect(), "mid-frame EOF: {err}");

        // A tenant length pointing past the payload is Truncated, not a
        // slice panic.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(1);
        payload.extend_from_slice(&500u16.to_le_bytes());
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameError::Truncated)
        ));
    }
}
