//! Bounded admission in front of the worker slots — the overload ladder.
//!
//! Every request passes through [`Admission::enter`]:
//!
//! 1. A worker slot is free → admitted immediately.
//! 2. Slots are busy but the wait queue is below the **shed watermark**
//!    → the caller blocks on a condvar (backpressure: overload becomes
//!    latency first).
//! 3. The queue has reached the watermark → the caller is rejected *now*
//!    with a deterministic jittered `retry-after` hint (decorrelated
//!    jitter from [`bwsa_resilience::Backoff::delay_jittered`]), so the
//!    queue never grows without bound and retries from shed clients
//!    spread out instead of stampeding back in lockstep.
//! 4. The daemon is draining → typed [`AdmissionError::ShuttingDown`].
//!
//! Admission slots are RAII: the [`AdmissionGuard`] frees its slot and
//! wakes one waiter on drop, on every exit path.

use bwsa_resilience::{Backoff, DetRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Sizing for the admission stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Concurrent requests executing (worker slots).
    pub workers: u32,
    /// Callers allowed to wait once the slots are full; at this depth
    /// new arrivals are shed instead of queued.
    pub shed_watermark: u32,
    /// Seed for the deterministic retry-after jitter.
    pub jitter_seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            workers: 4,
            shed_watermark: 16,
            jitter_seed: 0x62_77_73_61, // "bwsa"
        }
    }
}

/// Why admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The wait queue hit the shed watermark; retry after the hint.
    Shed {
        /// Suggested client-side wait before retrying.
        retry_after: Duration,
    },
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Shed { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            AdmissionError::ShuttingDown => f.write_str("daemon is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct State {
    active: u32,
    waiting: u32,
    draining: bool,
    /// Drives the retry-after hints: under sustained shedding the hints
    /// stretch (decorrelated jitter); [`Backoff::reset`] snaps them back
    /// once a request is admitted again.
    backoff: Backoff,
    rng: DetRng,
}

/// The admission stage. Cheap to share via `Arc`.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    state: Mutex<State>,
    freed: Condvar,
    shed_total: AtomicU64,
    admitted_total: AtomicU64,
}

impl Admission {
    /// Base retry-after under light shedding; jitter grows it toward the
    /// cap while shedding persists.
    const RETRY_BASE: Duration = Duration::from_millis(25);
    /// Ceiling for the retry-after hint.
    const RETRY_CAP: Duration = Duration::from_millis(2_000);

    /// An admission stage sized by `config`.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(Admission {
            config,
            state: Mutex::new(State {
                active: 0,
                waiting: 0,
                draining: false,
                backoff: Backoff::with_cap(Self::RETRY_BASE, Self::RETRY_CAP),
                rng: DetRng::new(config.jitter_seed),
            }),
            freed: Condvar::new(),
            shed_total: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
        })
    }

    /// The configuration this stage was built with.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Blocks until a worker slot is free, or fails typed per the
    /// overload ladder (see module docs).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Shed`] past the watermark,
    /// [`AdmissionError::ShuttingDown`] while draining.
    pub fn enter(self: &Arc<Self>) -> Result<AdmissionGuard, AdmissionError> {
        let mut state = self.state.lock().expect("admission state poisoned");
        loop {
            if state.draining {
                return Err(AdmissionError::ShuttingDown);
            }
            if state.active < self.config.workers {
                state.active += 1;
                state.backoff.reset();
                self.admitted_total.fetch_add(1, Ordering::Relaxed);
                return Ok(AdmissionGuard {
                    admission: Arc::clone(self),
                });
            }
            if state.waiting >= self.config.shed_watermark {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
                let State {
                    ref mut backoff,
                    ref mut rng,
                    ..
                } = *state;
                let retry_after = backoff.delay_jittered(rng);
                return Err(AdmissionError::Shed { retry_after });
            }
            state.waiting += 1;
            state = self.freed.wait(state).expect("admission state poisoned");
            state.waiting -= 1;
        }
    }

    /// Flips the drain flag: current waiters and future callers get
    /// [`AdmissionError::ShuttingDown`]; in-flight guards finish.
    pub fn begin_shutdown(&self) {
        let mut state = self.state.lock().expect("admission state poisoned");
        state.draining = true;
        self.freed.notify_all();
    }

    /// Blocks until every admitted request has released its slot.
    /// Call after [`Admission::begin_shutdown`].
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("admission state poisoned");
        while state.active > 0 {
            state = self.freed.wait(state).expect("admission state poisoned");
        }
    }

    /// Requests shed at the watermark so far.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Requests admitted through a worker slot so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::Relaxed)
    }

    /// Current `(active, waiting)` occupancy.
    pub fn occupancy(&self) -> (u32, u32) {
        let state = self.state.lock().expect("admission state poisoned");
        (state.active, state.waiting)
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("admission state poisoned");
        state.active = state.active.saturating_sub(1);
        // Wake everyone: one waiter will take the slot, the rest re-queue;
        // drain() also listens on this condvar for active reaching zero.
        self.freed.notify_all();
    }
}

/// RAII worker slot; dropping it frees the slot and wakes a waiter.
#[derive(Debug)]
pub struct AdmissionGuard {
    admission: Arc<Admission>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn config(workers: u32, watermark: u32) -> AdmissionConfig {
        AdmissionConfig {
            workers,
            shed_watermark: watermark,
            jitter_seed: 7,
        }
    }

    #[test]
    fn slots_admit_then_shed_at_the_watermark() {
        let admission = Admission::new(config(1, 0));
        let guard = admission.enter().unwrap();
        // Watermark 0: with the slot busy, arrivals shed immediately.
        match admission.enter() {
            Err(AdmissionError::Shed { retry_after }) => {
                assert!(retry_after >= Admission::RETRY_BASE);
                assert!(retry_after <= Admission::RETRY_CAP);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(admission.shed_total(), 1);
        drop(guard);
        let _again = admission.enter().unwrap();
        assert_eq!(admission.admitted_total(), 2);
    }

    #[test]
    fn waiters_get_the_slot_when_it_frees() {
        let admission = Admission::new(config(1, 4));
        let guard = admission.enter().unwrap();
        let handle = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let _slot = admission.enter().unwrap();
            })
        };
        // Give the waiter time to block, then free the slot.
        while admission.occupancy().1 == 0 {
            thread::yield_now();
        }
        drop(guard);
        handle.join().unwrap();
        assert_eq!(admission.occupancy(), (0, 0));
        assert_eq!(admission.shed_total(), 0);
    }

    #[test]
    fn retry_hints_stretch_under_sustained_shedding() {
        let admission = Admission::new(config(1, 0));
        let _slot = admission.enter().unwrap();
        let mut hints = Vec::new();
        for _ in 0..6 {
            match admission.enter() {
                Err(AdmissionError::Shed { retry_after }) => hints.push(retry_after),
                other => panic!("expected shed, got {other:?}"),
            }
        }
        assert!(
            hints.last().unwrap() > hints.first().unwrap(),
            "hints should stretch: {hints:?}"
        );
        assert!(hints.iter().all(|h| *h <= Admission::RETRY_CAP));
    }

    #[test]
    fn shutdown_rejects_new_work_and_drain_waits_for_active() {
        let admission = Admission::new(config(2, 4));
        let guard = admission.enter().unwrap();
        admission.begin_shutdown();
        assert!(matches!(
            admission.enter(),
            Err(AdmissionError::ShuttingDown)
        ));
        let drainer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || admission.drain())
        };
        drop(guard);
        drainer.join().unwrap();
        assert_eq!(admission.occupancy(), (0, 0));
    }
}
