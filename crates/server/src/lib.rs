//! **`bwsa-server`** — the long-lived, fault-isolated, multi-tenant
//! analysis daemon.
//!
//! The batch CLI answers one trace per process; this crate serves many
//! tenants from one process that must never die. It accepts BWSS2 trace
//! payloads over a Unix-domain socket speaking the BWSF length-prefixed
//! [`frame`] protocol (request IDs, CRC32-checked payloads), multiplexes
//! concurrent requests, and answers with analysis / allocation results
//! and live metrics.
//!
//! Robustness is the architecture, layered bottom-up:
//!
//! * **Per-request isolation** — every request runs inside
//!   [`bwsa_resilience::supervisor::catch`] plus
//!   [`bwsa_core::Session::with_supervisor`]'s degradation ladder
//!   (serial → streaming, retries with [`bwsa_resilience::Backoff`]), so
//!   a poisoned trace or an injected fault yields a typed
//!   [`proto::Response::Error`] frame on that request — never a crashed
//!   daemon, never a wedged sibling request. Per-request wall deadlines
//!   use [`bwsa_resilience::watchdog::arm_local`], so concurrent
//!   requests' budgets cannot clobber each other.
//! * **Per-tenant quotas** — [`quota::QuotaLedger`] bounds each tenant's
//!   concurrent requests and bytes in flight; the error path releases
//!   exactly what the admit path charged (property-tested: the ledger
//!   returns to zero after any mix of completed, failed, and shed
//!   requests).
//! * **Backpressure & overload ladder** — [`admission::Admission`] runs a
//!   bounded queue in front of the worker slots. Below the shed
//!   watermark callers wait (backpressure); above it they are rejected
//!   immediately with a deterministic jittered `retry-after` hint
//!   (reject-with-retry-after *before* queue exhaustion), so overload
//!   degrades into latency, then polite rejection — never collapse.
//! * **Graceful drain** — SIGTERM / ctrl-c (see [`signal`]) or a
//!   `shutdown` request flips the drain flag: the listener stops
//!   accepting, in-flight requests finish, late arrivals get a typed
//!   `shutting-down` frame, and the daemon exits 0.
//!
//! The failpoint sites in [`failpoints`] cover the accept, frame-parse,
//! and dispatch boundaries; the chaos suite sweeps them site×mode and
//! asserts every injection is contained to its request.

#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod proto;
pub mod quota;
pub mod server;
pub mod signal;

/// Failpoint sites this crate hosts (see [`bwsa_resilience::failpoint`]).
pub mod failpoints {
    /// Fires for every accepted connection, before its reader spawns.
    pub const ACCEPT: &str = "server.accept";
    /// Fires while decoding each request frame's payload.
    pub const FRAME_DECODE: &str = "server.frame_decode";
    /// Fires at the top of every request dispatch.
    pub const DISPATCH: &str = "server.dispatch";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[ACCEPT, FRAME_DECODE, DISPATCH];
}

pub use admission::{Admission, AdmissionConfig, AdmissionError};
pub use client::Client;
pub use frame::{Frame, FrameError};
pub use proto::{ErrorCode, Request, Response};
pub use quota::{QuotaError, QuotaLedger, TenantQuotas};
pub use server::{Server, ServerConfig, ServerError, ServerHandle};
