//! Property tests for the daemon's accounting invariants: after **any**
//! mix of completed, failed (panicking), and refused requests, the
//! quota ledger and the admission stage both return to zero — no slot or
//! byte is ever leaked on any exit path.

use bwsa_resilience::supervisor::catch;
use bwsa_server::{Admission, AdmissionConfig, QuotaLedger, TenantQuotas};
use proptest::prelude::*;

const MAX_CONCURRENT: u32 = 3;
const MAX_BYTES: u64 = 1_000;

fn ledger() -> std::sync::Arc<QuotaLedger> {
    QuotaLedger::new(TenantQuotas {
        max_concurrent: MAX_CONCURRENT,
        max_in_flight_bytes: MAX_BYTES,
    })
}

proptest! {
    /// Admit/refuse/drop in arbitrary interleavings; caps hold at every
    /// step and the ledger drains to exactly zero.
    #[test]
    fn ledger_returns_to_zero_after_any_mix(
        ops in prop::collection::vec((0u8..4, 0u64..600, any::<bool>()), 0..120),
    ) {
        let ledger = ledger();
        let mut held = Vec::new();
        for (t, bytes, drop_one) in ops {
            let tenant = format!("tenant-{t}");
            if let Ok(guard) = ledger.try_admit(&tenant, bytes) {
                held.push(guard);
            }
            // The caps are invariants, not just final-state properties.
            for (_, requests, in_flight) in ledger.tenant_snapshot() {
                prop_assert!(requests <= MAX_CONCURRENT);
                prop_assert!(in_flight <= MAX_BYTES);
            }
            if drop_one && !held.is_empty() {
                held.remove(held.len() / 2);
            }
        }
        drop(held);
        prop_assert_eq!(ledger.in_flight(), (0, 0));
        prop_assert!(ledger.tenant_snapshot().is_empty());
    }

    /// Requests that *panic* mid-flight release their charge during the
    /// unwind — the containment boundary cannot leak quota.
    #[test]
    fn panicking_requests_release_their_charge(
        bytes in prop::collection::vec(1u64..300, 1..24),
    ) {
        let ledger = ledger();
        for (i, b) in bytes.iter().enumerate() {
            let outcome = catch(|| {
                let _guard = ledger.try_admit("victim", *b);
                if i % 2 == 0 {
                    panic!("injected mid-request failure");
                }
            });
            prop_assert_eq!(outcome.is_err(), i % 2 == 0);
        }
        prop_assert_eq!(ledger.in_flight(), (0, 0));
    }

    /// The admission stage's occupancy drains to zero after any mix of
    /// admitted, shed, and panicked entries.
    #[test]
    fn admission_occupancy_returns_to_zero(
        ops in prop::collection::vec((any::<bool>(), any::<bool>()), 0..80),
    ) {
        let admission = Admission::new(AdmissionConfig {
            workers: 2,
            shed_watermark: 0,
            jitter_seed: 11,
        });
        let mut held = Vec::new();
        let mut shed = 0u64;
        for (drop_one, fail) in ops {
            if fail {
                // A panicking holder still frees its slot on unwind.
                let outcome = catch(|| {
                    if let Ok(_slot) = admission.enter() {
                        panic!("holder died");
                    }
                });
                if outcome.is_ok() {
                    shed += 1;
                }
            } else {
                match admission.enter() {
                    Ok(slot) => held.push(slot),
                    Err(_) => shed += 1,
                }
            }
            let (active, _) = admission.occupancy();
            prop_assert!(active <= 2);
            if drop_one && !held.is_empty() {
                held.remove(0);
            }
        }
        drop(held);
        prop_assert_eq!(admission.occupancy(), (0, 0));
        prop_assert_eq!(admission.shed_total(), shed);
    }
}
