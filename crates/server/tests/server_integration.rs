//! End-to-end daemon tests over a real Unix-domain socket: served
//! results are bit-identical to direct [`Session`] runs, failures are
//! typed frames on their own request, quotas and overload shed are
//! deterministic, and drain leaves nothing behind.

use bwsa_core::Session;
use bwsa_obs::json::Json;
use bwsa_server::server::ServerConfig;
use bwsa_server::{AdmissionConfig, QuotaError};
use bwsa_server::{
    Client, ErrorCode, Frame, QuotaLedger, Response, Server, ServerHandle, TenantQuotas,
};
use bwsa_trace::stream::StreamWriter;
use bwsa_trace::{BranchRecord, Trace};
use std::path::PathBuf;
use std::time::Duration;

/// A fresh socket path unique to this test.
fn socket_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bwsa-it-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic BWSS2 bytes, `n` records.
fn trace_bytes(name: &str, n: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = StreamWriter::new(&mut buf, name).unwrap();
    let mut lcg: u64 = 5;
    for i in 0..n {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        writer
            .push(BranchRecord::from_raw(
                0x4000 + (lcg >> 44) % 11 * 4,
                (lcg >> 21) & 1 == 1,
                i + 1,
            ))
            .unwrap();
    }
    writer.finish(n).unwrap();
    buf
}

/// Materialises BWSS2 bytes exactly the way the server does.
fn trace_of(bytes: &[u8]) -> Trace {
    let mut reader = bwsa_trace::stream::StreamReader::new(bytes).unwrap();
    let mut trace = Trace::new(reader.name().to_owned());
    for item in reader.by_ref() {
        trace.push(item.unwrap()).unwrap();
    }
    if let Some(total) = reader.total_instructions() {
        trace.meta_mut().total_instructions = total;
    }
    trace
}

fn spawn_server(tag: &str, tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::new(socket_path(tag));
    tweak(&mut config);
    Server::bind(config).unwrap().spawn()
}

fn expect_ok(response: Response) -> String {
    match response {
        Response::Ok(json) => json,
        Response::Window(json) => panic!("expected a terminal Ok, got a window frame: {json}"),
        Response::Error { code, message, .. } => {
            panic!("expected Ok, got {code}: {message}")
        }
    }
}

#[test]
fn served_analysis_is_bit_identical_to_a_direct_session_run() {
    let handle = spawn_server("identical", |_| {});
    let bytes = trace_bytes("identical", 900);

    let mut client = Client::connect(handle.socket(), "acme").unwrap();
    let served = expect_ok(client.analyze(bytes.clone(), None).unwrap());

    let trace = trace_of(&bytes);
    let direct = Session::new(&trace)
        .run()
        .unwrap()
        .summary_json()
        .to_pretty_string();
    assert_eq!(
        served, direct,
        "served result must be byte-for-byte the direct run"
    );

    // Allocation responses carry the same allocation the Session computes.
    let alloc = expect_ok(client.allocate(bytes, None, 16, true).unwrap());
    let doc = Json::parse(&alloc).unwrap();
    assert_eq!(doc.get("table_size").and_then(Json::as_u64), Some(16));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn served_report_is_a_versioned_run_report_with_resilience() {
    let handle = spawn_server("report", |_| {});
    let bytes = trace_bytes("report", 700);

    let mut client = Client::connect(handle.socket(), "acme").unwrap();
    let served = expect_ok(client.report(bytes, Some(95)).unwrap());
    let doc = Json::parse(&served).unwrap();
    assert!(
        doc.get("run_report_version")
            .and_then(Json::as_u64)
            .is_some(),
        "report must carry its schema version: {served}"
    );
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("serve"));
    let resilience = doc
        .get("resilience")
        .expect("supervised server runs record a resilience summary");
    assert!(
        matches!(resilience.get("supervised"), Some(Json::Bool(true))),
        "served report must record supervision: {served}"
    );
    assert!(
        doc.get("stages").is_some(),
        "report must carry stage timings: {served}"
    );
    // Per-request recording observer: the report covers exactly this run,
    // so the trace shape matches the upload, not cumulative daemon state.
    assert_eq!(
        doc.get("trace")
            .and_then(|t| t.get("records"))
            .and_then(Json::as_u64),
        Some(700)
    );

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn ping_status_and_per_tenant_counters() {
    let handle = spawn_server("status", |_| {});
    let mut alice = Client::connect(handle.socket(), "alice").unwrap();
    assert!(matches!(alice.ping().unwrap(), Response::Ok(_)));

    let bytes = trace_bytes("status", 300);
    expect_ok(alice.analyze(bytes, None).unwrap());

    let status = expect_ok(alice.status().unwrap());
    let doc = Json::parse(&status).unwrap();
    let counters = doc.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(
        counters
            .get("server.tenant.alice.requests")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2,
        "per-tenant request counter missing from {status}"
    );
    assert_eq!(
        counters
            .get("server.tenant.alice.ok")
            .and_then(Json::as_u64),
        Some(2),
        "ping + analyze should both have succeeded"
    );
    assert_eq!(
        doc.get("server").and_then(|s| s.get("draining")).cloned(),
        Some(Json::Bool(false))
    );

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn poisoned_payloads_fail_typed_and_the_connection_survives() {
    let handle = spawn_server("poison", |_| {});
    let mut client = Client::connect(handle.socket(), "t").unwrap();

    // Garbage trace bytes: typed Malformed, same request, same connection.
    match client
        .analyze(b"this is not a BWSS2 stream".to_vec(), None)
        .unwrap()
    {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("bad trace payload"), "{message}");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }

    // An unknown request kind is typed too.
    match client
        .request_raw(Frame {
            request_id: 77,
            kind: 0x6f,
            tenant: "t".into(),
            body: Vec::new(),
        })
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a typed error, got {other:?}"),
    }

    // The daemon and this very connection still work.
    let healthy = expect_ok(client.analyze(trace_bytes("poison", 200), None).unwrap());
    assert!(healthy.contains("working_sets"));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn quota_exhaustion_is_a_typed_refusal_that_charges_nothing() {
    let handle = spawn_server("quota", |c| {
        c.quotas = TenantQuotas {
            max_concurrent: 4,
            max_in_flight_bytes: 64,
        };
    });
    let mut client = Client::connect(handle.socket(), "greedy").unwrap();
    let big = trace_bytes("quota", 400);
    assert!(big.len() > 64);
    match client.analyze(big, None).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Quota),
        other => panic!("expected quota refusal, got {other:?}"),
    }
    assert_eq!(
        handle.quota().in_flight(),
        (0, 0),
        "refusal must charge nothing"
    );

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn overload_sheds_with_a_retry_after_hint() {
    let handle = spawn_server("overload", |c| {
        c.admission = AdmissionConfig {
            workers: 1,
            shed_watermark: 0,
            jitter_seed: 3,
        };
    });
    // Occupy the daemon's only worker slot from outside: deterministic
    // overload with no timing games.
    let slot = handle.admission().enter().unwrap();

    let mut client = Client::connect(handle.socket(), "burst").unwrap();
    match client.analyze(trace_bytes("overload", 150), None).unwrap() {
        Response::Error {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(code, ErrorCode::Overload);
            let hint = retry_after_ms.expect("shed responses carry a retry-after hint");
            assert!(hint >= 1, "hint should be a real wait: {hint}ms");
        }
        other => panic!("expected overload shed, got {other:?}"),
    }
    assert_eq!(handle.admission().shed_total(), 1);

    // Quota charges from the shed request were rolled back.
    assert_eq!(handle.quota().in_flight(), (0, 0));

    // Once the slot frees, the same client is served normally.
    drop(slot);
    expect_ok(client.analyze(trace_bytes("overload", 150), None).unwrap());

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn shutdown_request_drains_cleanly_and_removes_the_socket() {
    let handle = spawn_server("drain", |_| {});
    let socket = handle.socket().to_path_buf();
    let mut client = Client::connect(&socket, "op").unwrap();
    let ack = expect_ok(client.shutdown().unwrap());
    assert!(ack.contains("draining"));

    handle.join().unwrap();
    assert!(!socket.exists(), "drain must remove the socket file");
    assert!(
        Client::connect(&socket, "late").is_err(),
        "late connections must be refused after drain"
    );
}

#[test]
fn concurrent_tenants_are_isolated() {
    let handle = spawn_server("concurrent", |_| {});
    let socket = handle.socket().to_path_buf();
    let bytes = trace_bytes("concurrent", 700);
    let expected = {
        let trace = trace_of(&bytes);
        Session::new(&trace)
            .run()
            .unwrap()
            .summary_json()
            .to_pretty_string()
    };

    let workers: Vec<_> = (0..4)
        .map(|i| {
            let socket = socket.clone();
            let bytes = bytes.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket, &format!("tenant-{i}")).unwrap();
                for _ in 0..3 {
                    let served = match client.analyze(bytes.clone(), None).unwrap() {
                        Response::Ok(json) => json,
                        Response::Window(json) => {
                            panic!("tenant-{i} got a window frame from analyze: {json}")
                        }
                        Response::Error { code, message, .. } => {
                            panic!("tenant-{i} failed: {code}: {message}")
                        }
                    };
                    assert_eq!(served, expected);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(handle.quota().in_flight(), (0, 0));
    assert_eq!(handle.admission().occupancy(), (0, 0));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn windowed_subscription_streams_summaries_then_the_exact_whole_trace_answer() {
    let handle = spawn_server("subscribe", |_| {});
    let socket = handle.socket().to_path_buf();
    let bytes = trace_bytes("subscribe", 900);
    let expected = {
        let trace = trace_of(&bytes);
        Session::new(&trace)
            .run()
            .unwrap()
            .summary_json()
            .to_pretty_string()
    };

    // A second tenant hammers whole-trace analyzes while the first
    // streams a windowed subscription: the exchanges must not interfere.
    let batch = {
        let socket = socket.clone();
        let bytes = bytes.clone();
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket, "batch").unwrap();
            for _ in 0..3 {
                assert_eq!(
                    expect_ok(client.analyze(bytes.clone(), None).unwrap()),
                    expected
                );
            }
        })
    };

    let mut client = Client::connect(&socket, "streamer").unwrap();
    let mut windows: Vec<String> = Vec::new();
    let terminal = client
        .subscribe(bytes.clone(), None, 128, false, |json| {
            windows.push(json.to_owned())
        })
        .unwrap();
    batch.join().unwrap();

    // Every window summary arrived before the terminal frame (the
    // callback only fires on pre-terminal frames) and the terminal
    // answer is byte-for-byte what `analyze` says for the same trace:
    // the windows fold into the exact whole-trace result.
    assert_eq!(expect_ok(terminal), expected);
    assert_eq!(windows.len(), 8, "900 records at 128/window: 7 full + tail");
    let mut folded_records = 0;
    for (i, json) in windows.iter().enumerate() {
        let doc = Json::parse(json).unwrap();
        assert_eq!(doc.get("index").and_then(Json::as_u64), Some(i as u64));
        folded_records += doc.get("records").and_then(Json::as_u64).unwrap();
    }
    assert_eq!(folded_records, 900);

    // The streamed frames are byte-identical to a local windowed run.
    let trace = trace_of(&bytes);
    let session =
        Session::new(&trace).with_windowing(bwsa_core::WindowConfig::branches(128).unwrap());
    let local = session.windowed().unwrap();
    assert_eq!(windows.len(), local.windows.len());
    for (json, summary) in windows.iter().zip(&local.windows) {
        assert_eq!(Json::parse(json).unwrap(), summary.to_json());
    }

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn corpus_request_answers_the_exact_local_fleet_summary() {
    // Lay out a 2-trace corpus on the server's filesystem.
    let dir = std::env::temp_dir().join(format!("bwsa-it-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("a.bwss"), trace_bytes("a", 600)).unwrap();
    std::fs::write(dir.join("b.bwss"), trace_bytes("b", 900)).unwrap();
    let manifest = dir.join("corpus.toml");
    std::fs::write(
        &manifest,
        "name = \"served\"\n\n[defaults]\nclass = \"synthetic\"\n\n\
         [[trace]]\npath = \"a.bwss\"\n\n[[trace]]\npath = \"b.bwss\"\n",
    )
    .unwrap();

    let handle = spawn_server("corpus", |_| {});
    let mut client = Client::connect(handle.socket(), "fleet").unwrap();
    let served = expect_ok(client.corpus(manifest.to_str().unwrap(), None, 2).unwrap());

    // Byte-for-byte the summary a local Corpus run produces — the
    // fleet fold is schedule-independent, so server jobs=2 matches a
    // local serial run.
    let local = bwsa_corpus::Corpus::open(&manifest)
        .unwrap()
        .session()
        .run_all()
        .to_json()
        .to_pretty_string();
    assert_eq!(served, local);
    let doc = Json::parse(&served).unwrap();
    assert_eq!(
        doc.get("corpus")
            .and_then(|c| c.get("entries"))
            .and_then(Json::as_u64),
        Some(2)
    );

    // A malformed manifest is a typed, free refusal.
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "[[trace]]\npath = \"ghost.bwss\"\n").unwrap();
    match client.corpus(bad.to_str().unwrap(), None, 0).unwrap() {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(message.contains("ghost.bwss"), "{message}");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }

    // Every quota charge (summed trace file sizes) was released.
    assert_eq!(handle.quota().in_flight(), (0, 0));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn corpus_quota_is_charged_by_summed_trace_sizes() {
    let dir = std::env::temp_dir().join(format!("bwsa-it-corpus-quota-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = trace_bytes("q", 500);
    std::fs::write(dir.join("q.bwss"), &bytes).unwrap();
    let manifest = dir.join("corpus.toml");
    std::fs::write(&manifest, "[[trace]]\npath = \"q.bwss\"\n").unwrap();

    // Byte quota below the trace's on-disk size: typed quota refusal.
    let handle = spawn_server("corpus-quota", |c| {
        c.quotas = TenantQuotas {
            max_concurrent: 4,
            max_in_flight_bytes: bytes.len() as u64 - 1,
        };
    });
    let mut client = Client::connect(handle.socket(), "fleet").unwrap();
    match client.corpus(manifest.to_str().unwrap(), None, 0).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Quota),
        other => panic!("expected quota refusal, got {other:?}"),
    }
    assert_eq!(handle.quota().in_flight(), (0, 0));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn cached_corpus_entries_are_not_charged_against_the_byte_quota() {
    let dir = std::env::temp_dir().join(format!("bwsa-it-corpus-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = trace_bytes("c", 500);
    std::fs::write(dir.join("c.bwss"), &bytes).unwrap();
    let manifest = dir.join("corpus.toml");
    std::fs::write(&manifest, "[[trace]]\npath = \"c.bwss\"\n").unwrap();
    let cache = dir.join("cache");

    // Warm the server-local result cache under a generous quota.
    let warm_cache = cache.clone();
    let handle = spawn_server("corpus-cache-warm", move |c| {
        c.corpus_cache = Some(warm_cache);
    });
    let mut client = Client::connect(handle.socket(), "fleet").unwrap();
    let cold = expect_ok(client.corpus(manifest.to_str().unwrap(), None, 0).unwrap());
    handle.begin_shutdown();
    handle.join().unwrap();

    // A one-byte quota refuses any fresh analysis of this trace (see
    // the quota test above) — but with the entry cached, the request
    // charges zero in-flight bytes and is served byte-identically.
    let warmed_cache = cache.clone();
    let handle = spawn_server("corpus-cache-warmed", move |c| {
        c.corpus_cache = Some(warmed_cache);
        c.quotas = TenantQuotas {
            max_concurrent: 4,
            max_in_flight_bytes: 1,
        };
    });
    let mut client = Client::connect(handle.socket(), "fleet").unwrap();
    let warm = expect_ok(client.corpus(manifest.to_str().unwrap(), None, 0).unwrap());
    assert_eq!(warm, cold, "a cache replay must answer the same bytes");
    assert_eq!(handle.quota().in_flight(), (0, 0));

    handle.begin_shutdown();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expired_request_deadlines_are_typed_per_request() {
    let handle = spawn_server("deadline", |c| {
        c.request_deadline = Some(Duration::from_nanos(1));
    });
    let mut client = Client::connect(handle.socket(), "slow").unwrap();
    match client.analyze(trace_bytes("deadline", 400), None).unwrap() {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Analysis);
            assert!(
                message.contains("deadline"),
                "deadline expiry should be named: {message}"
            );
        }
        other => panic!("expected a deadline failure, got {other:?}"),
    }
    // The daemon survives; the deadline was this request's alone.
    assert!(matches!(client.ping().unwrap(), Response::Ok(_)));

    handle.begin_shutdown();
    handle.join().unwrap();
}

#[test]
fn oversize_quota_error_names_the_limit() {
    let ledger = QuotaLedger::new(TenantQuotas {
        max_concurrent: 1,
        max_in_flight_bytes: 8,
    });
    match ledger.try_admit("t", 9) {
        Err(QuotaError::Oversize { requested, limit }) => {
            assert_eq!((requested, limit), (9, 8));
        }
        other => panic!("expected oversize, got {other:?}"),
    }
}
