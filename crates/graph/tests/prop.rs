//! Property-based tests for the graph crate.

#![recursion_limit = "256"]

use bwsa_graph::{clique, coloring, components, GraphBuilder};
use proptest::prelude::*;

/// Random simple graph on up to 24 nodes.
fn arb_graph() -> impl Strategy<Value = bwsa_graph::ConflictGraph> {
    (
        2u32..24,
        prop::collection::vec((any::<u32>(), any::<u32>(), 1u64..5000), 0..150),
    )
        .prop_map(|(n, raw)| {
            let mut b = GraphBuilder::new(n);
            for (a, bb, w) in raw {
                let a = a % n;
                let bb = bb % n;
                if a != bb {
                    b.add_edge(a, bb, w);
                }
            }
            b.build()
        })
}

proptest! {
    #[test]
    fn builder_weight_equals_graph_weight(g in arb_graph()) {
        let from_edges: u64 = g.iter_edges().map(|(_, _, w)| w).sum();
        prop_assert_eq!(from_edges, g.total_weight());
        let by_degree: u64 = (0..g.node_count() as u32).map(|v| g.weighted_degree(v)).sum();
        prop_assert_eq!(by_degree, 2 * g.total_weight());
    }

    #[test]
    fn pruned_graph_has_no_light_edges(g in arb_graph(), t in 1u64..6000) {
        let p = g.pruned(t);
        prop_assert!(p.iter_edges().all(|(_, _, w)| w >= t));
        prop_assert_eq!(p.node_count(), g.node_count());
        // Pruning only removes: every surviving edge existed with equal weight.
        for (a, b, w) in p.iter_edges() {
            prop_assert_eq!(g.edge_weight(a, b), Some(w));
        }
    }

    #[test]
    fn partition_is_exact_cover_of_cliques(g in arb_graph()) {
        let sets = clique::greedy_clique_partition(&g);
        let mut seen = vec![false; g.node_count()];
        for set in &sets {
            prop_assert!(g.is_clique(set), "{:?} not a clique", set);
            for &v in set {
                prop_assert!(!seen[v as usize], "node {} in two sets", v);
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some node uncovered");
    }

    #[test]
    fn maximal_cliques_are_cliques_and_maximal(g in arb_graph()) {
        let e = clique::maximal_cliques(&g, 10_000);
        prop_assert!(!e.truncated);
        for c in &e.cliques {
            prop_assert!(g.is_clique(c));
            for v in 0..g.node_count() as u32 {
                if !c.contains(&v) {
                    prop_assert!(!c.iter().all(|&m| g.has_edge(v, m)),
                        "clique {:?} extendable by {}", c, v);
                }
            }
        }
        // Every node appears in at least one maximal clique.
        let mut covered = vec![false; g.node_count()];
        for c in &e.cliques {
            for &v in c {
                covered[v as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn coloring_covers_all_nodes_in_range(g in arb_graph(), k in 1usize..8) {
        let c = coloring::color_graph(&g, k, &coloring::ColoringOptions::default());
        prop_assert_eq!(c.assignment.len(), g.node_count());
        prop_assert!(c.assignment.iter().all(|&col| (col as usize) < k));
        let (mass, edges) = coloring::conflict_mass(&g, &c.assignment);
        prop_assert_eq!(mass, c.conflict_mass);
        prop_assert_eq!(edges, c.conflicting_edges);
    }

    #[test]
    fn enough_colors_gives_proper_coloring(g in arb_graph()) {
        // Max degree + 1 colors always suffice (greedy bound).
        let max_deg = (0..g.node_count() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
        let c = coloring::color_graph(&g, max_deg + 1, &coloring::ColoringOptions::default());
        prop_assert!(c.is_proper());
    }

    #[test]
    fn coloring_mass_never_exceeds_total_weight(g in arb_graph(), k in 1usize..8) {
        let c = coloring::color_graph(&g, k, &coloring::ColoringOptions::default());
        prop_assert!(c.conflict_mass <= g.total_weight());
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let comps = components::connected_components(&g);
        let groups = comps.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        // Edge endpoints share a component.
        for (a, b, _) in g.iter_edges() {
            prop_assert!(comps.connected(a, b));
        }
    }

    #[test]
    fn clique_members_share_a_component(g in arb_graph()) {
        let comps = components::connected_components(&g);
        for set in clique::greedy_clique_partition(&g) {
            for w in set.windows(2) {
                prop_assert!(comps.connected(w[0], w[1]));
            }
        }
    }
}

/// One batch of weighted-edge insertions.
type EdgeOps = Vec<(u32, u32, u64)>;

/// Edit scripts for the accumulator equivalence test: interleaved
/// add-edge and merge operations.
fn arb_ops() -> impl Strategy<Value = (u32, EdgeOps, EdgeOps)> {
    (
        2u32..40,
        prop::collection::vec((0u32..40, 0u32..40, 1u64..1000), 0..300),
        prop::collection::vec((0u32..40, 0u32..40, 1u64..1000), 0..300),
    )
}

proptest! {
    /// The open-addressed flat table must track a plain `HashMap`
    /// accumulator operation for operation: same distinct-edge count,
    /// same `(a, b, weight)` multiset, same built CSR graph — through
    /// growth, `with_capacity` pre-sizing, and `merge`.
    #[test]
    fn flat_table_matches_hashmap_reference(ops in arb_ops()) {
        use std::collections::HashMap;
        let (n, first, second) = ops;
        let n = 40u32.max(n);
        let mut reference: HashMap<(u32, u32), u64> = HashMap::new();
        let mut plain = GraphBuilder::new(n);
        let mut sized = GraphBuilder::with_capacity(n, first.len());
        for &(a, b, w) in &first {
            if a != b {
                let key = (a.min(b), a.max(b));
                *reference.entry(key).or_insert(0) += w;
                plain.add_edge(a, b, w);
                sized.add_edge(a, b, w);
            }
        }
        // Merge a second builder in, mirroring it on the reference.
        let mut other = GraphBuilder::new(n);
        for &(a, b, w) in &second {
            if a != b {
                let key = (a.min(b), a.max(b));
                *reference.entry(key).or_insert(0) += w;
                other.add_edge(a, b, w);
            }
        }
        plain.merge(&other);
        sized.merge(&other);

        let mut want: Vec<(u32, u32, u64)> =
            reference.iter().map(|(&(a, b), &w)| (a, b, w)).collect();
        want.sort_unstable();
        for builder in [&plain, &sized] {
            prop_assert_eq!(builder.edge_count(), reference.len());
            let mut got: Vec<_> = builder.edges().collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want);
        }
        prop_assert_eq!(plain.build(), sized.build());
    }
}
