//! Immutable CSR conflict graph.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An immutable weighted undirected simple graph in compressed sparse row
/// form.
///
/// Per-node adjacency lists are sorted, so `has_edge`/`edge_weight` are
/// binary searches and neighbor iteration is cache-friendly — the analysis
/// repeatedly scans adjacency during clique extraction and coloring.
///
/// Build one with [`crate::GraphBuilder`].
///
/// # Example
///
/// ```
/// use bwsa_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 4).add_edge(0, 2, 6);
/// let g = b.build();
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.weighted_degree(0), 10);
/// assert_eq!(g.neighbors(1), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictGraph {
    /// `offsets[n]..offsets[n+1]` is node n's slice of `neighbors`/`weights`.
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<u64>,
}

impl ConflictGraph {
    pub(crate) fn from_edge_map(nodes: u32, edges: &HashMap<(u32, u32), u64>) -> Self {
        Self::from_edge_iter(nodes, edges.iter().map(|(&(a, b), &w)| (a, b, w)))
    }

    /// Builds the CSR form from any restartable `(a, b, weight)` edge
    /// source with `a < b` — two passes: degree count, then fill.
    pub(crate) fn from_edge_iter<I>(nodes: u32, edges: I) -> Self
    where
        I: Iterator<Item = (u32, u32, u64)> + Clone,
    {
        let n = nodes as usize;
        let mut degree = vec![0usize; n];
        for (a, b, _) in edges.clone() {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0u32; acc];
        let mut weights = vec![0u64; acc];
        let mut cursor = offsets[..n].to_vec();
        for (a, b, w) in edges {
            let ca = cursor[a as usize];
            neighbors[ca] = b;
            weights[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize];
            neighbors[cb] = a;
            weights[cb] = w;
            cursor[b as usize] += 1;
        }
        // Sort each adjacency slice by neighbor id (weights stay parallel).
        let mut graph = ConflictGraph {
            offsets,
            neighbors,
            weights,
        };
        for node in 0..n {
            let range = graph.offsets[node]..graph.offsets[node + 1];
            let mut pairs: Vec<(u32, u64)> = graph.neighbors[range.clone()]
                .iter()
                .copied()
                .zip(graph.weights[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(nb, _)| nb);
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                graph.neighbors[range.start + i] = nb;
                graph.weights[range.start + i] = w;
            }
        }
        graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree (neighbor count) of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: u32) -> usize {
        let n = node as usize;
        self.offsets[n + 1] - self.offsets[n]
    }

    /// Sum of edge weights incident to a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn weighted_degree(&self, node: u32) -> u64 {
        let n = node as usize;
        self.weights[self.offsets[n]..self.offsets[n + 1]]
            .iter()
            .sum()
    }

    /// The sorted neighbor ids of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let n = node as usize;
        &self.neighbors[self.offsets[n]..self.offsets[n + 1]]
    }

    /// Iterates `(neighbor, weight)` pairs of a node in neighbor-id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbor_weights(&self, node: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let n = node as usize;
        let range = self.offsets[n]..self.offsets[n + 1];
        self.neighbors[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Returns `true` if `{a, b}` is an edge.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.edge_weight(a, b).is_some()
    }

    /// The weight of edge `{a, b}`, or `None` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn edge_weight(&self, a: u32, b: u32) -> Option<u64> {
        let n = a as usize;
        let slice = &self.neighbors[self.offsets[n]..self.offsets[n + 1]];
        slice
            .binary_search(&b)
            .ok()
            .map(|i| self.weights[self.offsets[n] + i])
    }

    /// Iterates every undirected edge once as `(a, b, weight)` with `a < b`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.node_count() as u32).flat_map(move |a| {
            self.neighbor_weights(a)
                .filter(move |&(b, _)| a < b)
                .map(move |(b, w)| (a, b, w))
        })
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum::<u64>() / 2
    }

    /// Returns a new graph with every edge of weight `< threshold` removed.
    ///
    /// This is the paper's §4.2 refinement: "a threshold value is given and
    /// any edge with a smaller count than the threshold is eliminated"
    /// (they use 100 and note 500/1000 make no significant difference).
    pub fn pruned(&self, threshold: u64) -> ConflictGraph {
        let edges: HashMap<(u32, u32), u64> = self
            .iter_edges()
            .filter(|&(_, _, w)| w >= threshold)
            .map(|(a, b, w)| ((a, b), w))
            .collect();
        ConflictGraph::from_edge_map(self.node_count() as u32, &edges)
    }

    /// Returns a copy with the given edges removed (endpoints in either
    /// order). Weights of surviving edges are unchanged.
    ///
    /// Used by branch classification (§5.2): conflicts between two branches
    /// of the same highly-biased class are ignored "even if [the interleave
    /// count] is above a threshold value".
    pub fn without_edges(&self, remove: impl Fn(u32, u32) -> bool) -> ConflictGraph {
        let edges: HashMap<(u32, u32), u64> = self
            .iter_edges()
            .filter(|&(a, b, _)| !remove(a, b))
            .map(|(a, b, w)| ((a, b), w))
            .collect();
        ConflictGraph::from_edge_map(self.node_count() as u32, &edges)
    }

    /// Returns the subgraph induced on `keep` (node ids preserved; edges
    /// with an endpoint outside `keep` dropped).
    pub fn induced(&self, keep: impl Fn(u32) -> bool) -> ConflictGraph {
        let edges: HashMap<(u32, u32), u64> = self
            .iter_edges()
            .filter(|&(a, b, _)| keep(a) && keep(b))
            .map(|(a, b, w)| ((a, b), w))
            .collect();
        ConflictGraph::from_edge_map(self.node_count() as u32, &edges)
    }

    /// Returns `true` if `set` forms a clique (every pair adjacent).
    pub fn is_clique(&self, set: &[u32]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for ConflictGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict graph: {} nodes, {} edges, total weight {}",
            self.node_count(),
            self.edge_count(),
            self.total_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> ConflictGraph {
        // 0-1-2 triangle with weights 10/20/30, plus 2-3 with weight 5.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10)
            .add_edge(1, 2, 20)
            .add_edge(0, 2, 30)
            .add_edge(2, 3, 5);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.weighted_degree(2), 55);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn edge_weight_lookup_is_symmetric() {
        let g = triangle_plus_tail();
        assert_eq!(g.edge_weight(0, 2), Some(30));
        assert_eq!(g.edge_weight(2, 0), Some(30));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn iter_edges_yields_each_once() {
        let g = triangle_plus_tail();
        let mut edges: Vec<_> = g.iter_edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 10), (0, 2, 30), (1, 2, 20), (2, 3, 5)]);
        assert_eq!(g.total_weight(), 65);
    }

    #[test]
    fn pruning_removes_light_edges() {
        let g = triangle_plus_tail();
        let p = g.pruned(10);
        assert_eq!(p.edge_count(), 3, "weight-5 edge pruned, weight-10 kept");
        assert!(p.has_edge(0, 1));
        assert!(!p.has_edge(2, 3));
        assert_eq!(p.node_count(), 4, "nodes survive pruning");
    }

    #[test]
    fn without_edges_filters_by_predicate() {
        let g = triangle_plus_tail();
        let h = g.without_edges(|a, b| (a, b) == (0, 1) || (a, b) == (1, 0));
        assert!(!h.has_edge(0, 1));
        assert_eq!(h.edge_count(), 3);
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let g = triangle_plus_tail();
        let h = g.induced(|n| n != 2);
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), 1);
        assert!(h.has_edge(0, 1));
    }

    #[test]
    fn clique_detection() {
        let g = triangle_plus_tail();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2, 3]));
        assert!(g.is_clique(&[1]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.total_weight(), 0);
    }

    #[test]
    fn display_summarises() {
        let g = triangle_plus_tail();
        assert_eq!(
            g.to_string(),
            "conflict graph: 4 nodes, 4 edges, total weight 65"
        );
    }
}
