//! K-coloring with merge-instead-of-spill, after Chaitin/Briggs.
//!
//! Branch allocation "closely follows a graph coloring based register
//! allocation technique" (§5.1) with one crucial difference: running out of
//! colors never spills. "If it is determined that a working set has too
//! many member branch instructions for a one to one mapping into the BHT
//! table, multiple branches within the same working set are mapped to the
//! same BHT entry location. The allocation routine chooses the branches
//! with the fewest conflicts ... to minimize contention."
//!
//! Concretely: simplify removes nodes with degree `< K` first; when stuck
//! it optimistically removes the remaining node with the *fewest* weighted
//! conflicts (the cheapest branch to share an entry). Select then assigns
//! each node the color minimising the interleave weight to already-colored
//! neighbors — zero when a conflict-free color exists.

use crate::ConflictGraph;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// How the optimistic (merge) candidate is chosen when no node has degree
/// below K.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MergeOrder {
    /// Fewest weighted conflicts first — the paper's choice.
    #[default]
    MinWeightedDegree,
    /// Fewest neighbors first, ignoring weights.
    MinDegree,
    /// Heaviest node first (a deliberately bad baseline for ablation).
    MaxWeightedDegree,
}

/// Options controlling [`color_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ColoringOptions {
    /// Merge-candidate selection heuristic.
    pub merge_order: MergeOrder,
}

/// A color assignment of every node of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    /// Number of colors the coloring was asked to use.
    pub colors: usize,
    /// `assignment[node]` is the node's color in `0..colors`.
    pub assignment: Vec<u32>,
    /// Total weight of edges whose endpoints share a color.
    pub conflict_mass: u64,
    /// Number of edges whose endpoints share a color.
    pub conflicting_edges: usize,
}

impl Coloring {
    /// The color of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn color_of(&self, node: u32) -> u32 {
        self.assignment[node as usize]
    }

    /// Number of distinct colors actually used.
    pub fn used_colors(&self) -> usize {
        let mut seen = vec![false; self.colors];
        for &c in &self.assignment {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Returns `true` if no edge joins two same-colored nodes.
    pub fn is_proper(&self) -> bool {
        self.conflicting_edges == 0
    }
}

/// Computes the conflict mass and conflicting-edge count of an arbitrary
/// assignment (`assignment[node] = color`).
///
/// This is the metric Tables 3 and 4 are built on: the paper asks for the
/// BHT size at which allocation "reduce[s] the table conflicts to below
/// that of a 1024-entry conventional BHT", and the natural quantification
/// of "table conflicts" is the interleave weight carried by same-entry
/// branch pairs.
///
/// # Panics
///
/// Panics if `assignment.len()` differs from the graph's node count.
pub fn conflict_mass(graph: &ConflictGraph, assignment: &[u32]) -> (u64, usize) {
    assert_eq!(
        assignment.len(),
        graph.node_count(),
        "assignment length must equal node count"
    );
    let mut mass = 0u64;
    let mut edges = 0usize;
    for (a, b, w) in graph.iter_edges() {
        if assignment[a as usize] == assignment[b as usize] {
            mass += w;
            edges += 1;
        }
    }
    (mass, edges)
}

/// Colors `graph` with at most `k` colors, merging (sharing colors) when
/// `k` is insufficient.
///
/// Every node receives a color in `0..k`; the returned
/// [`Coloring::conflict_mass`] reports the residual same-color interleave
/// weight (zero when `k` exceeds the graph's degeneracy).
///
/// # Panics
///
/// Panics if `k == 0` and the graph has nodes to color; use
/// [`try_color_graph`] to get a typed error instead.
///
/// # Example
///
/// ```
/// use bwsa_graph::{coloring::{color_graph, ColoringOptions}, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 10).add_edge(1, 2, 10).add_edge(0, 2, 10);
/// let g = b.build();
///
/// let three = color_graph(&g, 3, &ColoringOptions::default());
/// assert!(three.is_proper());
///
/// let two = color_graph(&g, 2, &ColoringOptions::default());
/// assert_eq!(two.conflict_mass, 10, "one pair must share");
/// ```
pub fn color_graph(graph: &ConflictGraph, k: usize, options: &ColoringOptions) -> Coloring {
    match try_color_graph(graph, k, options) {
        Ok(coloring) => coloring,
        Err(e) => panic!("{e}"),
    }
}

/// [`color_graph`] with the unusable-configuration case surfaced as a
/// typed error instead of a panic.
///
/// # Errors
///
/// Returns [`GraphError::ZeroColors`] when `k == 0` and the graph has
/// nodes to color.
pub fn try_color_graph(
    graph: &ConflictGraph,
    k: usize,
    options: &ColoringOptions,
) -> Result<Coloring, crate::GraphError> {
    bwsa_resilience::failpoint!("graph.color");
    let n = graph.node_count();
    if n == 0 {
        return Ok(Coloring {
            colors: k,
            assignment: Vec::new(),
            conflict_mass: 0,
            conflicting_edges: 0,
        });
    }
    if k == 0 {
        return Err(crate::GraphError::ZeroColors { nodes: n });
    }

    // --- Simplify phase -------------------------------------------------
    let mut cur_deg: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut low: VecDeque<u32> = (0..n as u32).filter(|&v| cur_deg[v as usize] < k).collect();

    // Merge candidates, cheapest first. Keyed by the heuristic's static
    // score; BinaryHeap is a max-heap so scores are negated via Reverse.
    let score = |v: u32| -> u64 {
        match options.merge_order {
            MergeOrder::MinWeightedDegree => graph.weighted_degree(v),
            MergeOrder::MinDegree => graph.degree(v) as u64,
            MergeOrder::MaxWeightedDegree => u64::MAX - graph.weighted_degree(v),
        }
    };
    let mut merge_heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..n as u32)
        .map(|v| std::cmp::Reverse((score(v), v)))
        .collect();

    let mut remaining = n;
    while remaining > 0 {
        let v = loop {
            if let Some(v) = low.pop_front() {
                if !removed[v as usize] {
                    break v;
                }
            } else {
                // No trivially colorable node: optimistically push the
                // cheapest merge candidate.
                let std::cmp::Reverse((_, v)) = merge_heap
                    .pop()
                    .expect("remaining nodes imply heap entries");
                if !removed[v as usize] {
                    break v;
                }
            }
        };
        removed[v as usize] = true;
        remaining -= 1;
        stack.push(v);
        for &nb in graph.neighbors(v) {
            if !removed[nb as usize] {
                cur_deg[nb as usize] -= 1;
                if cur_deg[nb as usize] + 1 == k {
                    low.push_back(nb);
                }
            }
        }
    }

    // --- Select phase ---------------------------------------------------
    // Each node takes the color minimising its weighted conflict with
    // already-colored neighbors; among equal-cost colors the least-loaded
    // one wins, spreading branches across the whole table instead of
    // packing every working set into the same low entries (distinct
    // working sets rarely conflict *above threshold*, but sharing an
    // entry still costs a history warm-up at every phase change).
    const UNCOLORED: u32 = u32::MAX;
    let mut assignment = vec![UNCOLORED; n];
    let mut usage = vec![0u32; k];
    let mut cost = vec![0u64; k];
    while let Some(v) = stack.pop() {
        cost.iter_mut().for_each(|c| *c = 0);
        for (nb, w) in graph.neighbor_weights(v) {
            let c = assignment[nb as usize];
            if c != UNCOLORED {
                cost[c as usize] += w;
            }
        }
        let best = cost
            .iter()
            .enumerate()
            .min_by_key(|&(i, &c)| (c, usage[i], i))
            .map(|(i, _)| i as u32)
            .expect("k > 0");
        assignment[v as usize] = best;
        usage[best as usize] += 1;
    }

    let (conflict_mass, conflicting_edges) = self::conflict_mass(graph, &assignment);
    Ok(Coloring {
        colors: k,
        assignment,
        conflict_mass,
        conflicting_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn complete(n: u32, w: u64) -> ConflictGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(i, j, w);
            }
        }
        b.build()
    }

    #[test]
    fn enough_colors_is_proper() {
        let g = complete(5, 10);
        for order in [
            MergeOrder::MinWeightedDegree,
            MergeOrder::MinDegree,
            MergeOrder::MaxWeightedDegree,
        ] {
            let c = color_graph(&g, 5, &ColoringOptions { merge_order: order });
            assert!(c.is_proper(), "{order:?}");
            assert_eq!(c.used_colors(), 5);
        }
    }

    #[test]
    fn bipartite_needs_two() {
        // 3x3 complete bipartite graph.
        let mut b = GraphBuilder::new(6);
        for i in 0..3 {
            for j in 3..6 {
                b.add_edge(i, j, 1);
            }
        }
        let c = color_graph(&b.build(), 2, &ColoringOptions::default());
        assert!(c.is_proper());
    }

    #[test]
    fn too_few_colors_merges_with_minimal_mass() {
        // Triangle with one light edge: with 2 colors the light pair
        // should end up sharing.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 100).add_edge(1, 2, 100).add_edge(0, 2, 1);
        let c = color_graph(&b.build(), 2, &ColoringOptions::default());
        assert_eq!(c.conflict_mass, 1);
        assert_eq!(c.conflicting_edges, 1);
        assert_eq!(c.color_of(0), c.color_of(2));
    }

    #[test]
    fn single_color_puts_everything_together() {
        let g = complete(4, 5);
        let c = color_graph(&g, 1, &ColoringOptions::default());
        assert_eq!(c.conflict_mass, g.total_weight());
        assert_eq!(c.conflicting_edges, g.edge_count());
        assert_eq!(c.used_colors(), 1);
    }

    #[test]
    fn conflict_mass_matches_reported() {
        let g = complete(6, 3);
        for k in 1..=6 {
            let c = color_graph(&g, k, &ColoringOptions::default());
            let (mass, edges) = conflict_mass(&g, &c.assignment);
            assert_eq!(mass, c.conflict_mass);
            assert_eq!(edges, c.conflicting_edges);
        }
    }

    #[test]
    fn mass_is_nonincreasing_in_k_on_complete_graph() {
        let g = complete(8, 2);
        let mut prev = u64::MAX;
        for k in 1..=8 {
            let c = color_graph(&g, k, &ColoringOptions::default());
            assert!(c.conflict_mass <= prev, "k={k}");
            prev = c.conflict_mass;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn complete_graph_with_k_colors_balances() {
        // K6 with 3 colors: best is 3 pairs → mass = 3 edges of weight w.
        let g = complete(6, 10);
        let c = color_graph(&g, 3, &ColoringOptions::default());
        assert_eq!(c.conflicting_edges, 3);
        assert_eq!(c.conflict_mass, 30);
    }

    #[test]
    fn isolated_nodes_color_trivially() {
        let g = GraphBuilder::new(4).build();
        let c = color_graph(&g, 1, &ColoringOptions::default());
        assert!(c.is_proper());
        assert_eq!(c.assignment, vec![0, 0, 0, 0]);
    }

    #[test]
    fn empty_graph_is_fine_even_with_zero_colors() {
        let g = GraphBuilder::new(0).build();
        let c = color_graph(&g, 0, &ColoringOptions::default());
        assert!(c.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero colors")]
    fn zero_colors_with_nodes_panics() {
        color_graph(
            &GraphBuilder::new(1).build(),
            0,
            &ColoringOptions::default(),
        );
    }

    #[test]
    fn try_coloring_surfaces_zero_colors_as_a_typed_error() {
        let err = try_color_graph(
            &GraphBuilder::new(2).build(),
            0,
            &ColoringOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, crate::GraphError::ZeroColors { nodes: 2 });
        assert!(try_color_graph(
            &GraphBuilder::new(0).build(),
            0,
            &ColoringOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn conflict_free_nodes_spread_across_the_table() {
        // 12 isolated nodes, 4 colors: least-loaded tie-breaking must
        // balance them 3 per color rather than packing color 0.
        let g = GraphBuilder::new(12).build();
        let c = color_graph(&g, 4, &ColoringOptions::default());
        assert_eq!(c.used_colors(), 4);
        let mut counts = [0usize; 4];
        for &col in &c.assignment {
            counts[col as usize] += 1;
        }
        assert_eq!(counts, [3, 3, 3, 3]);
    }

    #[test]
    fn all_colors_in_range() {
        let g = complete(7, 1);
        let c = color_graph(&g, 3, &ColoringOptions::default());
        assert!(c.assignment.iter().all(|&c| c < 3));
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn conflict_mass_validates_length() {
        conflict_mass(&complete(3, 1), &[0, 1]);
    }
}
