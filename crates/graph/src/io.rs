//! Conflict-graph persistence: a compact binary format (`BWSG1`).
//!
//! The interleaving analysis is the pipeline's dominant cost — minutes
//! for the large benchmarks — while everything downstream (working sets,
//! classification, allocation, size searches) re-runs in milliseconds.
//! Persisting the conflict graph lets tools analyse once and iterate on
//! allocations forever after.
//!
//! ```text
//! magic "BWSG", version u16 LE
//! node_count u32 LE, edge_count u64 LE
//! per edge (sorted by (a, b)): varint(a - prev_a), varint(b), varint(w)
//! ```

use crate::{ConflictGraph, GraphBuilder, GraphError};
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"BWSG";
const VERSION: u16 = 1;

/// Error produced while reading or writing graph files.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Malformed input.
    Format(String),
    /// A decoded edge was structurally invalid.
    Graph(GraphError),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph i/o error: {e}"),
            GraphIoError::Format(m) => write!(f, "malformed graph file: {m}"),
            GraphIoError::Graph(e) => write!(f, "invalid graph data: {e}"),
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Graph(e) => Some(e),
            GraphIoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

impl From<GraphError> for GraphIoError {
    fn from(e: GraphError) -> Self {
        GraphIoError::Graph(e)
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, GraphIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| GraphIoError::Format("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(GraphIoError::Format("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a graph into the `BWSG1` binary format.
pub fn encode(graph: &ConflictGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + graph.edge_count() * 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(graph.node_count() as u32).to_le_bytes());
    out.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    let mut prev_a = 0u64;
    // iter_edges yields ascending (a, b) because adjacency is sorted.
    for (a, b, w) in graph.iter_edges() {
        put_varint(&mut out, u64::from(a) - prev_a);
        put_varint(&mut out, u64::from(b));
        put_varint(&mut out, w);
        prev_a = u64::from(a);
    }
    out
}

/// Writes a graph in binary format to any [`Write`] (a `&mut` reference
/// also works).
///
/// # Errors
///
/// Returns [`GraphIoError::Io`] on write failure.
pub fn write<W: Write>(graph: &ConflictGraph, mut w: W) -> Result<(), GraphIoError> {
    w.write_all(&encode(graph))?;
    Ok(())
}

/// Decodes a graph from a `BWSG1` buffer.
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] for malformed bytes and
/// [`GraphIoError::Graph`] for structurally invalid edges.
///
/// # Example
///
/// ```
/// use bwsa_graph::{io as graph_io, GraphBuilder};
///
/// # fn main() -> Result<(), bwsa_graph::io::GraphIoError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 500).add_edge(1, 2, 100);
/// let g = b.build();
/// let bytes = graph_io::encode(&g);
/// let back = graph_io::decode(&bytes)?;
/// assert_eq!(back, g);
/// # Ok(())
/// # }
/// ```
pub fn decode(buf: &[u8]) -> Result<ConflictGraph, GraphIoError> {
    if buf.len() < 18 || &buf[..4] != MAGIC {
        return Err(GraphIoError::Format("bad magic (expected \"BWSG\")".into()));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(GraphIoError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let nodes = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
    let edges = u64::from_le_bytes([
        buf[10], buf[11], buf[12], buf[13], buf[14], buf[15], buf[16], buf[17],
    ]);
    let mut pos = 18usize;
    let mut builder = GraphBuilder::new(nodes);
    let mut prev_a = 0u64;
    for _ in 0..edges {
        let a = prev_a + get_varint(buf, &mut pos)?;
        let b = get_varint(buf, &mut pos)?;
        let w = get_varint(buf, &mut pos)?;
        let a32 = u32::try_from(a).map_err(|_| GraphIoError::Format("node overflow".into()))?;
        let b32 = u32::try_from(b).map_err(|_| GraphIoError::Format("node overflow".into()))?;
        builder.try_add_edge(a32, b32, w)?;
        prev_a = a;
    }
    if pos != buf.len() {
        return Err(GraphIoError::Format(format!(
            "{} trailing bytes after last edge",
            buf.len() - pos
        )));
    }
    Ok(builder.build())
}

/// Reads a binary-format graph from any [`Read`].
///
/// # Errors
///
/// Returns [`GraphIoError`] on IO failure or malformed input.
pub fn read<R: Read>(mut r: R) -> Result<ConflictGraph, GraphIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConflictGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1000)
            .add_edge(0, 5, 7)
            .add_edge(2, 3, 123_456_789)
            .add_edge(4, 5, 1);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        assert_eq!(decode(&encode(&g)).unwrap(), g);
    }

    #[test]
    fn roundtrip_via_io_traits() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        assert_eq!(read(&buf[..]).unwrap(), g);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(decode(&encode(&g)).unwrap(), g);
        let g = GraphBuilder::new(10).build();
        assert_eq!(decode(&encode(&g)).unwrap(), g);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode(b"NOPE--------------------"),
            Err(GraphIoError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        // Hand-craft a file claiming 1 node but an edge to node 5.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        put_varint(&mut buf, 0); // a = 0
        put_varint(&mut buf, 5); // b = 5 (out of range)
        put_varint(&mut buf, 9);
        assert!(matches!(decode(&buf), Err(GraphIoError::Graph(_))));
    }

    #[test]
    fn format_is_compact() {
        // A 100-node path graph: ~3 bytes/edge.
        let mut b = GraphBuilder::new(100);
        for i in 0..99 {
            b.add_edge(i, i + 1, 500);
        }
        let bytes = encode(&b.build());
        assert!(bytes.len() < 18 + 99 * 6, "{} bytes", bytes.len());
    }
}
