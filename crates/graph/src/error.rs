//! Error type for graph construction.

use std::error::Error;
use std::fmt;

/// Error produced while constructing or manipulating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was at or beyond the declared node count.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The declared node count.
        count: u32,
    },
    /// A self-loop was supplied; conflict graphs are simple graphs.
    SelfLoop {
        /// The node the loop was attached to.
        node: u32,
    },
    /// A coloring was requested with zero colors for a non-empty graph.
    ZeroColors {
        /// How many nodes needed a color.
        nodes: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, count } => {
                write!(f, "node {node} out of range for graph of {count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::ZeroColors { nodes } => {
                write!(f, "cannot color {nodes} nodes with zero colors")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, count: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = GraphError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self-loop"));
    }
}
