//! Accumulating builder for [`ConflictGraph`].

use crate::{ConflictGraph, GraphError};
use std::collections::HashMap;

/// Accumulates weighted undirected edges, then compiles them into an
/// immutable CSR [`ConflictGraph`].
///
/// Adding the same edge repeatedly sums the weights, which is exactly what
/// the interleaving analysis needs: each detection event contributes one
/// increment to the pair's interleave counter.
///
/// # Example
///
/// ```
/// use bwsa_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1);
/// b.add_edge(1, 0, 2); // same undirected edge
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    nodes: u32,
    edges: HashMap<(u32, u32), u64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over nodes `0..nodes`.
    pub fn new(nodes: u32) -> Self {
        GraphBuilder {
            nodes,
            edges: HashMap::new(),
        }
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Number of distinct edges accumulated so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grows the node count (never shrinks).
    pub fn ensure_nodes(&mut self, nodes: u32) -> &mut Self {
        self.nodes = self.nodes.max(nodes);
        self
    }

    /// Adds `weight` to the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop) or either node is out of range. Use
    /// [`GraphBuilder::try_add_edge`] for fallible insertion.
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) -> &mut Self {
        self.try_add_edge(a, b, weight).expect("invalid edge");
        self
    }

    /// Adds `weight` to the undirected edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] when `a == b` and
    /// [`GraphError::NodeOutOfRange`] when either endpoint is at or beyond
    /// the declared node count.
    pub fn try_add_edge(&mut self, a: u32, b: u32, weight: u64) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        for n in [a, b] {
            if n >= self.nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: n,
                    count: self.nodes,
                });
            }
        }
        let key = if a < b { (a, b) } else { (b, a) };
        *self.edges.entry(key).or_insert(0) += weight;
        Ok(())
    }

    /// Iterates the accumulated edges as `(a, b, weight)` with `a < b`, in
    /// arbitrary order. Checkpointing code sorts the result to get a
    /// deterministic serialisation; casual consumers should usually
    /// [`GraphBuilder::build`] instead.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Merges every edge of another builder into this one, summing weights.
    ///
    /// This is the graph-level primitive behind the paper's §5.2 cumulative
    /// profiles: conflict graphs from several profiling runs are merged
    /// "until the resulting graph indicates that most part of the program
    /// has been exercised".
    pub fn merge(&mut self, other: &GraphBuilder) -> &mut Self {
        self.nodes = self.nodes.max(other.nodes);
        for (&(a, b), &w) in &other.edges {
            *self.edges.entry((a, b)).or_insert(0) += w;
        }
        self
    }

    /// Compiles the accumulated edges into an immutable CSR graph.
    pub fn build(&self) -> ConflictGraph {
        ConflictGraph::from_edge_map(self.nodes, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_accumulate_across_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5).add_edge(1, 0, 7);
        assert_eq!(b.edge_count(), 1);
        assert_eq!(b.build().edge_weight(0, 1), Some(12));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(1, 1, 3),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(0, 2, 3),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(5);
        assert_eq!(b.node_count(), 5);
        b.ensure_nodes(1);
        assert_eq!(b.node_count(), 5);
    }

    #[test]
    fn merge_sums_weights_and_grows() {
        let mut a = GraphBuilder::new(2);
        a.add_edge(0, 1, 10);
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5).add_edge(2, 3, 1);
        a.merge(&b);
        let g = a.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(15));
        assert_eq!(g.edge_weight(2, 3), Some(1));
    }

    #[test]
    fn edges_iterates_canonical_pairs() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 4).add_edge(0, 1, 1).add_edge(1, 0, 2);
        let mut edges: Vec<_> = b.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 3), (0, 2, 4)]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
