//! Accumulating builder for [`ConflictGraph`].

use crate::{ConflictGraph, GraphError};

/// Sentinel for an empty table bucket. `u64::MAX` packs the pair
/// `(u32::MAX, u32::MAX)` — a self-loop, which [`GraphBuilder::try_add_edge`]
/// rejects — so it can never collide with a stored key.
const EMPTY: u64 = u64::MAX;

/// Multiplicative (Fibonacci) hash constant: `2^64 / φ`, odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Accumulates weighted undirected edges, then compiles them into an
/// immutable CSR [`ConflictGraph`].
///
/// Adding the same edge repeatedly sums the weights, which is exactly what
/// the interleaving analysis needs: each detection event contributes one
/// increment to the pair's interleave counter.
///
/// Internally the edge map is an open-addressed flat table keyed by the
/// packed canonical pair `(min << 32) | max`, with Fibonacci hashing,
/// power-of-two capacity, and linear probing — one cache line per lookup
/// on the interleave hot path instead of a `HashMap`'s SipHash plus
/// bucket indirection. Iteration order is arbitrary either way;
/// [`GraphBuilder::build`] sorts adjacency lists and checkpoint code
/// sorts [`GraphBuilder::edges`], so no output changes.
///
/// # Example
///
/// ```
/// use bwsa_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1);
/// b.add_edge(1, 0, 2); // same undirected edge
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    nodes: u32,
    /// Packed edge keys, [`EMPTY`] for free buckets. Length is zero or a
    /// power of two.
    keys: Vec<u64>,
    /// Accumulated weight per occupied bucket, parallel to `keys`.
    weights: Vec<u64>,
    /// Occupied bucket count.
    len: usize,
    /// `64 - log2(capacity)`: the Fibonacci hash shift.
    shift: u32,
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    debug_assert!(a < b);
    (u64::from(a) << 32) | u64::from(b)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

impl GraphBuilder {
    /// Creates a builder for a graph over nodes `0..nodes`.
    pub fn new(nodes: u32) -> Self {
        GraphBuilder {
            nodes,
            ..Self::default()
        }
    }

    /// Creates a builder pre-sized to hold about `edges` distinct edges
    /// without rehashing.
    pub fn with_capacity(nodes: u32, edges: usize) -> Self {
        let mut builder = Self::new(nodes);
        if edges > 0 {
            // Size so `edges` entries stay under the 7/8 load ceiling.
            builder.rehash((edges * 8 / 7 + 1).next_power_of_two().max(16));
        }
        builder
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Number of distinct edges accumulated so far.
    pub fn edge_count(&self) -> usize {
        self.len
    }

    /// Grows the node count (never shrinks).
    pub fn ensure_nodes(&mut self, nodes: u32) -> &mut Self {
        self.nodes = self.nodes.max(nodes);
        self
    }

    /// Adds `weight` to the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop) or either node is out of range. Use
    /// [`GraphBuilder::try_add_edge`] for fallible insertion.
    pub fn add_edge(&mut self, a: u32, b: u32, weight: u64) -> &mut Self {
        self.try_add_edge(a, b, weight).expect("invalid edge");
        self
    }

    /// Adds `weight` to the undirected edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] when `a == b` and
    /// [`GraphError::NodeOutOfRange`] when either endpoint is at or beyond
    /// the declared node count.
    pub fn try_add_edge(&mut self, a: u32, b: u32, weight: u64) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        for n in [a, b] {
            if n >= self.nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: n,
                    count: self.nodes,
                });
            }
        }
        self.accumulate(pack(a.min(b), a.max(b)), weight);
        Ok(())
    }

    /// Adds `weight` under `key`, growing the table as needed.
    #[inline]
    fn accumulate(&mut self, key: u64, weight: u64) {
        // Keep the load factor at or below 7/8 so probe chains stay short.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.rehash((self.keys.len() * 2).max(16));
        }
        let mask = self.keys.len() - 1;
        let mut i = (key.wrapping_mul(FIB) >> self.shift) as usize;
        loop {
            let k = self.keys[i];
            if k == key {
                self.weights[i] += weight;
                return;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.weights[i] = weight;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Re-buckets every occupied entry into a table of `capacity` slots
    /// (a power of two, strictly larger than `len / (7/8)`).
    #[cold]
    fn rehash(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; capacity]);
        let old_weights = std::mem::take(&mut self.weights);
        self.weights = vec![0; capacity];
        self.shift = 64 - capacity.trailing_zeros();
        let mask = capacity - 1;
        for (key, weight) in old_keys.into_iter().zip(old_weights) {
            if key == EMPTY {
                continue;
            }
            let mut i = (key.wrapping_mul(FIB) >> self.shift) as usize;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.weights[i] = weight;
        }
    }

    /// Iterates the accumulated edges as `(a, b, weight)` with `a < b`, in
    /// arbitrary order. Checkpointing code sorts the result to get a
    /// deterministic serialisation; casual consumers should usually
    /// [`GraphBuilder::build`] instead.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + Clone + '_ {
        self.keys
            .iter()
            .zip(&self.weights)
            .filter(|&(&k, _)| k != EMPTY)
            .map(|(&k, &w)| {
                let (a, b) = unpack(k);
                (a, b, w)
            })
    }

    /// Merges every edge of another builder into this one, summing weights.
    ///
    /// This is the graph-level primitive behind the paper's §5.2 cumulative
    /// profiles: conflict graphs from several profiling runs are merged
    /// "until the resulting graph indicates that most part of the program
    /// has been exercised". It is also the shard-delta combine of the
    /// parallel engine, so it takes the fast path: packed keys move
    /// straight between tables with no unpack/repack or validation.
    pub fn merge(&mut self, other: &GraphBuilder) -> &mut Self {
        self.nodes = self.nodes.max(other.nodes);
        let combined = self.len + other.len;
        if combined > 0 && self.keys.len() * 7 < combined * 8 {
            self.rehash((combined * 8 / 7 + 1).next_power_of_two().max(16));
        }
        for (&key, &weight) in other.keys.iter().zip(&other.weights) {
            if key != EMPTY {
                self.accumulate(key, weight);
            }
        }
        self
    }

    /// Compiles the accumulated edges into an immutable CSR graph.
    pub fn build(&self) -> ConflictGraph {
        ConflictGraph::from_edge_iter(self.nodes, self.edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_accumulate_across_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5).add_edge(1, 0, 7);
        assert_eq!(b.edge_count(), 1);
        assert_eq!(b.build().edge_weight(0, 1), Some(12));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(1, 1, 3),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(0, 2, 3),
            Err(GraphError::NodeOutOfRange { node: 2, count: 2 })
        );
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(5);
        assert_eq!(b.node_count(), 5);
        b.ensure_nodes(1);
        assert_eq!(b.node_count(), 5);
    }

    #[test]
    fn merge_sums_weights_and_grows() {
        let mut a = GraphBuilder::new(2);
        a.add_edge(0, 1, 10);
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5).add_edge(2, 3, 1);
        a.merge(&b);
        let g = a.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_weight(0, 1), Some(15));
        assert_eq!(g.edge_weight(2, 3), Some(1));
    }

    #[test]
    fn edges_iterates_canonical_pairs() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 4).add_edge(0, 1, 1).add_edge(1, 0, 2);
        let mut edges: Vec<_> = b.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 3), (0, 2, 4)]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn table_grows_through_many_distinct_edges() {
        // Push well past several rehash thresholds and verify nothing is
        // lost or double-counted.
        let n = 200u32;
        let mut b = GraphBuilder::new(n);
        let mut expected = std::collections::HashMap::new();
        for a in 0..n {
            for c in (a + 1)..n.min(a + 9) {
                let w = u64::from(a * 31 + c);
                b.add_edge(a, c, w);
                *expected.entry((a, c)).or_insert(0u64) += w;
            }
        }
        assert_eq!(b.edge_count(), expected.len());
        let mut got: Vec<_> = b.edges().collect();
        got.sort_unstable();
        let mut want: Vec<_> = expected.iter().map(|(&(a, c), &w)| (a, c, w)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn with_capacity_avoids_rehash_and_matches_plain() {
        let mut sized = GraphBuilder::with_capacity(50, 1000);
        let table_before = sized.keys.len();
        let mut plain = GraphBuilder::new(50);
        for i in 0..1000u32 {
            let (a, b) = (i % 50, (i * 7 + 1) % 50);
            if a != b {
                sized.add_edge(a, b, u64::from(i) + 1);
                plain.add_edge(a, b, u64::from(i) + 1);
            }
        }
        assert_eq!(sized.keys.len(), table_before, "no rehash occurred");
        assert_eq!(sized.build(), plain.build());
    }

    #[test]
    fn extreme_node_ids_round_trip() {
        // u32::MAX - 1 and u32::MAX pack adjacent to the EMPTY sentinel;
        // make sure neither collides with it.
        let mut b = GraphBuilder::new(u32::MAX);
        b.add_edge(u32::MAX - 1, 0, 9);
        let edges: Vec<_> = b.edges().collect();
        assert_eq!(edges, vec![(0, u32::MAX - 1, 9)]);
    }
}
