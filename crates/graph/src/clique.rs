//! Working-set extraction: clique partitioning and maximal-clique
//! enumeration.
//!
//! The paper defines a working set as "a set of conditional branch
//! instructions which form a completely interconnected subgraph in the
//! branch conflict graph" (§4.1) while noting that "many other definitions
//! of a working set are possible". Two readings are implemented:
//!
//! * [`greedy_clique_partition`] assigns every node to exactly **one**
//!   clique — the natural reading of "partitions the conditional branch
//!   instructions into working sets", and the one used for the
//!   execution-weighted dynamic average of Table 2.
//! * [`maximal_cliques`] enumerates **all** maximal cliques
//!   (Bron–Kerbosch with pivoting, capped). A branch may appear in many
//!   sets; this is the only reading consistent with Table 2's `gcc` row,
//!   where 51,888 working sets exceed the ~16k static branches.
//!
//! The `ablation_working_set` bench binary contrasts the two.

use crate::ConflictGraph;

/// Partitions all nodes into disjoint cliques, greedily growing each
/// clique around the heaviest unassigned node.
///
/// Every node appears in exactly one returned set (isolated nodes become
/// singletons), each set is a clique, and sets are returned with members
/// sorted ascending. Growth adds, at each step, the candidate with the
/// largest total edge weight into the current clique — keeping strongly
/// interleaved branches together.
///
/// # Example
///
/// ```
/// use bwsa_graph::{clique::greedy_clique_partition, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 100).add_edge(1, 2, 100).add_edge(0, 2, 100);
/// let sets = greedy_clique_partition(&b.build());
/// assert!(sets.contains(&vec![0, 1, 2]));
/// assert!(sets.contains(&vec![3])); // isolated node
/// ```
pub fn greedy_clique_partition(graph: &ConflictGraph) -> Vec<Vec<u32>> {
    let n = graph.node_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.weighted_degree(v)), v));
    let mut assigned = vec![false; n];
    let mut sets = Vec::new();
    for &seed in &order {
        if assigned[seed as usize] {
            continue;
        }
        assigned[seed as usize] = true;
        let mut clique = vec![seed];
        // Candidates: unassigned common neighbors of every clique member,
        // tracked with their accumulated edge weight into the clique.
        let mut candidates: Vec<(u32, u64)> = graph
            .neighbor_weights(seed)
            .filter(|&(v, _)| !assigned[v as usize])
            .collect();
        while let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, &(v, w))| (w, std::cmp::Reverse(v)))
            .map(|(i, _)| i)
        {
            let (chosen, _) = candidates.swap_remove(best_idx);
            assigned[chosen as usize] = true;
            clique.push(chosen);
            // Keep only candidates adjacent to the new member; fold in the
            // connecting edge weight so scores stay "weight into clique".
            candidates.retain_mut(|(v, w)| match graph.edge_weight(chosen, *v) {
                Some(extra) if !assigned[*v as usize] => {
                    *w += extra;
                    true
                }
                _ => false,
            });
        }
        clique.sort_unstable();
        sets.push(clique);
    }
    sets.sort_unstable();
    sets
}

/// Result of a (possibly capped) maximal-clique enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueEnumeration {
    /// The maximal cliques found, each sorted ascending.
    pub cliques: Vec<Vec<u32>>,
    /// `true` if enumeration stopped at the cap before completing.
    pub truncated: bool,
}

/// Enumerates maximal cliques with Bron–Kerbosch (pivoting), stopping
/// after `cap` cliques.
///
/// Dense conflict graphs can have exponentially many maximal cliques; the
/// cap bounds work while still exposing the paper's Table 2 behaviour
/// (there can be far more working sets than nodes). Isolated nodes are
/// reported as singleton cliques.
///
/// # Example
///
/// ```
/// use bwsa_graph::{clique::maximal_cliques, GraphBuilder};
///
/// // A 4-cycle has two maximal "diagonal-free" edges... actually its
/// // maximal cliques are its four edges.
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(2, 3, 1).add_edge(3, 0, 1);
/// let e = maximal_cliques(&b.build(), 100);
/// assert_eq!(e.cliques.len(), 4);
/// assert!(!e.truncated);
/// ```
pub fn maximal_cliques(graph: &ConflictGraph, cap: usize) -> CliqueEnumeration {
    let mut out = CliqueEnumeration {
        cliques: Vec::new(),
        truncated: false,
    };
    if graph.node_count() == 0 {
        return out;
    }
    let p: Vec<u32> = (0..graph.node_count() as u32).collect();
    let mut r = Vec::new();
    bron_kerbosch(graph, &mut r, p, Vec::new(), cap, &mut out);
    out.cliques.sort_unstable();
    out
}

fn intersect_neighbors(graph: &ConflictGraph, set: &[u32], v: u32) -> Vec<u32> {
    // Both `set` and the adjacency list are sorted: linear merge.
    let nbs = graph.neighbors(v);
    let mut out = Vec::with_capacity(set.len().min(nbs.len()));
    let (mut i, mut j) = (0, 0);
    while i < set.len() && j < nbs.len() {
        match set[i].cmp(&nbs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(set[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn bron_kerbosch(
    graph: &ConflictGraph,
    r: &mut Vec<u32>,
    p: Vec<u32>,
    x: Vec<u32>,
    cap: usize,
    out: &mut CliqueEnumeration,
) {
    if out.cliques.len() >= cap {
        out.truncated = true;
        return;
    }
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.cliques.push(clique);
        return;
    }
    // Pivot: the vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| intersect_neighbors(graph, &p, u).len())
        .expect("p or x non-empty");
    let pivot_nbs = graph.neighbors(pivot);
    let candidates: Vec<u32> = p
        .iter()
        .copied()
        .filter(|v| pivot_nbs.binary_search(v).is_err())
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        if out.cliques.len() >= cap {
            out.truncated = true;
            return;
        }
        r.push(v);
        let p_next = intersect_neighbors(graph, &p, v);
        let x_next = intersect_neighbors(graph, &x, v);
        bron_kerbosch(graph, r, p_next, x_next, cap, out);
        r.pop();
        // Move v from P to X (both stay sorted).
        if let Ok(i) = p.binary_search(&v) {
            p.remove(i);
        }
        if let Err(pos) = x.binary_search(&v) {
            x.insert(pos, v);
        }
    }
}

/// Summary statistics over a collection of working sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CliqueStats {
    /// Number of sets.
    pub count: usize,
    /// Unweighted mean set size.
    pub mean_size: f64,
    /// Largest set size.
    pub max_size: usize,
}

/// Computes [`CliqueStats`] for a set collection.
pub fn clique_stats(sets: &[Vec<u32>]) -> CliqueStats {
    let count = sets.len();
    let total: usize = sets.iter().map(Vec::len).sum();
    CliqueStats {
        count,
        mean_size: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        max_size: sets.iter().map(Vec::len).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles_bridged() -> ConflictGraph {
        // Triangle {0,1,2} and {3,4,5}, weak bridge 2-3.
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(x, y, 1000);
        }
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let g = two_triangles_bridged();
        let sets = greedy_clique_partition(&g);
        let mut all: Vec<u32> = sets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn partition_sets_are_cliques() {
        let g = two_triangles_bridged();
        for set in greedy_clique_partition(&g) {
            assert!(g.is_clique(&set), "{set:?} is not a clique");
        }
    }

    #[test]
    fn partition_finds_the_triangles() {
        let g = two_triangles_bridged();
        let sets = greedy_clique_partition(&g);
        assert!(sets.contains(&vec![0, 1, 2]));
        assert!(sets.contains(&vec![3, 4, 5]));
    }

    #[test]
    fn partition_of_edgeless_graph_is_singletons() {
        let sets = greedy_clique_partition(&GraphBuilder::new(3).build());
        assert_eq!(sets, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn maximal_cliques_of_bridged_triangles() {
        let g = two_triangles_bridged();
        let e = maximal_cliques(&g, 100);
        assert!(!e.truncated);
        assert_eq!(e.cliques.len(), 3, "two triangles + the bridge edge");
        assert!(e.cliques.contains(&vec![0, 1, 2]));
        assert!(e.cliques.contains(&vec![2, 3]));
        assert!(e.cliques.contains(&vec![3, 4, 5]));
    }

    #[test]
    fn maximal_cliques_are_maximal() {
        let g = two_triangles_bridged();
        for c in maximal_cliques(&g, 100).cliques {
            assert!(g.is_clique(&c));
            // No vertex outside c is adjacent to all of c.
            for v in 0..6u32 {
                if c.contains(&v) {
                    continue;
                }
                assert!(
                    !c.iter().all(|&m| g.has_edge(v, m)),
                    "{c:?} extendable by {v}"
                );
            }
        }
    }

    #[test]
    fn cap_truncates_enumeration() {
        let g = two_triangles_bridged();
        let e = maximal_cliques(&g, 1);
        assert!(e.truncated);
        assert_eq!(e.cliques.len(), 1);
    }

    #[test]
    fn isolated_nodes_are_singleton_maximal_cliques() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let e = maximal_cliques(&b.build(), 100);
        assert!(e.cliques.contains(&vec![2]));
        assert_eq!(e.cliques.len(), 2);
    }

    #[test]
    fn complete_graph_is_one_clique_both_ways() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(i, j, 7);
            }
        }
        let g = b.build();
        assert_eq!(greedy_clique_partition(&g), vec![vec![0, 1, 2, 3, 4]]);
        let e = maximal_cliques(&g, 100);
        assert_eq!(e.cliques, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn stats_handle_empty_and_nonempty() {
        let s = clique_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_size, 0.0);
        let s = clique_stats(&[vec![0, 1], vec![2, 3, 4], vec![5]]);
        assert_eq!(s.count, 3);
        assert!((s.mean_size - 2.0).abs() < 1e-12);
        assert_eq!(s.max_size, 3);
    }

    #[test]
    fn empty_graph_yields_no_cliques() {
        let g = GraphBuilder::new(0).build();
        assert!(greedy_clique_partition(&g).is_empty());
        assert!(maximal_cliques(&g, 10).cliques.is_empty());
    }
}
