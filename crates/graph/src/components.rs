//! Connected components of a conflict graph.

use crate::ConflictGraph;

/// The connected components of a graph.
///
/// Nodes are labelled with dense component ids in order of each
/// component's smallest node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: u32,
}

impl Components {
    /// Number of components (isolated nodes count as singleton components).
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The component label of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn label(&self, node: u32) -> u32 {
        self.labels[node as usize]
    }

    /// Returns `true` if two nodes share a component.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.label(a) == self.label(b)
    }

    /// Groups node ids by component, ordered by component label.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.count as usize];
        for (node, &label) in self.labels.iter().enumerate() {
            out[label as usize].push(node as u32);
        }
        out
    }
}

/// Computes connected components with an iterative DFS.
///
/// # Example
///
/// ```
/// use bwsa_graph::{components::connected_components, GraphBuilder};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 1).add_edge(2, 3, 1);
/// let c = connected_components(&b.build());
/// assert_eq!(c.count(), 2);
/// assert!(c.connected(0, 1));
/// assert!(!c.connected(1, 2));
/// ```
pub fn connected_components(graph: &ConflictGraph) -> Components {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        stack.push(start);
        while let Some(node) = stack.pop() {
            for &nb in graph.neighbors(node) {
                if labels[nb as usize] == u32::MAX {
                    labels[nb as usize] = count;
                    stack.push(nb);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn single_component_path() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(2, 3, 1);
        let c = connected_components(&b.build());
        assert_eq!(c.count(), 1);
        assert_eq!(c.groups(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let c = connected_components(&GraphBuilder::new(3).build());
        assert_eq!(c.count(), 3);
        assert_eq!(c.groups(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn labels_are_dense_and_ordered_by_smallest_node() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(3, 4, 1).add_edge(0, 2, 1);
        let c = connected_components(&b.build());
        assert_eq!(c.count(), 3);
        assert_eq!(c.label(0), 0);
        assert_eq!(c.label(2), 0);
        assert_eq!(c.label(1), 1);
        assert_eq!(c.label(3), 2);
    }

    #[test]
    fn empty_graph() {
        let c = connected_components(&GraphBuilder::new(0).build());
        assert_eq!(c.count(), 0);
        assert!(c.groups().is_empty());
    }
}
