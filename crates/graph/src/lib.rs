//! Graph substrate for branch working set analysis.
//!
//! The paper summarises branch interleaving as a **conflict graph**: nodes
//! are static conditional branches, an edge means the two branches'
//! executions interleaved, and the edge weight counts how often (§4.1,
//! Figure 2). Working sets are then "completely interconnected subgraphs"
//! (cliques), and *branch allocation* is a graph-coloring assignment of
//! branches to branch-history-table entries, directly analogous to graph
//! coloring register allocation (§5.1).
//!
//! This crate implements that machinery generically over `u32` node ids —
//! it knows nothing about branches, so it is reusable and independently
//! testable:
//!
//! * [`GraphBuilder`] / [`ConflictGraph`] — weighted undirected graphs with
//!   an accumulate-then-compile (hash map → CSR) life cycle and threshold
//!   pruning.
//! * [`clique`] — greedy clique partitioning and capped Bron–Kerbosch
//!   maximal-clique enumeration: the two working-set definitions.
//! * [`coloring`] — Chaitin-style simplify/select K-coloring that *merges*
//!   instead of spilling when colors run out, picking the least-conflict
//!   sharing as the paper prescribes.
//! * [`components`] — connected components (used for working-set sanity
//!   checks and fast per-component coloring).
//!
//! # Example
//!
//! ```
//! use bwsa_graph::{clique, coloring, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1000);
//! b.add_edge(1, 2, 50);
//! b.add_edge(0, 2, 800);
//! let g = b.build();
//!
//! // Prune incidental conflicts below a threshold (the paper uses 100).
//! let pruned = g.pruned(100);
//! assert_eq!(pruned.edge_count(), 2);
//!
//! // Two colors suffice once the weak edge is gone.
//! let coloring = coloring::color_graph(&pruned, 2, &coloring::ColoringOptions::default());
//! assert_eq!(coloring.conflict_mass, 0);
//!
//! let sets = clique::greedy_clique_partition(&pruned);
//! assert!(!sets.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builder;
pub mod clique;
pub mod coloring;
pub mod components;
pub mod dot;
mod error;
mod graph;
pub mod io;

/// Failpoint sites this crate hosts (see [`bwsa_resilience::failpoint`]).
pub mod failpoints {
    /// Fires at the start of every [`crate::coloring::try_color_graph`].
    pub const COLOR: &str = "graph.color";
    /// Every site in this crate, for chaos-sweep enumeration.
    pub const SITES: &[&str] = &[COLOR];
}

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::ConflictGraph;
