//! Graphviz DOT export of conflict graphs.
//!
//! Useful for eyeballing working-set structure on small graphs: nodes can
//! be grouped (e.g. by working set or BHT entry) and edge thickness
//! follows the interleave weight.

use crate::ConflictGraph;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Optional group label per node (same label → same fill color class);
    /// length must match the node count when present.
    pub groups: Option<Vec<u32>>,
    /// Hide nodes with no surviving edges.
    pub skip_isolated: bool,
}

/// Renders the graph in DOT format.
///
/// # Panics
///
/// Panics if `options.groups` is present with the wrong length.
///
/// # Example
///
/// ```
/// use bwsa_graph::{dot::{to_dot, DotOptions}, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 500);
/// let dot = to_dot(&b.build(), &DotOptions::default());
/// assert!(dot.starts_with("graph conflict"));
/// assert!(dot.contains("n0 -- n1"));
/// ```
pub fn to_dot(graph: &ConflictGraph, options: &DotOptions) -> String {
    if let Some(groups) = &options.groups {
        assert_eq!(
            groups.len(),
            graph.node_count(),
            "groups length must match node count"
        );
    }
    let max_weight = graph
        .iter_edges()
        .map(|(_, _, w)| w)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::from("graph conflict {\n  node [shape=circle fontsize=10];\n");
    for n in 0..graph.node_count() as u32 {
        if options.skip_isolated && graph.degree(n) == 0 {
            continue;
        }
        match &options.groups {
            Some(groups) => {
                let g = groups[n as usize];
                let _ = writeln!(
                    out,
                    "  n{n} [label=\"b{n}\" colorscheme=set312 style=filled fillcolor={}];",
                    (g % 12) + 1
                );
            }
            None => {
                let _ = writeln!(out, "  n{n} [label=\"b{n}\"];");
            }
        }
    }
    for (a, b, w) in graph.iter_edges() {
        let width = 1.0 + 4.0 * (w as f64 / max_weight as f64);
        let _ = writeln!(out, "  n{a} -- n{b} [penwidth={width:.2} label=\"{w}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> ConflictGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 100).add_edge(1, 2, 50);
        b.build()
    }

    #[test]
    fn contains_all_nodes_and_edges() {
        let dot = to_dot(&sample(), &DotOptions::default());
        for frag in ["n0 [", "n1 [", "n2 [", "n0 -- n1", "n1 -- n2"] {
            assert!(dot.contains(frag), "missing {frag} in {dot}");
        }
    }

    #[test]
    fn groups_color_nodes() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                groups: Some(vec![0, 0, 1]),
                skip_isolated: false,
            },
        );
        assert!(dot.contains("fillcolor=1"));
        assert!(dot.contains("fillcolor=2"));
    }

    #[test]
    fn skip_isolated_hides_lonely_nodes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10);
        let dot = to_dot(
            &b.build(),
            &DotOptions {
                groups: None,
                skip_isolated: true,
            },
        );
        assert!(!dot.contains("n2 ["));
    }

    #[test]
    fn weights_scale_penwidth() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(
            dot.contains("penwidth=5.00"),
            "heaviest edge gets max width"
        );
    }

    #[test]
    #[should_panic(expected = "groups length")]
    fn wrong_group_length_panics() {
        to_dot(
            &sample(),
            &DotOptions {
                groups: Some(vec![0]),
                skip_isolated: false,
            },
        );
    }
}
