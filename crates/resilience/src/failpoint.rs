//! The failpoint registry: named injection points, armed by spec.
//!
//! Pipeline code marks its fault boundaries with
//! `bwsa_resilience::failpoint!("stage.site")`. With nothing configured,
//! a site costs two relaxed atomic loads (registry armed? watchdog
//! armed?) — cheap enough for per-record paths. Arming happens through
//! [`configure`] / [`configure_from_env`] with a spec string:
//!
//! ```text
//! site=ACTION[;site=ACTION...]
//! ACTION := [COUNT*]KIND[(ARG)]
//! KIND   := off | panic | error | delay
//! ```
//!
//! Examples: `core.interleave=panic`, `trace.decode_record=error(bad
//! chunk)`, `core.shard_detect=2*panic` (fire twice, then pass),
//! `predictor.simulate=delay(25)` (milliseconds). `panic` unwinds with a
//! plain message, `error` unwinds with a typed
//! [`InjectedFault`](crate::InjectedFault) payload, and `delay` sleeps —
//! observing the [`crate::watchdog`] — then passes. Faults never return
//! error values in-band: they *unwind*, and a supervisor boundary
//! ([`crate::supervisor::catch`]) converts them to typed errors, so
//! infallible pipeline signatures stay infallible.
//!
//! Every site traversal while the registry is armed is counted
//! ([`hits`]), so the chaos suite can assert a sweep actually exercised
//! each site.

use crate::supervisor::InjectedFault;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FailAction {
    /// Pass through (used to explicitly silence a site).
    #[default]
    Off,
    /// Unwind with a plain panic message.
    Panic {
        /// The panic message.
        message: String,
    },
    /// Unwind with a typed [`InjectedFault`](crate::InjectedFault)
    /// payload.
    Error {
        /// The fault message.
        message: String,
    },
    /// Sleep for the given milliseconds, then pass.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// A malformed failpoint spec (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong with the spec.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint spec: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Default)]
struct Site {
    action: FailAction,
    /// How many more times the action fires; `None` is unlimited.
    remaining: Option<u64>,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static CELL: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(HashMap::new()))
}

// Failpoints unwind threads that may hold this lock; recover from
// poisoning instead of propagating it.
fn lock_registry() -> MutexGuard<'static, HashMap<String, Site>> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether any failpoint is configured.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms `site` with `action`, firing at most `count` times (`None` is
/// unlimited).
pub fn configure_site(site: impl Into<String>, action: FailAction, count: Option<u64>) {
    let mut reg = lock_registry();
    let entry = reg.entry(site.into()).or_default();
    entry.action = action;
    entry.remaining = count;
    ARMED.store(true, Ordering::Relaxed);
}

/// Arms failpoints from a `site=ACTION;site=ACTION` spec string.
///
/// # Errors
///
/// Returns [`ParseError`] on a malformed spec; no sites are armed in
/// that case.
pub fn configure(spec: &str) -> Result<(), ParseError> {
    let mut parsed = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action_spec) = entry.split_once('=').ok_or_else(|| ParseError {
            reason: format!("'{entry}' has no '=' (expected site=ACTION)"),
        })?;
        let site = site.trim();
        if site.is_empty() {
            return Err(ParseError {
                reason: format!("'{entry}' has an empty site name"),
            });
        }
        let (action, count) = parse_action(action_spec.trim())?;
        parsed.push((site.to_string(), action, count));
    }
    for (site, action, count) in parsed {
        configure_site(site, action, count);
    }
    Ok(())
}

/// Arms failpoints from the `BWSA_FAILPOINTS` environment variable;
/// returns whether anything was configured.
///
/// # Errors
///
/// Returns [`ParseError`] when the variable is set but malformed.
pub fn configure_from_env() -> Result<bool, ParseError> {
    match std::env::var("BWSA_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn parse_action(spec: &str) -> Result<(FailAction, Option<u64>), ParseError> {
    let (count, spec) = match spec.split_once('*') {
        Some((count, rest)) => {
            let count = count.trim().parse::<u64>().map_err(|_| ParseError {
                reason: format!("'{spec}' has a non-numeric trigger count"),
            })?;
            (Some(count), rest.trim())
        }
        None => (None, spec),
    };
    let (kind, arg) = match spec.split_once('(') {
        Some((kind, rest)) => {
            let arg = rest.strip_suffix(')').ok_or_else(|| ParseError {
                reason: format!("'{spec}' has an unterminated argument"),
            })?;
            (kind.trim(), Some(arg.trim()))
        }
        None => (spec.trim(), None),
    };
    let action = match kind {
        "off" => FailAction::Off,
        "panic" => FailAction::Panic {
            message: arg.unwrap_or("injected panic").to_string(),
        },
        "error" => FailAction::Error {
            message: arg.unwrap_or("injected fault").to_string(),
        },
        "delay" => FailAction::Delay {
            millis: match arg {
                Some(ms) => ms.parse().map_err(|_| ParseError {
                    reason: format!("'{spec}' has a non-numeric delay"),
                })?,
                None => 10,
            },
        },
        other => {
            return Err(ParseError {
                reason: format!("unknown failpoint kind '{other}'"),
            })
        }
    };
    Ok((action, count))
}

/// Disarms every failpoint and clears all hit counters.
pub fn clear() {
    ARMED.store(false, Ordering::Relaxed);
    lock_registry().clear();
}

/// How many times execution traversed `site` while the registry was
/// armed (whether or not the site was configured to act).
pub fn hits(site: &str) -> u64 {
    lock_registry().get(site).map_or(0, |s| s.hits)
}

/// Arms a spec and returns a guard that [`clear`]s the registry when
/// dropped — the safe way for tests to scope failpoints.
///
/// # Errors
///
/// Returns [`ParseError`] on a malformed spec.
pub fn scoped(spec: &str) -> Result<ScopedFailpoints, ParseError> {
    configure(spec)?;
    Ok(ScopedFailpoints { _private: () })
}

/// Clears the failpoint registry on drop; returned by [`scoped`].
#[derive(Debug)]
pub struct ScopedFailpoints {
    _private: (),
}

impl Drop for ScopedFailpoints {
    fn drop(&mut self) {
        clear();
    }
}

/// The slow path behind the [`failpoint!`](crate::failpoint!) macro; use
/// the macro, not this, at injection sites.
#[inline]
pub fn check(site: &str) {
    if armed() {
        check_armed(site);
    }
    crate::watchdog::observe(site);
}

#[cold]
fn check_armed(site: &str) {
    let action = {
        let mut reg = lock_registry();
        let entry = reg.entry(site.to_string()).or_default();
        entry.hits += 1;
        match entry.remaining {
            Some(0) => FailAction::Off,
            ref mut remaining => {
                if let Some(n) = remaining {
                    *n -= 1;
                }
                entry.action.clone()
            }
        }
    };
    // The registry lock is released before acting: unwinding while
    // holding it would poison every other site.
    match action {
        FailAction::Off => {}
        FailAction::Panic { message } => panic!("failpoint '{site}': {message}"),
        FailAction::Error { message } => std::panic::panic_any(InjectedFault {
            site: site.to_string(),
            message,
        }),
        FailAction::Delay { millis } => {
            crate::watchdog::sleep_observing(Duration::from_millis(millis), site);
        }
    }
}

/// Marks a failpoint site. Costs two relaxed atomic loads when nothing
/// is armed; see the [module docs](crate::failpoint) for arming specs.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::failpoint::check($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{catch, ResilienceError};

    // The registry is a process global; serialise the tests that arm it.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_failpoints_pass_through() {
        let _serial = serial();
        clear();
        failpoint!("tests.site");
        assert_eq!(hits("tests.site"), 0, "hits only count while armed");
    }

    #[test]
    fn error_mode_unwinds_with_a_typed_payload() {
        let _serial = serial();
        let _guard = scoped("tests.site=error(bad block)").unwrap();
        let err = catch(|| failpoint!("tests.site")).unwrap_err();
        assert_eq!(
            err,
            ResilienceError::Injected {
                site: "tests.site".into(),
                message: "bad block".into()
            }
        );
        assert_eq!(hits("tests.site"), 1);
    }

    #[test]
    fn panic_mode_unwinds_with_a_message() {
        let _serial = serial();
        let _guard = scoped("tests.site=panic(kaput)").unwrap();
        let err = catch(|| failpoint!("tests.site")).unwrap_err();
        match err {
            ResilienceError::Panic { message } => {
                assert!(message.contains("tests.site") && message.contains("kaput"))
            }
            other => panic!("expected a panic classification, got {other:?}"),
        }
    }

    #[test]
    fn counted_actions_exhaust() {
        let _serial = serial();
        let _guard = scoped("tests.site=2*error").unwrap();
        assert!(catch(|| failpoint!("tests.site")).is_err());
        assert!(catch(|| failpoint!("tests.site")).is_err());
        assert!(catch(|| failpoint!("tests.site")).is_ok(), "third pass");
        assert_eq!(hits("tests.site"), 3, "exhausted passes still count");
    }

    #[test]
    fn unconfigured_sites_count_hits_while_armed() {
        let _serial = serial();
        let _guard = scoped("tests.other=off").unwrap();
        failpoint!("tests.site");
        assert_eq!(hits("tests.site"), 1);
    }

    #[test]
    fn delay_mode_sleeps_then_passes() {
        let _serial = serial();
        let _guard = scoped("tests.site=delay(15)").unwrap();
        let start = std::time::Instant::now();
        failpoint!("tests.site");
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn multi_site_specs_and_whitespace_parse() {
        let _serial = serial();
        let _guard = scoped(" a.b = panic ; c.d = 3*delay(7) ; ").unwrap();
        let reg = lock_registry();
        assert!(matches!(reg["a.b"].action, FailAction::Panic { .. }));
        assert_eq!(reg["c.d"].action, FailAction::Delay { millis: 7 });
        assert_eq!(reg["c.d"].remaining, Some(3));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _serial = serial();
        for bad in [
            "no-equals",
            "=panic",
            "a.b=explode",
            "a.b=x*panic",
            "a.b=delay(ms)",
            "a.b=panic(unterminated",
        ] {
            assert!(configure(bad).is_err(), "accepted {bad:?}");
        }
        clear();
    }

    #[test]
    fn env_configuration_reads_bwsa_failpoints() {
        let _serial = serial();
        clear();
        // Unset → nothing armed.
        std::env::remove_var("BWSA_FAILPOINTS");
        assert_eq!(configure_from_env(), Ok(false));
        assert!(!armed());
        std::env::set_var("BWSA_FAILPOINTS", "tests.env=error");
        assert_eq!(configure_from_env(), Ok(true));
        assert!(armed());
        std::env::remove_var("BWSA_FAILPOINTS");
        clear();
    }
}
