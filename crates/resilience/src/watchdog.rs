//! A cooperative deadline watchdog.
//!
//! Safe Rust cannot kill a stuck thread, so the watchdog is cooperative:
//! the supervisor [`arm`]s a process-wide deadline, and every
//! [`failpoint!`](crate::failpoint) site doubles as a cancellation point
//! that [`observe`]s it. When the deadline has passed, the observing
//! thread unwinds with a [`DeadlineExceeded`] payload, which
//! [`supervisor::catch`](crate::supervisor::catch) converts into
//! [`ResilienceError::Timeout`](crate::ResilienceError::Timeout).
//!
//! Granularity therefore equals failpoint-site density: a stage with no
//! sites in its inner loop is only cancelled at its boundaries. Delay-mode
//! failpoints sleep in small slices and observe between them, so injected
//! stalls never outlive the deadline by more than one slice.
//!
//! Disarmed, [`observe`] costs one relaxed atomic load.

use crate::supervisor::DeadlineExceeded;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

static ARMED: AtomicBool = AtomicBool::new(false);

/// How many threads currently hold a local (per-thread) deadline; lets
/// [`observe`] skip the thread-local read entirely when nobody does.
static LOCAL_ARMED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

fn deadline_cell() -> &'static Mutex<Option<Instant>> {
    static CELL: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

// The watchdog unwinds threads that may hold this lock; recover the
// guard from poisoning instead of propagating it.
fn lock_deadline() -> MutexGuard<'static, Option<Instant>> {
    deadline_cell()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms the process-wide deadline; returns a guard that disarms it when
/// dropped (including during an unwind).
///
/// Arming while already armed replaces the previous deadline.
#[must_use = "the deadline is disarmed when the guard drops"]
pub fn arm(deadline: Instant) -> WatchdogGuard {
    *lock_deadline() = Some(deadline);
    ARMED.store(true, Ordering::Relaxed);
    WatchdogGuard { _private: () }
}

/// Disarms the deadline immediately.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *lock_deadline() = None;
}

/// Disarms the watchdog on drop; returned by [`arm`].
#[derive(Debug)]
pub struct WatchdogGuard {
    _private: (),
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms a deadline **for the calling thread only**; returns a guard that
/// disarms it when dropped (including during an unwind).
///
/// Where [`arm`] is process-wide (one supervisor, many workers), a local
/// deadline isolates concurrent supervised tasks from each other: a
/// multi-tenant server gives every request thread its own budget without
/// the requests clobbering one shared deadline. Cancellation points
/// ([`observe`]) check the local deadline first, then the global one.
///
/// Local deadlines do not nest — arming while a local deadline is armed
/// on this thread replaces it, and the guard clears it entirely.
#[must_use = "the local deadline is disarmed when the guard drops"]
pub fn arm_local(deadline: Instant) -> LocalWatchdogGuard {
    let replaced = LOCAL_DEADLINE.with(|c| c.replace(Some(deadline)));
    if replaced.is_none() {
        LOCAL_ARMED.fetch_add(1, Ordering::SeqCst);
    }
    LocalWatchdogGuard { _private: () }
}

/// Disarms the calling thread's local deadline on drop; returned by
/// [`arm_local`].
#[derive(Debug)]
pub struct LocalWatchdogGuard {
    _private: (),
}

impl Drop for LocalWatchdogGuard {
    fn drop(&mut self) {
        if LOCAL_DEADLINE.with(|c| c.replace(None)).is_some() {
            LOCAL_ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Time left before the armed deadline; `None` when disarmed, zero when
/// already past.
pub fn remaining() -> Option<Duration> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    (*lock_deadline()).map(|d| d.saturating_duration_since(Instant::now()))
}

/// Cancellation point: unwinds with [`DeadlineExceeded`] if the armed
/// deadline has passed. Every failpoint site calls this.
#[inline]
pub fn observe(site: &str) {
    if LOCAL_ARMED.load(Ordering::Relaxed) > 0 {
        observe_local(site);
    }
    if ARMED.load(Ordering::Relaxed) {
        observe_armed(site);
    }
}

#[cold]
fn observe_local(site: &str) {
    let expired = LOCAL_DEADLINE.with(|c| matches!(c.get(), Some(d) if Instant::now() >= d));
    if expired {
        std::panic::panic_any(DeadlineExceeded {
            site: site.to_string(),
        });
    }
}

#[cold]
fn observe_armed(site: &str) {
    let expired = matches!(*lock_deadline(), Some(d) if Instant::now() >= d);
    if expired {
        std::panic::panic_any(DeadlineExceeded {
            site: site.to_string(),
        });
    }
}

/// Sleeps for `total`, observing the deadline between small slices so an
/// injected delay cannot stall past an armed deadline.
pub fn sleep_observing(total: Duration, site: &str) {
    const SLICE: Duration = Duration::from_millis(5);
    let until = Instant::now() + total;
    loop {
        observe(site);
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(SLICE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{catch, ResilienceError};

    // The watchdog is a process global; serialise the tests that arm it.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_observe_is_a_no_op() {
        let _serial = serial();
        disarm();
        observe("any.site");
        assert_eq!(remaining(), None);
    }

    #[test]
    fn expired_deadline_unwinds_as_timeout() {
        let _serial = serial();
        let result = catch(|| {
            let _guard = arm(Instant::now() - Duration::from_millis(1));
            observe("core.interleave");
        });
        assert_eq!(
            result,
            Err(ResilienceError::Timeout {
                site: "core.interleave".into()
            })
        );
        assert!(!ARMED.load(Ordering::Relaxed), "guard disarmed on unwind");
    }

    #[test]
    fn future_deadline_lets_work_proceed() {
        let _serial = serial();
        let guard = arm(Instant::now() + Duration::from_secs(60));
        observe("core.interleave");
        assert!(remaining().is_some_and(|d| d > Duration::from_secs(30)));
        drop(guard);
        assert_eq!(remaining(), None);
    }

    #[test]
    fn local_deadlines_are_per_thread() {
        let _serial = serial();
        disarm();
        // This thread's local deadline is already past…
        let result = catch(|| {
            let _guard = arm_local(Instant::now() - Duration::from_millis(1));
            observe("server.dispatch");
        });
        assert!(matches!(result, Err(ResilienceError::Timeout { .. })));
        assert_eq!(
            LOCAL_ARMED.load(Ordering::SeqCst),
            0,
            "guard disarmed on unwind"
        );
        // …while another thread with its own healthy budget is untouched,
        // even while this thread holds an expired local deadline.
        let _expired = arm_local(Instant::now() - Duration::from_millis(1));
        std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = arm_local(Instant::now() + Duration::from_secs(60));
                observe("server.dispatch"); // must not unwind
            })
            .join()
            .expect("the sibling thread's deadline is its own");
            s.spawn(|| {
                observe("server.dispatch"); // no local deadline at all
            })
            .join()
            .expect("threads without a local deadline are unaffected");
        });
    }

    #[test]
    fn rearming_a_local_deadline_replaces_it() {
        let _serial = serial();
        disarm();
        let _first = arm_local(Instant::now() - Duration::from_millis(1));
        let second = arm_local(Instant::now() + Duration::from_secs(60));
        observe("server.dispatch"); // replaced deadline is in the future
        drop(second);
        assert_eq!(LOCAL_ARMED.load(Ordering::SeqCst), 0);
        observe("server.dispatch"); // fully disarmed, no TLS re-read
    }

    #[test]
    fn observed_sleep_aborts_at_the_deadline() {
        let _serial = serial();
        let start = Instant::now();
        let result = catch(|| {
            let _guard = arm(Instant::now() + Duration::from_millis(20));
            sleep_observing(Duration::from_secs(10), "delay.site");
        });
        assert!(matches!(result, Err(ResilienceError::Timeout { .. })));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "did not sleep 10s"
        );
    }
}
