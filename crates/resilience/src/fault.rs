//! Deterministic byte-corruption fault injection.
//!
//! [`FaultyReader`] wraps any [`Read`] source and serves its bytes with a
//! [`FaultPlan`] applied: bit flips, truncation, and in-place chunk
//! duplication. Plans are either hand-built for targeted tests or derived
//! from a seed ([`FaultPlan::random`], driven by [`crate::DetRng`]) so
//! property tests explore many corruption shapes reproducibly.
//!
//! Faults are positioned by a fraction of the *mutable region* — the
//! stream past a caller-chosen protected prefix (normally a file header)
//! — so the same plan scales to streams of any length and never destroys
//! the header that salvage readers need to even start.
//!
//! This is the one fault model for the workspace: the trace-salvage
//! property tests (via the `bwsa_trace::fault` re-export) and the chaos
//! suite both draw corruption from it.
//!
//! # Example
//!
//! ```
//! use bwsa_resilience::fault::{Fault, FaultPlan};
//!
//! let mut data: Vec<u8> = (0u8..=255).collect();
//! let plan = FaultPlan::new().with(Fault::BitFlip { position: 0.5, bit: 3 });
//! plan.apply(&mut data, 4); // first 4 bytes are protected
//! // halfway into the 252-byte mutable region: byte 4 + 126
//! assert_eq!(data[130] ^ 130u8, 1 << 3);
//! ```

use crate::det::DetRng;
use std::io::{self, Read};

/// One injected fault. Positions are fractions in `[0, 1)` of the mutable
/// region (everything past the protected prefix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Flips bit `bit & 7` of the byte at `position`.
    BitFlip {
        /// Fractional position of the target byte.
        position: f64,
        /// Which bit to flip (taken modulo 8).
        bit: u8,
    },
    /// Cuts the stream off at `position` — everything after is lost.
    Truncate {
        /// Fractional position of the cut.
        position: f64,
    },
    /// Re-inserts the `len` bytes starting at `position` immediately after
    /// themselves, as a torn rewrite/replay would.
    Duplicate {
        /// Fractional position of the first duplicated byte.
        position: f64,
        /// How many bytes to duplicate.
        len: usize,
    },
}

/// An ordered list of faults to apply to a byte stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (applies no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault; faults apply in insertion order.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Derives `count` faults deterministically from `seed`. The mix
    /// favours bit flips (the common medium fault), with occasional
    /// duplication, and at most one trailing truncation.
    pub fn random(seed: u64, count: usize) -> Self {
        let mut rng = DetRng::new(seed);
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let roll = rng.below(10);
            let position = rng.unit_f64();
            faults.push(match roll {
                0..=6 => Fault::BitFlip {
                    position,
                    bit: rng.below(8) as u8,
                },
                7 | 8 => Fault::Duplicate {
                    position,
                    len: 1 + rng.below(255) as usize,
                },
                _ => Fault::Truncate {
                    // Keep truncation in the back half so something
                    // survives to salvage.
                    position: 0.5 + position / 2.0,
                },
            });
        }
        // Truncation last: later faults would otherwise resurrect bytes.
        faults.sort_by_key(|f| matches!(f, Fault::Truncate { .. }));
        if let Some(first_cut) = faults
            .iter()
            .position(|f| matches!(f, Fault::Truncate { .. }))
        {
            faults.truncate(first_cut + 1);
        }
        FaultPlan { faults }
    }

    /// The planned faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies the plan to `data`, leaving the first `protect` bytes
    /// untouched.
    pub fn apply(&self, data: &mut Vec<u8>, protect: usize) {
        for fault in &self.faults {
            let mutable = data.len().saturating_sub(protect);
            if mutable == 0 {
                return;
            }
            let at = |position: f64| -> usize {
                let f = position.clamp(0.0, 1.0 - f64::EPSILON);
                protect + ((f * mutable as f64) as usize).min(mutable - 1)
            };
            match *fault {
                Fault::BitFlip { position, bit } => {
                    let i = at(position);
                    data[i] ^= 1 << (bit & 7);
                }
                Fault::Truncate { position } => {
                    data.truncate(at(position));
                }
                Fault::Duplicate { position, len } => {
                    let start = at(position);
                    let len = len.clamp(1, data.len() - start);
                    let copy = data[start..start + len].to_vec();
                    let tail = data.split_off(start + len);
                    data.extend_from_slice(&copy);
                    data.extend_from_slice(&tail);
                }
            }
        }
    }
}

/// A [`Read`] adapter that serves its inner source's bytes with a
/// [`FaultPlan`] applied.
///
/// The source is drained eagerly at construction (this is a test harness,
/// not a production path) so faults that need global positions —
/// truncation, duplication — can be applied exactly.
#[derive(Debug)]
pub struct FaultyReader<R> {
    data: Vec<u8>,
    pos: usize,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Read> FaultyReader<R> {
    /// Reads `source` to the end, applies `plan` (protecting the first
    /// `protect` bytes), and serves the result.
    ///
    /// # Errors
    ///
    /// Returns the source's I/O error, if any.
    pub fn new(mut source: R, plan: FaultPlan, protect: usize) -> io::Result<Self> {
        let mut data = Vec::new();
        source.read_to_end(&mut data)?;
        plan.apply(&mut data, protect);
        Ok(FaultyReader {
            data,
            pos: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// The faulted bytes this reader serves.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<u8> {
        (0u8..=255).collect()
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut d = data();
        FaultPlan::new().apply(&mut d, 0);
        assert_eq!(d, data());
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut d = data();
        FaultPlan::new()
            .with(Fault::BitFlip {
                position: 0.5,
                bit: 2,
            })
            .apply(&mut d, 0);
        let diff: Vec<usize> = d
            .iter()
            .zip(data())
            .enumerate()
            .filter(|(_, (a, b))| **a != *b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff, vec![128]);
        assert_eq!(d[128] ^ data()[128], 1 << 2);
    }

    #[test]
    fn protect_shields_the_prefix() {
        let mut d = data();
        FaultPlan::new()
            .with(Fault::BitFlip {
                position: 0.0,
                bit: 0,
            })
            .apply(&mut d, 100);
        assert_eq!(d[..100], data()[..100]);
        assert_ne!(d[100], data()[100]);
    }

    #[test]
    fn truncate_cuts_the_tail() {
        let mut d = data();
        FaultPlan::new()
            .with(Fault::Truncate { position: 0.25 })
            .apply(&mut d, 0);
        assert_eq!(d, data()[..64]);
    }

    #[test]
    fn duplicate_replays_a_run() {
        let mut d = vec![0, 1, 2, 3, 4, 5];
        FaultPlan::new()
            .with(Fault::Duplicate {
                position: 0.34,
                len: 2,
            })
            .apply(&mut d, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 3, 4, 5]);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(7, 5);
        let b = FaultPlan::random(7, 5);
        let c = FaultPlan::random(8, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.faults().is_empty());
    }

    #[test]
    fn random_plan_truncates_at_most_once_and_last() {
        for seed in 0..50 {
            let plan = FaultPlan::random(seed, 8);
            let cuts = plan
                .faults()
                .iter()
                .filter(|f| matches!(f, Fault::Truncate { .. }))
                .count();
            assert!(cuts <= 1, "seed {seed} planned {cuts} truncations");
            if cuts == 1 {
                assert!(
                    matches!(plan.faults().last(), Some(Fault::Truncate { .. })),
                    "seed {seed} truncates before other faults"
                );
            }
        }
    }

    #[test]
    fn random_plans_explore_every_fault_kind() {
        let mut flips = 0;
        let mut cuts = 0;
        let mut dups = 0;
        for seed in 0..100 {
            for fault in FaultPlan::random(seed, 6).faults() {
                match fault {
                    Fault::BitFlip { .. } => flips += 1,
                    Fault::Truncate { .. } => cuts += 1,
                    Fault::Duplicate { .. } => dups += 1,
                }
            }
        }
        assert!(flips > 0 && cuts > 0 && dups > 0, "{flips}/{cuts}/{dups}");
    }

    #[test]
    fn faulty_reader_serves_mutated_bytes() {
        let plan = FaultPlan::new().with(Fault::BitFlip {
            position: 0.0,
            bit: 7,
        });
        let src = data();
        let mut r = FaultyReader::new(&src[..], plan, 0).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 256);
        assert_eq!(out[0], 0x80);
        assert_eq!(out[1..], data()[1..]);
    }
}
