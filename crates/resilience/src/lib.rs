//! Fault injection and supervision primitives for the BWSA pipeline.
//!
//! This crate sits **below** every other `bwsa-*` crate (it depends only
//! on `std`) so that any layer can host failpoint sites and any harness
//! can supervise them. It provides four things:
//!
//! - [`failpoint!`]: a zero-cost-when-disabled injection point. Disabled,
//!   a site costs two relaxed atomic loads; armed (via
//!   [`failpoint::configure`] or the `BWSA_FAILPOINTS` environment
//!   variable), a site can panic, raise a typed [`InjectedFault`], or
//!   delay — deterministically, with optional trigger counts.
//! - [`watchdog`]: a cooperative deadline. Every failpoint site doubles
//!   as a cancellation point, so an armed deadline unwinds a stuck stage
//!   at its next site instead of requiring killable threads.
//! - [`supervisor`]: [`supervisor::catch`] converts unwinds (injected or
//!   genuine) into a typed [`ResilienceError`], plus [`Backoff`] for
//!   bounded exponential retry delays.
//! - [`fault`]: the byte-corruption fault model ([`Fault`], [`FaultPlan`],
//!   [`FaultyReader`]) shared by the trace-salvage property tests and the
//!   chaos suite, driven by the dependency-free deterministic [`DetRng`].
//!
//! The failpoint registry, watchdog, and hit counters are **process
//! globals**: tests that arm them must serialise against each other (the
//! chaos suite takes a lock) and clear state when done (use
//! [`failpoint::scoped`]).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod det;
pub mod failpoint;
pub mod fault;
pub mod supervisor;
pub mod watchdog;

pub use det::DetRng;
pub use fault::{Fault, FaultPlan, FaultyReader};
pub use supervisor::{Backoff, InjectedFault, ResilienceError};
