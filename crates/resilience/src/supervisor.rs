//! Panic containment and retry pacing for supervised execution.
//!
//! [`catch`] is the boundary between "code that may unwind" (worker
//! closures, pipeline stages with failpoints, third-party panics) and
//! "code that reasons about failures": it converts any unwind into a
//! typed [`ResilienceError`], recognising the payloads this crate's
//! failpoints and watchdog raise. [`Backoff`] produces the bounded
//! exponential delays a supervisor sleeps between retries.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Panic payload raised by a failpoint in `error` mode.
///
/// Error-mode failpoints unwind with this payload instead of changing
/// infallible function signatures; [`catch`] downcasts it back into
/// [`ResilienceError::Injected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint site that fired (e.g. `core.interleave`).
    pub site: String,
    /// The configured fault message.
    pub message: String,
}

/// Panic payload raised by the [`crate::watchdog`] when a deadline
/// passes; [`catch`] turns it into [`ResilienceError::Timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The cancellation point that observed the expired deadline.
    pub site: String,
}

/// A failure a supervisor isolated: what went wrong, in a form a caller
/// can match on, log, and convert into the workspace error type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResilienceError {
    /// A failpoint in `error` mode fired.
    Injected {
        /// The site that fired.
        site: String,
        /// The configured message.
        message: String,
    },
    /// Code under supervision panicked (including `panic`-mode
    /// failpoints).
    Panic {
        /// The panic message, or a placeholder for non-string payloads.
        message: String,
    },
    /// A watchdog deadline expired.
    Timeout {
        /// The cancellation point that observed the expiry.
        site: String,
    },
    /// The soft memory budget was exceeded.
    MemoryBudget {
        /// Observed peak RSS in bytes.
        peak_bytes: u64,
        /// The configured budget in bytes.
        budget_bytes: u64,
    },
}

impl ResilienceError {
    /// Classifies a caught panic payload.
    pub fn from_panic_payload(payload: Box<dyn Any + Send>) -> Self {
        let payload = match payload.downcast::<InjectedFault>() {
            Ok(fault) => {
                return ResilienceError::Injected {
                    site: fault.site,
                    message: fault.message,
                }
            }
            Err(other) => other,
        };
        let payload = match payload.downcast::<DeadlineExceeded>() {
            Ok(deadline) => {
                return ResilienceError::Timeout {
                    site: deadline.site,
                }
            }
            Err(other) => other,
        };
        let message = if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else {
            "non-string panic payload".to_string()
        };
        ResilienceError::Panic { message }
    }

    /// Whether retrying the failed work could plausibly succeed.
    ///
    /// Timeouts and memory-budget failures are pressure signals — the
    /// same work will hit them again — so a supervisor should degrade
    /// instead of retrying.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ResilienceError::Injected { .. } | ResilienceError::Panic { .. }
        )
    }
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Injected { site, message } => {
                write!(f, "injected fault at '{site}': {message}")
            }
            ResilienceError::Panic { message } => write!(f, "isolated panic: {message}"),
            ResilienceError::Timeout { site } => {
                write!(f, "deadline exceeded (observed at '{site}')")
            }
            ResilienceError::MemoryBudget {
                peak_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: peak rss {peak_bytes} bytes over budget {budget_bytes}"
            ),
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Runs `f`, converting any unwind into a typed [`ResilienceError`].
///
/// This is the supervisor's containment boundary: failpoint unwinds come
/// back as [`ResilienceError::Injected`] / [`ResilienceError::Timeout`],
/// genuine panics as [`ResilienceError::Panic`].
pub fn catch<T>(f: impl FnOnce() -> T) -> Result<T, ResilienceError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(ResilienceError::from_panic_payload)
}

/// Bounded exponential backoff: each [`Backoff::delay`] call returns the
/// next sleep, doubling from `base` up to `cap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    next: Duration,
    cap: Duration,
}

impl Backoff {
    /// A backoff starting at `base` and capped at `64 * base`.
    pub fn new(base: Duration) -> Self {
        Backoff {
            base,
            next: base,
            cap: base.saturating_mul(64),
        }
    }

    /// A backoff starting at `base`, never exceeding `cap`.
    pub fn with_cap(base: Duration, cap: Duration) -> Self {
        Backoff {
            base: base.min(cap),
            next: base.min(cap),
            cap,
        }
    }

    /// The delay to sleep before the next retry; doubles on each call.
    pub fn delay(&mut self) -> Duration {
        let current = self.next;
        self.next = self.next.saturating_mul(2).min(self.cap);
        current
    }

    /// A decorrelated-jitter delay: uniform in `[base, 3 * previous]`,
    /// capped, where "previous" is whatever this call last returned.
    ///
    /// Jitter spreads retry storms: clients that failed together retry
    /// apart. The randomness comes from the caller's [`crate::DetRng`],
    /// so a fixed seed replays the exact same delay sequence — chaos
    /// tests and retry-after hints stay deterministic.
    pub fn delay_jittered(&mut self, rng: &mut crate::DetRng) -> Duration {
        let base = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.next.as_nanos().min(u128::from(u64::MAX)) as u64;
        let hi = prev.saturating_mul(3).max(base.saturating_add(1));
        let nanos = base + rng.below(hi - base);
        let current = Duration::from_nanos(nanos).min(self.cap).max(self.base);
        self.next = current;
        current
    }

    /// Forgets accumulated growth: the next delay starts from `base`
    /// again. Admission ladders call this when pressure clears.
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_passes_values_through() {
        assert_eq!(catch(|| 7), Ok(7));
    }

    #[test]
    fn catch_classifies_injected_faults() {
        let err = catch(|| {
            std::panic::panic_any(InjectedFault {
                site: "core.interleave".into(),
                message: "boom".into(),
            })
        })
        .unwrap_err();
        assert_eq!(
            err,
            ResilienceError::Injected {
                site: "core.interleave".into(),
                message: "boom".into()
            }
        );
        assert!(err.is_retryable());
        assert!(err.to_string().contains("core.interleave"));
    }

    #[test]
    fn catch_classifies_deadlines_as_timeouts() {
        let err = catch(|| {
            std::panic::panic_any(DeadlineExceeded {
                site: "core.shard_detect".into(),
            })
        })
        .unwrap_err();
        assert_eq!(
            err,
            ResilienceError::Timeout {
                site: "core.shard_detect".into()
            }
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn catch_classifies_plain_panics() {
        let err = catch(|| panic!("kaput {}", 3)).unwrap_err();
        assert_eq!(
            err,
            ResilienceError::Panic {
                message: "kaput 3".into()
            }
        );
        let err = catch(|| std::panic::panic_any(42u32)).unwrap_err();
        assert!(matches!(err, ResilienceError::Panic { .. }));
    }

    #[test]
    fn backoff_doubles_to_the_cap() {
        let mut b = Backoff::with_cap(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(b.delay(), Duration::from_millis(10));
        assert_eq!(b.delay(), Duration::from_millis(20));
        assert_eq!(b.delay(), Duration::from_millis(35));
        assert_eq!(b.delay(), Duration::from_millis(35));
    }

    #[test]
    fn jittered_delays_stay_within_base_and_cap() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_millis(200);
        let mut b = Backoff::with_cap(base, cap);
        let mut rng = crate::DetRng::new(99);
        for _ in 0..500 {
            let d = b.delay_jittered(&mut rng);
            assert!(d >= base, "delay {d:?} under base");
            assert!(d <= cap, "delay {d:?} over cap");
        }
    }

    #[test]
    fn jittered_delays_are_deterministic_per_seed_and_actually_jitter() {
        let mk = || Backoff::with_cap(Duration::from_millis(10), Duration::from_secs(1));
        let seq = |seed: u64| {
            let mut b = mk();
            let mut rng = crate::DetRng::new(seed);
            (0..20)
                .map(|_| b.delay_jittered(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7), "equal seeds must replay equal delays");
        assert_ne!(seq(7), seq(8), "different seeds must diverge");
        let s = seq(7);
        assert!(
            s.windows(2).any(|w| w[0] != w[1]),
            "a jittered sequence must vary: {s:?}"
        );
    }

    #[test]
    fn jittered_backoff_resets_to_base_pressure() {
        let base = Duration::from_millis(10);
        let mut b = Backoff::with_cap(base, Duration::from_secs(5));
        let mut rng = crate::DetRng::new(1);
        // Let it grow, then reset: the next delay is again bounded by
        // the first-call window [base, 3*base).
        for _ in 0..50 {
            b.delay_jittered(&mut rng);
        }
        b.reset();
        let d = b.delay_jittered(&mut rng);
        assert!(d < base * 3, "after reset the window restarts: {d:?}");
    }
}
