//! A tiny deterministic RNG shared by the fault model and test harnesses.
//!
//! The workspace's external `rand` stand-in lives *above* this crate in
//! the dependency order, so resilience carries its own generator: a
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c) stepper. It is not
//! cryptographic and does not need to be — plans derived from it only
//! have to be reproducible per seed.

/// A splitmix64 deterministic random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator seeded with `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`; `bound` of zero returns zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction: unbiased enough for fault placement.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_yield_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_the_bound() {
        let mut rng = DetRng::new(7);
        for bound in [1u64, 2, 8, 10, 255] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_f64_stays_in_range_and_varies() {
        let mut rng = DetRng::new(1);
        let samples: Vec<f64> = (0..100).map(|_| rng.unit_f64()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(samples.iter().any(|v| *v > 0.5));
        assert!(samples.iter().any(|v| *v < 0.5));
    }
}
