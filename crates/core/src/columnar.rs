//! Columnar (`BWSS3`) ingest for the analysis engines: footer-driven
//! shard planning and parallel block-range decode.
//!
//! A `BWSS2` stream must be scanned end to end before it can be split
//! for parallel work, so on ingest-bound corpora extra workers used to
//! *lose* time — every worker still paid the full per-record decode.
//! The `BWSS3` footer ([`bwsa_trace::columnar::Footer`]) carries a block
//! index (offset + record count per block), which makes shard planning
//! O(1) seeks: [`plan_block_shards`] balances contiguous block ranges by
//! record count without touching the data, and [`decode_columnar`] fans
//! the ranges out over [`parallel_map`], each worker decoding its blocks
//! independently (ids are pre-interned against the footer directory).
//! The assembled [`Trace`] is byte-identical to a serial decode.
//!
//! [`analyze_columnar_stream`] is the constant-memory alternative: it
//! walks blocks through [`bwsa_trace::columnar::BlockDecoder`]'s
//! reusable SoA scratch and feeds the flat engines record by record,
//! never materialising the trace.

use crate::checkpoint::StreamingAnalysis;
use crate::parallel::parallel_map;
use crate::pipeline::{Analysis, AnalysisPipeline};
use bwsa_obs::Obs;
use bwsa_trace::columnar::{BlockDecoder, ColumnarFile};
use bwsa_trace::stream::{RecoveryPolicy, SalvageReport};
use bwsa_trace::{
    BranchId, BranchRecord, BranchTable, Direction, InstrCount, Pc, Trace, TraceError, TraceMeta,
};
use std::ops::Range;

/// Record count below which [`decode_columnar`] decodes serially even
/// when asked for more jobs: fanning out a sub-128k-record file loses
/// more to worker setup and shard stitching than the decode costs.
pub const PARALLEL_DECODE_MIN_RECORDS: u64 = 1 << 17;

/// Splits `blocks` (the footer's per-block record counts) into at most
/// `shards` contiguous ranges of near-equal record count.
///
/// Planning is O(blocks) arithmetic over the index — no trace bytes are
/// read. Every block lands in exactly one range and ranges preserve
/// order, so concatenating the decoded ranges reproduces the serial
/// record sequence.
///
/// # Example
///
/// ```
/// let blocks = [(0u64, 10u32), (0, 10), (0, 10), (0, 10)];
/// let plan = bwsa_core::columnar::plan_block_shards(&blocks, 2);
/// assert_eq!(plan, vec![0..2, 2..4]);
/// ```
pub fn plan_block_shards(blocks: &[(u64, u32)], shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    if blocks.is_empty() {
        return Vec::new();
    }
    let total: u64 = blocks.iter().map(|&(_, c)| u64::from(c)).sum();
    let target = total.div_ceil(shards as u64).max(1);
    let mut plan = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut in_range = 0u64;
    for (i, &(_, count)) in blocks.iter().enumerate() {
        in_range += u64::from(count);
        let ranges_left = shards - plan.len();
        let blocks_left = blocks.len() - i - 1;
        // Close the range at the target, but never strand more tail
        // blocks than there are ranges to hold them.
        if (in_range >= target && ranges_left > 1) || blocks_left + 1 == ranges_left {
            plan.push(start..i + 1);
            start = i + 1;
            in_range = 0;
        }
    }
    if start < blocks.len() {
        plan.push(start..blocks.len());
    }
    plan
}

/// Decodes a `BWSS3` buffer into a [`Trace`], fanning block ranges out
/// over `jobs` workers when the footer's block index allows it.
///
/// Footerless (torn) files and `jobs <= 1` fall back to the serial
/// decoder under the given policy; the parallel path requires an intact
/// footer and is strict per block (a corrupt block fails the decode, as
/// serial strict would). The result is identical to
/// [`bwsa_trace::columnar::read_columnar`] for every job count.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for structural damage and
/// [`TraceError::Corrupt`] for a damaged block in strict mode.
pub fn decode_columnar(
    bytes: &[u8],
    policy: RecoveryPolicy,
    jobs: usize,
) -> Result<(Trace, SalvageReport), TraceError> {
    let file = ColumnarFile::parse(bytes)?;
    let Some(footer) = file.footer() else {
        return file.decode(policy);
    };
    // Below ~128k records the fan-out setup costs more wall-clock than
    // the decode itself (measured in corpus_bench's ingest phase), so
    // small files demote to the serial decoder — same records, and the
    // same rule the corpus runner applies to whole-entry fan-out.
    if jobs <= 1 || footer.blocks.len() < 2 || footer.record_count < PARALLEL_DECODE_MIN_RECORDS {
        return file.decode(policy);
    }
    let plan = plan_block_shards(&footer.blocks, jobs);
    let decoded = parallel_map(plan, jobs, |_, range| {
        let span: usize = footer.blocks[range.clone()]
            .iter()
            .map(|&(_, c)| c as usize)
            .sum();
        let mut ids: Vec<BranchId> = Vec::with_capacity(span);
        let mut records: Vec<BranchRecord> = Vec::with_capacity(span);
        file.decode_range(range, &mut ids, &mut records)
            .map(|()| (ids, records))
    });
    let mut ids: Vec<BranchId> = Vec::with_capacity(footer.record_count as usize);
    let mut records: Vec<BranchRecord> = Vec::with_capacity(footer.record_count as usize);
    let mut report = SalvageReport {
        chunks_ok: footer.blocks.len() as u64,
        ..SalvageReport::default()
    };
    for shard in decoded {
        let (mut shard_ids, mut shard_records) = shard?;
        ids.append(&mut shard_ids);
        records.append(&mut shard_records);
    }
    report.records_recovered = records.len() as u64;
    if report.records_recovered != footer.record_count {
        return Err(TraceError::format(format!(
            "footer promises {} records, blocks held {}",
            footer.record_count, report.records_recovered
        )));
    }
    let table = BranchTable::from_pcs(footer.pcs.iter().map(|&pc| Pc::new(pc)))?;
    let meta = TraceMeta {
        name: file.name().to_string(),
        total_instructions: footer.total_instructions,
    };
    Ok((Trace::from_parts(meta, table, ids, records)?, report))
}

/// Runs the full analysis pipeline over a `BWSS3` buffer block-at-a-time
/// without materialising the trace: each block is decoded into reusable
/// SoA scratch and its records stream straight into the flat engines.
///
/// Memory stays bounded by one block plus the engine state. The result
/// is bit-identical to decoding the whole trace and running
/// [`AnalysisPipeline::run_observed`] over it.
///
/// # Errors
///
/// Propagates decode errors per `policy` exactly as
/// [`bwsa_trace::columnar::read_columnar`] does; under salvage the
/// analysis covers whatever the salvage decode would recover.
pub fn analyze_columnar_stream(
    pipeline: &AnalysisPipeline,
    bytes: &[u8],
    policy: RecoveryPolicy,
    obs: &Obs,
) -> Result<(Analysis, SalvageReport), TraceError> {
    let file = ColumnarFile::parse(bytes)?;
    if policy == RecoveryPolicy::Strict && file.footer().is_none() {
        return Err(TraceError::format(
            "torn columnar file: footer missing or corrupt (retry with salvage)",
        ));
    }
    let mut report = SalvageReport::default();
    let mut analysis = StreamingAnalysis::new(file.name());
    let mut decoder = BlockDecoder::new(&file);
    let mut last_time = 0u64;
    loop {
        match decoder.next_block() {
            Ok(None) => break,
            Ok(Some(view)) => {
                if view.times.first().is_some_and(|&first| first < last_time) {
                    let e = TraceError::Corrupt {
                        chunk: decoder.blocks_seen() - 1,
                        reason: "out-of-order block".into(),
                    };
                    if policy == RecoveryPolicy::Strict {
                        return Err(e);
                    }
                    report.chunks_dropped += 1;
                    if report.first_error.is_none() {
                        report.first_error = Some(e.to_string());
                    }
                    continue;
                }
                last_time = view.times.last().copied().unwrap_or(last_time);
                report.chunks_ok += 1;
                report.records_recovered += view.ids.len() as u64;
                for ((&id, &taken), &time) in view.ids.iter().zip(view.taken).zip(view.times) {
                    analysis.push(&BranchRecord::new(
                        Pc::new(view.pcs[id as usize]),
                        Direction::from_taken(taken),
                        InstrCount::new(time),
                    ));
                }
            }
            Err(e) => {
                if policy == RecoveryPolicy::Strict {
                    return Err(e);
                }
                report.chunks_dropped += 1;
                if report.first_error.is_none() {
                    report.first_error = Some(e.to_string());
                }
                if !decoder.can_continue() {
                    break;
                }
            }
        }
    }
    obs.add("trace.records_read", report.records_recovered);
    obs.add("trace.chunks_ok", report.chunks_ok);
    Ok((analysis.finish_observed(pipeline, obs), report))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use bwsa_trace::columnar::{read_columnar, ColumnarWriter};
    use bwsa_trace::TraceBuilder;

    fn busy_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("busy");
        let mut lcg: u64 = 99;
        for i in 0..n {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.record(0x4000 + (lcg >> 44) % 17 * 4, (lcg >> 21) & 1 == 1, i + 1);
        }
        b.finish()
    }

    fn encode(trace: &Trace, block_records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = ColumnarWriter::new(&mut buf, &trace.meta().name)
            .unwrap()
            .with_block_records(block_records);
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        w.finish(trace.meta().total_instructions).unwrap();
        buf
    }

    #[test]
    fn plan_covers_every_block_exactly_once() {
        let blocks: Vec<(u64, u32)> = (0..23).map(|i| (i, 10 + (i as u32 % 5))).collect();
        for shards in [1, 2, 3, 7, 23, 50] {
            let plan = plan_block_shards(&blocks, shards);
            assert!(plan.len() <= shards, "shards {shards}: {plan:?}");
            let mut next = 0usize;
            for range in &plan {
                assert_eq!(range.start, next, "shards {shards}: {plan:?}");
                assert!(range.end > range.start);
                next = range.end;
            }
            assert_eq!(next, blocks.len(), "shards {shards}: {plan:?}");
        }
        assert!(plan_block_shards(&[], 4).is_empty());
    }

    #[test]
    fn parallel_decode_is_identical_to_serial_for_any_jobs() {
        let trace = busy_trace(2000);
        let buf = encode(&trace, 64);
        let (serial, serial_report) = read_columnar(&buf, RecoveryPolicy::Strict).unwrap();
        assert_eq!(serial, trace);
        for jobs in [1, 2, 3, 8, 64] {
            let (parallel, report) = decode_columnar(&buf, RecoveryPolicy::Strict, jobs).unwrap();
            assert_eq!(parallel, serial, "jobs {jobs}");
            assert_eq!(
                report.records_recovered, serial_report.records_recovered,
                "jobs {jobs}"
            );
        }
    }

    #[test]
    fn streamed_analysis_matches_in_memory_pipeline() {
        let trace = busy_trace(1500);
        let buf = encode(&trace, 128);
        let pipeline = AnalysisPipeline::new();
        let expected = pipeline.run_observed(&trace, &Obs::noop());
        let (streamed, report) =
            analyze_columnar_stream(&pipeline, &buf, RecoveryPolicy::Strict, &Obs::noop()).unwrap();
        assert!(report.clean());
        assert_eq!(report.records_recovered, 1500);
        assert_eq!(streamed, expected);
    }

    #[test]
    fn torn_file_streams_the_prefix_under_salvage() {
        let trace = busy_trace(200);
        let mut buf = Vec::new();
        let mut w = ColumnarWriter::new(&mut buf, "busy")
            .unwrap()
            .with_block_records(32);
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        drop(w); // torn: no footer
        let pipeline = AnalysisPipeline::new();
        assert!(
            analyze_columnar_stream(&pipeline, &buf, RecoveryPolicy::Strict, &Obs::noop()).is_err()
        );
        let (streamed, report) =
            analyze_columnar_stream(&pipeline, &buf, RecoveryPolicy::Salvage, &Obs::noop())
                .unwrap();
        assert_eq!(report.records_recovered, 192); // 6 complete blocks
        let mut b = TraceBuilder::new("busy");
        for r in &trace.records()[..192] {
            b.record(r.pc.addr(), r.is_taken(), r.time.get());
        }
        let expected = pipeline.run_observed(&b.finish(), &Obs::noop());
        assert_eq!(streamed, expected);
    }

    #[test]
    fn parallel_decode_of_torn_file_falls_back_to_serial_salvage() {
        let trace = busy_trace(100);
        let mut buf = Vec::new();
        let mut w = ColumnarWriter::new(&mut buf, "busy")
            .unwrap()
            .with_block_records(16);
        for r in trace.records() {
            w.push(*r).unwrap();
        }
        drop(w);
        let (salvaged, report) = decode_columnar(&buf, RecoveryPolicy::Salvage, 8).unwrap();
        assert_eq!(salvaged.len(), 96);
        assert_eq!(report.chunks_ok, 6);
    }
}
