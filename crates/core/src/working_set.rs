//! Step 3: partitioning branches into working sets and the Table 2
//! statistics.

use bwsa_graph::{clique, ConflictGraph};
use bwsa_trace::{profile::BranchProfile, BranchId};
use serde::{Deserialize, Serialize};

/// Which reading of "completely interconnected subgraph" to use.
///
/// The paper's prose says working sets *partition* the branches, but its
/// Table 2 counts (51,888 sets for gcc's ~16k static branches) are only
/// possible if a branch can belong to several sets — i.e. maximal-clique
/// enumeration. Both are provided; `ablation_working_set` contrasts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WorkingSetDefinition {
    /// Disjoint cliques via greedy partitioning: every branch in exactly
    /// one set.
    #[default]
    Partition,
    /// All maximal cliques (Bron–Kerbosch), capped to bound work on dense
    /// graphs.
    MaximalCliques {
        /// Stop after this many cliques.
        cap: usize,
    },
}

/// The Table 2 row for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetReport {
    /// Total number of working sets.
    pub total_sets: usize,
    /// Mean set size over sets (Table 2's "average static working set
    /// size").
    pub avg_static_size: f64,
    /// Mean set size over *dynamic branch executions* (Table 2's "average
    /// dynamic working set size"): each execution of a branch contributes
    /// the (mean) size of the set(s) containing that branch.
    pub avg_dynamic_size: f64,
    /// Largest set.
    pub max_size: usize,
    /// `true` if maximal-clique enumeration hit its cap.
    pub truncated: bool,
}

/// Working sets plus their summary report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkingSets {
    /// The sets, each sorted ascending by branch id.
    pub sets: Vec<Vec<BranchId>>,
    /// Summary statistics (Table 2).
    pub report: WorkingSetReport,
}

/// Extracts working sets from a thresholded conflict graph.
///
/// `profile` supplies execution counts for the dynamic (execution-
/// weighted) average.
///
/// # Panics
///
/// Panics if the profile and graph disagree on the number of branches.
///
/// # Example
///
/// ```
/// use bwsa_core::{working_sets, WorkingSetDefinition};
/// use bwsa_core::conflict::{ConflictAnalysis, ConflictConfig};
/// use bwsa_trace::{profile::BranchProfile, TraceBuilder};
///
/// let mut t = TraceBuilder::new("pair");
/// for i in 0..500u64 {
///     t.record(0x40 + (i % 2) * 4, true, i + 1);
/// }
/// let trace = t.finish();
/// let conflict = ConflictAnalysis::of_trace(&trace, ConflictConfig::default());
/// let profile = BranchProfile::from_trace(&trace);
/// let ws = working_sets(&conflict.graph, &profile, WorkingSetDefinition::Partition);
/// assert_eq!(ws.report.total_sets, 1);
/// assert_eq!(ws.report.avg_static_size, 2.0);
/// assert_eq!(ws.report.avg_dynamic_size, 2.0);
/// ```
pub fn working_sets(
    graph: &ConflictGraph,
    profile: &BranchProfile,
    definition: WorkingSetDefinition,
) -> WorkingSets {
    assert_eq!(
        graph.node_count(),
        profile.static_count(),
        "graph and profile must describe the same trace"
    );
    let (raw_sets, truncated) = match definition {
        WorkingSetDefinition::Partition => (clique::greedy_clique_partition(graph), false),
        WorkingSetDefinition::MaximalCliques { cap } => {
            let e = clique::maximal_cliques(graph, cap);
            (e.cliques, e.truncated)
        }
    };

    let total_sets = raw_sets.len();
    let size_sum: usize = raw_sets.iter().map(Vec::len).sum();
    let avg_static_size = if total_sets == 0 {
        0.0
    } else {
        size_sum as f64 / total_sets as f64
    };
    let max_size = raw_sets.iter().map(Vec::len).max().unwrap_or(0);

    // Execution-weighted size: mean (over sets containing b, ≥1 under
    // Partition) set size per branch, weighted by b's execution count.
    let n = graph.node_count();
    let mut size_acc = vec![0u64; n];
    let mut membership = vec![0u64; n];
    for set in &raw_sets {
        for &node in set {
            size_acc[node as usize] += set.len() as u64;
            membership[node as usize] += 1;
        }
    }
    let mut weighted = 0.0f64;
    let mut weight = 0u64;
    for (i, (&acc, &m)) in size_acc.iter().zip(&membership).enumerate() {
        if m == 0 {
            continue; // branch in no set (possible under a truncated enumeration)
        }
        let execs = profile.stats(BranchId::new(i as u32)).executions;
        weighted += execs as f64 * (acc as f64 / m as f64);
        weight += execs;
    }
    let avg_dynamic_size = if weight == 0 {
        0.0
    } else {
        weighted / weight as f64
    };

    let sets = raw_sets
        .into_iter()
        .map(|s| s.into_iter().map(BranchId::new).collect())
        .collect();
    WorkingSets {
        sets,
        report: WorkingSetReport {
            total_sets,
            avg_static_size,
            avg_dynamic_size,
            max_size,
            truncated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwsa_graph::GraphBuilder;
    use bwsa_trace::TraceBuilder;

    /// Profile where branch i executes `execs[i]` times.
    fn profile_with(execs: &[u64]) -> BranchProfile {
        let mut t = TraceBuilder::new("p");
        let mut time = 0;
        for (i, &n) in execs.iter().enumerate() {
            for _ in 0..n.max(1) {
                time += 1;
                t.record(0x100 + (i as u64) * 4, true, time);
            }
        }
        BranchProfile::from_trace(&t.finish())
    }

    fn two_triangles() -> ConflictGraph {
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(x, y, 500);
        }
        b.build()
    }

    #[test]
    fn partition_statistics() {
        let g = two_triangles();
        let p = profile_with(&[1, 1, 1, 1, 1, 1]);
        let ws = working_sets(&g, &p, WorkingSetDefinition::Partition);
        assert_eq!(ws.report.total_sets, 2);
        assert_eq!(ws.report.avg_static_size, 3.0);
        assert_eq!(ws.report.avg_dynamic_size, 3.0);
        assert_eq!(ws.report.max_size, 3);
        assert!(!ws.report.truncated);
    }

    #[test]
    fn dynamic_average_weights_by_executions() {
        // Triangle {0,1,2} and isolated pair {3,4}: hot pair dominates.
        let mut b = GraphBuilder::new(5);
        for (x, y) in [(0, 1), (1, 2), (0, 2)] {
            b.add_edge(x, y, 500);
        }
        b.add_edge(3, 4, 500);
        let g = b.build();
        let p = profile_with(&[1, 1, 1, 1000, 1000]);
        let ws = working_sets(&g, &p, WorkingSetDefinition::Partition);
        assert_eq!(ws.report.total_sets, 2);
        assert_eq!(ws.report.avg_static_size, 2.5);
        assert!(
            ws.report.avg_dynamic_size < 2.1,
            "dominated by the hot pair: {}",
            ws.report.avg_dynamic_size
        );
    }

    #[test]
    fn maximal_cliques_can_exceed_partition_count() {
        // A 4-cycle: partition gives 2 sets; maximal cliques give 4.
        let mut b = GraphBuilder::new(4);
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(x, y, 500);
        }
        let g = b.build();
        let p = profile_with(&[1, 1, 1, 1]);
        let part = working_sets(&g, &p, WorkingSetDefinition::Partition);
        let cliq = working_sets(&g, &p, WorkingSetDefinition::MaximalCliques { cap: 100 });
        assert_eq!(part.report.total_sets, 2);
        assert_eq!(cliq.report.total_sets, 4);
        assert!(!cliq.report.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        let g = two_triangles();
        let p = profile_with(&[1; 6]);
        let ws = working_sets(&g, &p, WorkingSetDefinition::MaximalCliques { cap: 1 });
        assert!(ws.report.truncated);
    }

    #[test]
    fn empty_graph_gives_zero_report() {
        let g = GraphBuilder::new(0).build();
        let p = BranchProfile::from_trace(&bwsa_trace::Trace::new("e"));
        let ws = working_sets(&g, &p, WorkingSetDefinition::Partition);
        assert_eq!(ws.report.total_sets, 0);
        assert_eq!(ws.report.avg_static_size, 0.0);
        assert_eq!(ws.report.avg_dynamic_size, 0.0);
    }

    #[test]
    #[should_panic(expected = "same trace")]
    fn mismatched_profile_is_rejected() {
        let g = two_triangles();
        let p = profile_with(&[1, 1]);
        working_sets(&g, &p, WorkingSetDefinition::Partition);
    }
}
