//! Error type for the analysis pipeline.

use std::error::Error;
use std::fmt;

/// Error produced by analysis configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Description of the offending value.
        reason: String,
    },
    /// An analysis checkpoint could not be saved, parsed, or applied —
    /// corrupt bytes, or state from a different trace.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn config(reason: impl Into<String>) -> Self {
        CoreError::InvalidConfig {
            reason: reason.into(),
        }
    }

    pub(crate) fn checkpoint(reason: impl Into<String>) -> Self {
        CoreError::Checkpoint {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid analysis config: {reason}"),
            CoreError::Checkpoint { reason } => write!(f, "analysis checkpoint error: {reason}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        assert!(CoreError::config("bad threshold")
            .to_string()
            .contains("bad threshold"));
        assert!(CoreError::checkpoint("bad crc")
            .to_string()
            .contains("bad crc"));
    }
}
