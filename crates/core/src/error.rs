//! Error types for the analysis pipeline.
//!
//! [`CoreError`] covers failures originating in this crate;
//! [`Error`] is the workspace-wide unification every layer's error
//! converts into, so `Session` methods and multi-crate pipelines can
//! return one `Result` type.

use bwsa_graph::GraphError;
use bwsa_predictor::PredictorError;
use bwsa_resilience::supervisor::ResilienceError;
use bwsa_trace::TraceError;
use std::fmt;

/// Error produced by analysis configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Description of the offending value.
        reason: String,
    },
    /// An analysis checkpoint could not be saved, parsed, or applied —
    /// corrupt bytes, or state from a different trace.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn config(reason: impl Into<String>) -> Self {
        CoreError::InvalidConfig {
            reason: reason.into(),
        }
    }

    pub(crate) fn checkpoint(reason: impl Into<String>) -> Self {
        CoreError::Checkpoint {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid analysis config: {reason}"),
            CoreError::Checkpoint { reason } => write!(f, "analysis checkpoint error: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The workspace-wide error: every layer's failure mode, unified.
///
/// [`crate::Session`] methods and anything else that crosses crate
/// boundaries return this, so callers match on one type instead of
/// plumbing four. The enum is `#[non_exhaustive]`: new layers can join
/// without a breaking change, so always keep a `_ => ...` arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Analysis configuration or checkpointing failed.
    Core(CoreError),
    /// Trace ingestion, decoding, or streaming failed.
    Trace(TraceError),
    /// Conflict-graph construction failed.
    Graph(GraphError),
    /// Predictor construction or simulation failed.
    Predictor(PredictorError),
    /// A supervised run exhausted its degradation ladder: every rung
    /// failed and this is the last rung's fault.
    Resilience(ResilienceError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Trace(e) => write!(f, "trace error: {e}"),
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Predictor(e) => write!(f, "predictor error: {e}"),
            Error::Resilience(e) => write!(f, "resilience error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Predictor(e) => Some(e),
            Error::Resilience(e) => Some(e),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<PredictorError> for Error {
    fn from(e: PredictorError) -> Self {
        Error::Predictor(e)
    }
}

impl From<ResilienceError> for Error {
    fn from(e: ResilienceError) -> Self {
        Error::Resilience(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        assert!(CoreError::config("bad threshold")
            .to_string()
            .contains("bad threshold"));
        assert!(CoreError::checkpoint("bad crc")
            .to_string()
            .contains("bad crc"));
    }

    #[test]
    fn unified_error_wraps_every_layer() {
        use std::error::Error as _;
        let core: Error = CoreError::config("x").into();
        assert!(core.to_string().contains("invalid analysis config"));
        assert!(core.source().is_some());
        let trace: Error = TraceError::format("bad byte").into();
        assert!(trace.to_string().contains("trace error"));
        let graph: Error = GraphError::SelfLoop { node: 3 }.into();
        assert!(graph.to_string().contains("graph error"));
        let predictor: Error = PredictorError::InvalidTableSize {
            table: "BHT",
            size: 0,
        }
        .into();
        assert!(predictor.to_string().contains("predictor error"));
    }
}
